//! The expression AST.
//!
//! Expressions are fully *resolved*: columns are positional indices into the
//! input row, functions are bound registry entries, and inner-aggregate
//! subqueries are [`SubqueryId`]s pointing at other lineage blocks. The SQL
//! binder (in `gola-sql`) produces these from raw AST.

use std::fmt;
use std::sync::Arc;

use gola_common::Value;

use crate::functions::ScalarFn;

/// Identifier of a lineage block whose (grouped) aggregate output this
/// expression references. Assigned by the meta-plan compiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubqueryId(pub usize);

impl fmt::Display for SubqueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sq{}", self.0)
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}

impl BinOp {
    /// `true` for the six comparison operators.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
        )
    }

    /// `true` for AND/OR.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    /// `true` for arithmetic operators.
    pub fn is_arithmetic(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod
        )
    }

    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    Neg,
    Not,
}

/// A resolved expression tree.
#[derive(Debug, Clone)]
pub enum Expr {
    /// Positional reference into the input row.
    Column(usize),
    /// A constant.
    Literal(Value),
    Unary {
        op: UnaryOp,
        expr: Box<Expr>,
    },
    Binary {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// A bound scalar function call.
    Func {
        name: String,
        func: Arc<dyn ScalarFn>,
        args: Vec<Expr>,
    },
    /// `CASE WHEN c1 THEN v1 ... ELSE e END` (searched form; the binder
    /// rewrites the simple form into this).
    Case {
        branches: Vec<(Expr, Expr)>,
        else_expr: Option<Box<Expr>>,
    },
    Cast {
        expr: Box<Expr>,
        to: gola_common::DataType,
    },
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    /// Scalar produced by another lineage block (an inner aggregate). For a
    /// decorrelated subquery, `key` holds the correlation-column expressions
    /// evaluated on the *current* row to select the group.
    ScalarRef {
        id: SubqueryId,
        key: Vec<Expr>,
    },
    /// `keys IN (SELECT ... )` membership against another block's filtered
    /// group set.
    InSubquery {
        id: SubqueryId,
        key: Vec<Expr>,
        negated: bool,
    },
    /// `expr IN (v1, v2, ...)` over literal lists.
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
}

impl Expr {
    pub fn col(idx: usize) -> Expr {
        Expr::Column(idx)
    }

    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    pub fn binary(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    pub fn and(left: Expr, right: Expr) -> Expr {
        Expr::binary(BinOp::And, left, right)
    }

    pub fn gt(left: Expr, right: Expr) -> Expr {
        Expr::binary(BinOp::Gt, left, right)
    }

    pub fn lt(left: Expr, right: Expr) -> Expr {
        Expr::binary(BinOp::Lt, left, right)
    }

    pub fn eq(left: Expr, right: Expr) -> Expr {
        Expr::binary(BinOp::Eq, left, right)
    }

    /// Conjunction of a list of predicates; `None` for an empty list.
    pub fn conjunction(mut preds: Vec<Expr>) -> Option<Expr> {
        let first = if preds.is_empty() {
            return None;
        } else {
            preds.remove(0)
        };
        Some(preds.into_iter().fold(first, Expr::and))
    }

    /// Immediate children, in evaluation order.
    pub fn children(&self) -> Vec<&Expr> {
        match self {
            Expr::Column(_) | Expr::Literal(_) => vec![],
            Expr::Unary { expr, .. } => vec![expr],
            Expr::Binary { left, right, .. } => vec![left, right],
            Expr::Func { args, .. } => args.iter().collect(),
            Expr::Case {
                branches,
                else_expr,
            } => {
                let mut v: Vec<&Expr> = Vec::new();
                for (c, r) in branches {
                    v.push(c);
                    v.push(r);
                }
                if let Some(e) = else_expr {
                    v.push(e);
                }
                v
            }
            Expr::Cast { expr, .. } => vec![expr],
            Expr::IsNull { expr, .. } => vec![expr],
            Expr::ScalarRef { key, .. } => key.iter().collect(),
            Expr::InSubquery { key, .. } => key.iter().collect(),
            Expr::InList { expr, list, .. } => {
                let mut v = vec![expr.as_ref()];
                v.extend(list.iter());
                v
            }
        }
    }

    /// Collect the distinct column indices referenced anywhere in the tree
    /// (used for lineage projections: the uncertain set caches only the
    /// columns downstream operators need).
    pub fn collect_columns(&self, out: &mut Vec<usize>) {
        if let Expr::Column(i) = self {
            if !out.contains(i) {
                out.push(*i);
            }
        }
        for c in self.children() {
            c.collect_columns(out);
        }
    }

    /// Collect every subquery reference (scalar or membership) in the tree.
    pub fn collect_subquery_refs(&self, out: &mut Vec<SubqueryId>) {
        match self {
            Expr::ScalarRef { id, .. } | Expr::InSubquery { id, .. } if !out.contains(id) => {
                out.push(*id);
            }
            _ => {}
        }
        for c in self.children() {
            c.collect_subquery_refs(out);
        }
    }

    /// `true` if the tree contains any subquery reference — i.e. evaluating
    /// it depends on another lineage block's (uncertain) output.
    pub fn has_subquery_ref(&self) -> bool {
        let mut refs = Vec::new();
        self.collect_subquery_refs(&mut refs);
        !refs.is_empty()
    }

    /// Rewrite column indices through `map` (e.g. when a projection reorders
    /// inputs). `map[i]` is the new index of old column `i`.
    pub fn remap_columns(&self, map: &dyn Fn(usize) -> usize) -> Expr {
        self.transform(&|e| match e {
            Expr::Column(i) => Some(Expr::Column(map(*i))),
            _ => None,
        })
    }

    /// Bottom-up rewrite: `f` returns `Some(replacement)` to substitute a
    /// node (children already rewritten), `None` to keep it.
    pub fn transform(&self, f: &dyn Fn(&Expr) -> Option<Expr>) -> Expr {
        let rebuilt = match self {
            Expr::Column(_) | Expr::Literal(_) => self.clone(),
            Expr::Unary { op, expr } => Expr::Unary {
                op: *op,
                expr: Box::new(expr.transform(f)),
            },
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Box::new(left.transform(f)),
                right: Box::new(right.transform(f)),
            },
            Expr::Func { name, func, args } => Expr::Func {
                name: name.clone(),
                func: Arc::clone(func),
                args: args.iter().map(|a| a.transform(f)).collect(),
            },
            Expr::Case {
                branches,
                else_expr,
            } => Expr::Case {
                branches: branches
                    .iter()
                    .map(|(c, r)| (c.transform(f), r.transform(f)))
                    .collect(),
                else_expr: else_expr.as_ref().map(|e| Box::new(e.transform(f))),
            },
            Expr::Cast { expr, to } => Expr::Cast {
                expr: Box::new(expr.transform(f)),
                to: *to,
            },
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(expr.transform(f)),
                negated: *negated,
            },
            Expr::ScalarRef { id, key } => Expr::ScalarRef {
                id: *id,
                key: key.iter().map(|k| k.transform(f)).collect(),
            },
            Expr::InSubquery { id, key, negated } => Expr::InSubquery {
                id: *id,
                key: key.iter().map(|k| k.transform(f)).collect(),
                negated: *negated,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(expr.transform(f)),
                list: list.iter().map(|e| e.transform(f)).collect(),
                negated: *negated,
            },
        };
        f(&rebuilt).unwrap_or(rebuilt)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(i) => write!(f, "#{i}"),
            Expr::Literal(v) => match v {
                Value::Str(s) => write!(f, "'{s}'"),
                other => write!(f, "{other}"),
            },
            Expr::Unary { op, expr } => match op {
                UnaryOp::Neg => write!(f, "(-{expr})"),
                UnaryOp::Not => write!(f, "(NOT {expr})"),
            },
            Expr::Binary { op, left, right } => {
                write!(f, "({left} {} {right})", op.symbol())
            }
            Expr::Func { name, args, .. } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Case {
                branches,
                else_expr,
            } => {
                write!(f, "CASE")?;
                for (c, r) in branches {
                    write!(f, " WHEN {c} THEN {r}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
            Expr::Cast { expr, to } => write!(f, "CAST({expr} AS {to})"),
            Expr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            Expr::ScalarRef { id, key } => {
                if key.is_empty() {
                    write!(f, "${id}")
                } else {
                    write!(f, "${id}[")?;
                    for (i, k) in key.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{k}")?;
                    }
                    write!(f, "]")
                }
            }
            Expr::InSubquery { id, key, negated } => {
                write!(f, "(")?;
                for (i, k) in key.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}")?;
                }
                write!(f, " {}IN ${id})", if *negated { "NOT " } else { "" })
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "))")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = Expr::gt(
            Expr::col(1),
            Expr::binary(
                BinOp::Mul,
                Expr::lit(0.2),
                Expr::ScalarRef {
                    id: SubqueryId(0),
                    key: vec![],
                },
            ),
        );
        assert_eq!(e.to_string(), "(#1 > (0.2 * $sq0))");
    }

    #[test]
    fn collect_columns_dedupes() {
        let e = Expr::and(
            Expr::gt(Expr::col(2), Expr::col(0)),
            Expr::lt(Expr::col(2), Expr::lit(5i64)),
        );
        let mut cols = Vec::new();
        e.collect_columns(&mut cols);
        cols.sort_unstable();
        assert_eq!(cols, vec![0, 2]);
    }

    #[test]
    fn collect_subquery_refs_finds_nested() {
        let e = Expr::and(
            Expr::gt(
                Expr::col(0),
                Expr::ScalarRef {
                    id: SubqueryId(3),
                    key: vec![Expr::col(1)],
                },
            ),
            Expr::InSubquery {
                id: SubqueryId(5),
                key: vec![Expr::col(2)],
                negated: false,
            },
        );
        let mut refs = Vec::new();
        e.collect_subquery_refs(&mut refs);
        assert_eq!(refs, vec![SubqueryId(3), SubqueryId(5)]);
        assert!(e.has_subquery_ref());
        assert!(!Expr::col(0).has_subquery_ref());
    }

    #[test]
    fn remap_columns() {
        let e = Expr::gt(Expr::col(0), Expr::col(3));
        let remapped = e.remap_columns(&|i| i + 10);
        assert_eq!(
            remapped.to_string(),
            "(#10 > (#13))".replace("(#13)", "#13")
        );
    }

    #[test]
    fn conjunction_builder() {
        assert!(Expr::conjunction(vec![]).is_none());
        let one = Expr::conjunction(vec![Expr::lit(true)]).unwrap();
        assert_eq!(one.to_string(), "true");
        let two = Expr::conjunction(vec![Expr::lit(true), Expr::lit(false)]).unwrap();
        assert_eq!(two.to_string(), "(true AND false)");
    }

    #[test]
    fn transform_replaces_nodes() {
        let e = Expr::binary(BinOp::Add, Expr::col(0), Expr::lit(1i64));
        let out = e.transform(&|node| match node {
            Expr::Literal(Value::Int(1)) => Some(Expr::lit(2i64)),
            _ => None,
        });
        assert_eq!(out.to_string(), "(#0 + 2)");
    }
}
