//! Variation ranges and interval arithmetic.
//!
//! The paper defines the variation range `R(u)` of an uncertain value `u`
//! as the set of values it may take during online execution, approximated
//! from bootstrap outputs as `[min(û) − ε, max(û) + ε]` (§3.2). Predicates
//! compare a deterministic value's point range against `R(u)` — but real
//! queries compare *expressions over* `u` (e.g. TPC-H Q17's
//! `quantity < 0.2 * AVG(quantity)`), so ranges must propagate through
//! arithmetic. [`RangeVal`] implements that propagation.

use gola_common::Value;

use crate::tri::Tri;

/// The possible values an expression may take across future mini-batches.
#[derive(Debug, Clone)]
pub enum RangeVal {
    /// Exactly this value (deterministic operand, e.g. a base-table column).
    Exact(Value),
    /// A numeric interval `[lo, hi]` (uncertain aggregate or arithmetic
    /// over one).
    Num { lo: f64, hi: f64 },
    /// No usable bound — classification must fall back to `Maybe`.
    Unknown,
}

/// Total-order equality: `Num` bounds compare via `total_cmp`, so two
/// ranges are equal iff they are bitwise the same interval. The derived
/// impl used IEEE `==`, under which a NaN bound made a range unequal to
/// itself — the `eq_tri` bug class from the vectorized-kernel PR.
impl PartialEq for RangeVal {
    fn eq(&self, other: &RangeVal) -> bool {
        match (self, other) {
            (RangeVal::Exact(a), RangeVal::Exact(b)) => a == b,
            (RangeVal::Num { lo: a, hi: b }, RangeVal::Num { lo: c, hi: d }) => {
                a.total_cmp(c).is_eq() && b.total_cmp(d).is_eq()
            }
            (RangeVal::Unknown, RangeVal::Unknown) => true,
            _ => false,
        }
    }
}

impl RangeVal {
    /// Construct a numeric interval, normalizing order.
    pub fn num(a: f64, b: f64) -> RangeVal {
        if a.is_nan() || b.is_nan() {
            return RangeVal::Unknown;
        }
        if a <= b {
            RangeVal::Num { lo: a, hi: b }
        } else {
            RangeVal::Num { lo: b, hi: a }
        }
    }

    /// A degenerate interval holding one number. Routed through [`num`]
    /// so a NaN collapses to `Unknown` instead of forging a `Num` range
    /// that violates the NaN-free bounds invariant.
    ///
    /// [`num`]: RangeVal::num
    pub fn point(x: f64) -> RangeVal {
        RangeVal::num(x, x)
    }

    /// Numeric bounds of this range, if it has them.
    pub fn bounds(&self) -> Option<(f64, f64)> {
        match self {
            RangeVal::Exact(v) => v.as_f64().map(|x| (x, x)),
            RangeVal::Num { lo, hi } => Some((*lo, *hi)),
            RangeVal::Unknown => None,
        }
    }

    /// `true` iff the range pins down a single value.
    pub fn is_exact(&self) -> bool {
        match self {
            RangeVal::Exact(_) => true,
            RangeVal::Num { lo, hi } => lo == hi,
            RangeVal::Unknown => false,
        }
    }

    /// Does `x` lie inside the range? (`Unknown` contains everything.)
    pub fn contains(&self, x: f64) -> bool {
        match self.bounds() {
            Some((lo, hi)) => lo <= x && x <= hi,
            None => true,
        }
    }

    /// Intersect with another range (used for the committed envelope `E`,
    /// which only ever narrows). Returns `None` if the intersection is
    /// empty.
    pub fn intersect(&self, other: &RangeVal) -> Option<RangeVal> {
        match (self.bounds(), other.bounds()) {
            (Some((a, b)), Some((c, d))) => {
                let lo = a.max(c);
                let hi = b.min(d);
                if lo <= hi {
                    Some(RangeVal::Num { lo, hi })
                } else {
                    None
                }
            }
            (None, _) => Some(other.clone()),
            (_, None) => Some(self.clone()),
        }
    }

    /// Interval width (0 for exact, ∞ for unknown).
    pub fn width(&self) -> f64 {
        match self.bounds() {
            Some((lo, hi)) => hi - lo,
            None => f64::INFINITY,
        }
    }

    pub fn add(&self, other: &RangeVal) -> RangeVal {
        self.combine(other, |a, b, c, d| (a + c, b + d))
    }

    pub fn sub(&self, other: &RangeVal) -> RangeVal {
        self.combine(other, |a, b, c, d| (a - d, b - c))
    }

    pub fn mul(&self, other: &RangeVal) -> RangeVal {
        self.combine(other, |a, b, c, d| {
            let products = [a * c, a * d, b * c, b * d];
            (
                products.iter().copied().fold(f64::INFINITY, f64::min),
                products.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            )
        })
    }

    /// Interval division. If the divisor interval contains 0 the result is
    /// unbounded → `Unknown`.
    pub fn div(&self, other: &RangeVal) -> RangeVal {
        match (self.bounds(), other.bounds()) {
            (Some((a, b)), Some((c, d))) => {
                if c <= 0.0 && d >= 0.0 {
                    RangeVal::Unknown
                } else {
                    let quotients = [a / c, a / d, b / c, b / d];
                    RangeVal::num(
                        quotients.iter().copied().fold(f64::INFINITY, f64::min),
                        quotients.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                    )
                }
            }
            _ => RangeVal::Unknown,
        }
    }

    pub fn neg(&self) -> RangeVal {
        match self.bounds() {
            Some((lo, hi)) => RangeVal::num(-hi, -lo),
            None => RangeVal::Unknown,
        }
    }

    fn combine(&self, other: &RangeVal, f: impl Fn(f64, f64, f64, f64) -> (f64, f64)) -> RangeVal {
        match (self.bounds(), other.bounds()) {
            (Some((a, b)), Some((c, d))) => {
                let (lo, hi) = f(a, b, c, d);
                RangeVal::num(lo, hi)
            }
            _ => RangeVal::Unknown,
        }
    }

    /// Classify `self < other` over the ranges (paper §3.2: deterministic
    /// iff the ranges do not overlap in the relevant direction).
    pub fn lt(&self, other: &RangeVal) -> Tri {
        match (self.bounds(), other.bounds()) {
            (Some((a, b)), Some((c, d))) => {
                if b < c {
                    Tri::True
                } else if a >= d {
                    Tri::False
                } else {
                    Tri::Maybe
                }
            }
            _ => self.cmp_non_numeric(other, false),
        }
    }

    /// Classify `self <= other`.
    pub fn le(&self, other: &RangeVal) -> Tri {
        match (self.bounds(), other.bounds()) {
            (Some((a, b)), Some((c, d))) => {
                if b <= c {
                    Tri::True
                } else if a > d {
                    Tri::False
                } else {
                    Tri::Maybe
                }
            }
            _ => self.cmp_non_numeric(other, true),
        }
    }

    /// Classify `self > other`.
    pub fn gt(&self, other: &RangeVal) -> Tri {
        other.lt(self)
    }

    /// Classify `self >= other`.
    pub fn ge(&self, other: &RangeVal) -> Tri {
        other.le(self)
    }

    /// Classify `self == other`. Equality is deterministic-true only when
    /// both sides are the same exact point; deterministic-false when the
    /// ranges are disjoint.
    pub fn eq_tri(&self, other: &RangeVal) -> Tri {
        // Exact values compare under the same total order point evaluation
        // uses (`Value::total_cmp`) so the two paths agree on every input —
        // `Value`'s derived `==` would disagree on NaN, which total order
        // treats as equal to itself.
        if let (RangeVal::Exact(a), RangeVal::Exact(b)) = (self, other) {
            if !a.is_null() && !b.is_null() {
                return Tri::from(a.total_cmp(b) == std::cmp::Ordering::Equal);
            }
            return Tri::Maybe;
        }
        match (self.bounds(), other.bounds()) {
            (Some((a, b)), Some((c, d))) => {
                if b < c || d < a {
                    Tri::False
                } else if a == b && c == d && a == c {
                    Tri::True
                } else {
                    Tri::Maybe
                }
            }
            _ => Tri::Maybe,
        }
    }

    /// Non-numeric fallback for ordered comparison: only exact, same-typed
    /// values classify deterministically. `allow_eq` distinguishes `<=`
    /// from `<` — without it boundary-equal values (e.g. `'b' <= 'b'`)
    /// would classify as certain-false and be dropped from the result.
    fn cmp_non_numeric(&self, other: &RangeVal, allow_eq: bool) -> Tri {
        if let (RangeVal::Exact(a), RangeVal::Exact(b)) = (self, other) {
            if !a.is_null() && !b.is_null() {
                let ord = a.total_cmp(b);
                return Tri::from(
                    ord == std::cmp::Ordering::Less
                        || (allow_eq && ord == std::cmp::Ordering::Equal),
                );
            }
        }
        Tri::Maybe
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_soundness_examples() {
        let a = RangeVal::num(1.0, 2.0);
        let b = RangeVal::num(-3.0, 4.0);
        assert_eq!(a.add(&b), RangeVal::num(-2.0, 6.0));
        assert_eq!(a.sub(&b), RangeVal::num(-3.0, 5.0));
        assert_eq!(a.mul(&b), RangeVal::num(-6.0, 8.0));
        assert_eq!(a.neg(), RangeVal::num(-2.0, -1.0));
    }

    #[test]
    fn division_by_zero_spanning_interval_is_unknown() {
        let a = RangeVal::num(1.0, 2.0);
        assert_eq!(a.div(&RangeVal::num(-1.0, 1.0)), RangeVal::Unknown);
        assert_eq!(a.div(&RangeVal::num(2.0, 4.0)), RangeVal::num(0.25, 1.0));
        assert_eq!(
            a.div(&RangeVal::num(-4.0, -2.0)),
            RangeVal::num(-1.0, -0.25)
        );
    }

    #[test]
    fn comparison_classification() {
        let x = RangeVal::point(5.0);
        let u = RangeVal::num(6.0, 8.0);
        assert_eq!(x.lt(&u), Tri::True);
        assert_eq!(x.gt(&u), Tri::False);
        let v = RangeVal::num(4.0, 6.0);
        assert_eq!(x.lt(&v), Tri::Maybe);
        // Boundary: x >= hi of other ⇒ x < other is False.
        assert_eq!(RangeVal::point(7.0).lt(&u), Tri::Maybe);
        assert_eq!(RangeVal::point(8.0).lt(&u), Tri::False);
        assert_eq!(RangeVal::point(9.0).lt(&u), Tri::False);
        assert_eq!(RangeVal::point(6.0).le(&u), Tri::True);
    }

    #[test]
    fn equality_classification() {
        assert_eq!(
            RangeVal::point(3.0).eq_tri(&RangeVal::point(3.0)),
            Tri::True
        );
        assert_eq!(
            RangeVal::point(3.0).eq_tri(&RangeVal::num(4.0, 5.0)),
            Tri::False
        );
        assert_eq!(
            RangeVal::point(4.5).eq_tri(&RangeVal::num(4.0, 5.0)),
            Tri::Maybe
        );
        assert_eq!(
            RangeVal::Exact(Value::str("a")).eq_tri(&RangeVal::Exact(Value::str("a"))),
            Tri::True
        );
        assert_eq!(
            RangeVal::Exact(Value::str("a")).eq_tri(&RangeVal::Exact(Value::str("b"))),
            Tri::False
        );
    }

    #[test]
    fn unknown_poisons() {
        let a = RangeVal::num(1.0, 2.0);
        assert_eq!(a.add(&RangeVal::Unknown), RangeVal::Unknown);
        assert_eq!(a.lt(&RangeVal::Unknown), Tri::Maybe);
        assert!(RangeVal::Unknown.contains(1e300));
    }

    #[test]
    fn intersect_narrows() {
        let a = RangeVal::num(0.0, 10.0);
        let b = RangeVal::num(5.0, 15.0);
        assert_eq!(a.intersect(&b), Some(RangeVal::num(5.0, 10.0)));
        let c = RangeVal::num(11.0, 12.0);
        assert_eq!(a.intersect(&c), None);
        assert_eq!(RangeVal::Unknown.intersect(&a), Some(a.clone()));
    }

    #[test]
    fn exact_value_bounds() {
        assert_eq!(RangeVal::Exact(Value::Int(3)).bounds(), Some((3.0, 3.0)));
        assert_eq!(RangeVal::Exact(Value::str("x")).bounds(), None);
        assert!(RangeVal::Exact(Value::Int(3)).is_exact());
        assert!(!RangeVal::num(1.0, 2.0).is_exact());
        assert!(RangeVal::num(2.0, 2.0).is_exact());
    }

    #[test]
    fn nan_inputs_become_unknown() {
        assert_eq!(RangeVal::num(f64::NAN, 1.0), RangeVal::Unknown);
    }

    #[test]
    fn string_ordering_exact() {
        let a = RangeVal::Exact(Value::str("apple"));
        let b = RangeVal::Exact(Value::str("banana"));
        assert_eq!(a.lt(&b), Tri::True);
        assert_eq!(b.lt(&a), Tri::False);
    }
}
