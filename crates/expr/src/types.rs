//! Static type inference for resolved expressions.
//!
//! The binder uses this to validate queries before execution and to compute
//! output schemas for projections and aggregations.

use gola_common::{DataType, Error, FxHashMap, Result};

use crate::expr::{BinOp, Expr, SubqueryId, UnaryOp};

/// Typing environment: input column types plus the output types of scalar
/// subqueries referenced from this expression.
#[derive(Debug, Clone, Default)]
pub struct TypeEnv {
    columns: Vec<DataType>,
    scalars: FxHashMap<SubqueryId, DataType>,
}

impl TypeEnv {
    pub fn new(columns: Vec<DataType>) -> Self {
        TypeEnv {
            columns,
            scalars: FxHashMap::default(),
        }
    }

    pub fn with_scalar(mut self, id: SubqueryId, ty: DataType) -> Self {
        self.scalars.insert(id, ty);
        self
    }

    pub fn set_scalar(&mut self, id: SubqueryId, ty: DataType) {
        self.scalars.insert(id, ty);
    }

    fn column(&self, idx: usize) -> Result<DataType> {
        self.columns
            .get(idx)
            .copied()
            .ok_or_else(|| Error::bind(format!("column #{idx} out of range")))
    }

    fn scalar(&self, id: SubqueryId) -> Result<DataType> {
        self.scalars
            .get(&id)
            .copied()
            .ok_or_else(|| Error::bind(format!("untyped subquery reference {id}")))
    }
}

/// Infer the static type of `expr` under `env`, validating operator and
/// function usage along the way.
pub fn infer_type(expr: &Expr, env: &TypeEnv) -> Result<DataType> {
    match expr {
        Expr::Column(i) => env.column(*i),
        Expr::Literal(v) => Ok(v.data_type()),
        Expr::Unary { op, expr } => {
            let t = infer_type(expr, env)?;
            match op {
                UnaryOp::Neg => {
                    if t.is_numeric() || t == DataType::Null {
                        Ok(if t == DataType::Null {
                            DataType::Float
                        } else {
                            t
                        })
                    } else {
                        Err(Error::bind(format!("cannot negate {t}")))
                    }
                }
                UnaryOp::Not => {
                    if t == DataType::Bool || t == DataType::Null {
                        Ok(DataType::Bool)
                    } else {
                        Err(Error::bind(format!("NOT expects BOOL, got {t}")))
                    }
                }
            }
        }
        Expr::Binary { op, left, right } => {
            let lt = infer_type(left, env)?;
            let rt = infer_type(right, env)?;
            if op.is_logical() {
                for t in [lt, rt] {
                    if t != DataType::Bool && t != DataType::Null {
                        return Err(Error::bind(format!(
                            "{} expects BOOL, got {t}",
                            op.symbol()
                        )));
                    }
                }
                return Ok(DataType::Bool);
            }
            if op.is_comparison() {
                lt.unify(rt).ok_or_else(|| {
                    Error::bind(format!("cannot compare {lt} {} {rt}", op.symbol()))
                })?;
                return Ok(DataType::Bool);
            }
            // Arithmetic.
            for t in [lt, rt] {
                if !t.is_numeric() && t != DataType::Null {
                    return Err(Error::bind(format!(
                        "arithmetic {} expects numeric operands, got {t}",
                        op.symbol()
                    )));
                }
            }
            Ok(match op {
                BinOp::Div => DataType::Float,
                _ => {
                    if lt == DataType::Int && rt == DataType::Int {
                        DataType::Int
                    } else {
                        DataType::Float
                    }
                }
            })
        }
        Expr::Func { func, args, name } => {
            let arg_types: Result<Vec<DataType>> =
                args.iter().map(|a| infer_type(a, env)).collect();
            func.return_type(&arg_types?)
                .map_err(|e| Error::bind(format!("in {name}(): {e}")))
        }
        Expr::Case {
            branches,
            else_expr,
        } => {
            let mut out = DataType::Null;
            for (cond, result) in branches {
                let ct = infer_type(cond, env)?;
                if ct != DataType::Bool && ct != DataType::Null {
                    return Err(Error::bind(format!(
                        "CASE condition must be BOOL, got {ct}"
                    )));
                }
                let rt = infer_type(result, env)?;
                out = out
                    .unify(rt)
                    .ok_or_else(|| Error::bind("CASE branches must share a type"))?;
            }
            if let Some(e) = else_expr {
                let et = infer_type(e, env)?;
                out = out
                    .unify(et)
                    .ok_or_else(|| Error::bind("CASE branches must share a type"))?;
            }
            Ok(out)
        }
        Expr::Cast { expr, to } => {
            infer_type(expr, env)?;
            Ok(*to)
        }
        Expr::IsNull { expr, .. } => {
            infer_type(expr, env)?;
            Ok(DataType::Bool)
        }
        Expr::ScalarRef { id, key } => {
            for k in key {
                infer_type(k, env)?;
            }
            env.scalar(*id)
        }
        Expr::InSubquery { key, .. } => {
            for k in key {
                infer_type(k, env)?;
            }
            Ok(DataType::Bool)
        }
        Expr::InList { expr, list, .. } => {
            let t = infer_type(expr, env)?;
            for item in list {
                let it = infer_type(item, env)?;
                t.unify(it).ok_or_else(|| {
                    Error::bind(format!("IN list item type {it} incompatible with {t}"))
                })?;
            }
            Ok(DataType::Bool)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::FunctionRegistry;

    fn env() -> TypeEnv {
        TypeEnv::new(vec![
            DataType::Int,
            DataType::Float,
            DataType::Str,
            DataType::Bool,
        ])
        .with_scalar(SubqueryId(0), DataType::Float)
    }

    #[test]
    fn arithmetic_typing() {
        let e = Expr::binary(BinOp::Add, Expr::col(0), Expr::col(0));
        assert_eq!(infer_type(&e, &env()).unwrap(), DataType::Int);
        let e = Expr::binary(BinOp::Add, Expr::col(0), Expr::col(1));
        assert_eq!(infer_type(&e, &env()).unwrap(), DataType::Float);
        let e = Expr::binary(BinOp::Div, Expr::col(0), Expr::col(0));
        assert_eq!(infer_type(&e, &env()).unwrap(), DataType::Float);
        let e = Expr::binary(BinOp::Add, Expr::col(0), Expr::col(2));
        assert!(infer_type(&e, &env()).is_err());
    }

    #[test]
    fn comparison_and_logic_typing() {
        let cmp = Expr::gt(Expr::col(0), Expr::col(1));
        assert_eq!(infer_type(&cmp, &env()).unwrap(), DataType::Bool);
        let and = Expr::and(cmp.clone(), Expr::col(3));
        assert_eq!(infer_type(&and, &env()).unwrap(), DataType::Bool);
        let bad = Expr::and(cmp, Expr::col(0));
        assert!(infer_type(&bad, &env()).is_err());
        let bad_cmp = Expr::gt(Expr::col(0), Expr::col(2));
        assert!(infer_type(&bad_cmp, &env()).is_err());
    }

    #[test]
    fn scalar_ref_typing() {
        let e = Expr::gt(
            Expr::col(1),
            Expr::ScalarRef {
                id: SubqueryId(0),
                key: vec![],
            },
        );
        assert_eq!(infer_type(&e, &env()).unwrap(), DataType::Bool);
        let e = Expr::ScalarRef {
            id: SubqueryId(9),
            key: vec![],
        };
        assert!(infer_type(&e, &env()).is_err());
    }

    #[test]
    fn function_typing() {
        let reg = FunctionRegistry::with_builtins();
        let sqrt = reg.get("sqrt").unwrap();
        let e = Expr::Func {
            name: "sqrt".into(),
            func: sqrt.clone(),
            args: vec![Expr::col(1)],
        };
        assert_eq!(infer_type(&e, &env()).unwrap(), DataType::Float);
        let e = Expr::Func {
            name: "sqrt".into(),
            func: sqrt,
            args: vec![Expr::col(2)],
        };
        assert!(infer_type(&e, &env()).is_err());
    }

    #[test]
    fn case_typing() {
        let e = Expr::Case {
            branches: vec![(Expr::col(3), Expr::col(0))],
            else_expr: Some(Box::new(Expr::col(1))),
        };
        assert_eq!(infer_type(&e, &env()).unwrap(), DataType::Float);
        let bad = Expr::Case {
            branches: vec![(Expr::col(3), Expr::col(0))],
            else_expr: Some(Box::new(Expr::col(2))),
        };
        assert!(infer_type(&bad, &env()).is_err());
    }

    #[test]
    fn out_of_range_column() {
        assert!(infer_type(&Expr::col(99), &env()).is_err());
    }
}
