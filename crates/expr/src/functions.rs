//! Scalar function registry with SQL built-ins and user-defined functions.
//!
//! G-OLA explicitly supports UDFs (paper §2): any type implementing
//! [`ScalarFn`] can be registered and then referenced from SQL by name.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use gola_common::{DataType, Error, Result, Value};

/// A scalar (row-at-a-time) function.
pub trait ScalarFn: Send + Sync {
    /// Evaluate on already-evaluated arguments.
    fn call(&self, args: &[Value]) -> Result<Value>;

    /// Static return type given argument types; also validates arity.
    fn return_type(&self, arg_types: &[DataType]) -> Result<DataType>;

    /// `true` if `f(NULL, ...) = NULL` (the default). Null-strict functions
    /// short-circuit on null inputs before `call` is invoked.
    fn null_strict(&self) -> bool {
        true
    }
}

impl fmt::Debug for dyn ScalarFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("<scalar-fn>")
    }
}

/// Name → function map (case-insensitive). Cloning shares entries.
#[derive(Debug, Clone)]
pub struct FunctionRegistry {
    fns: BTreeMap<String, Arc<dyn ScalarFn>>,
}

impl FunctionRegistry {
    /// Registry pre-populated with the SQL built-ins.
    pub fn with_builtins() -> Self {
        let mut r = FunctionRegistry {
            fns: BTreeMap::new(),
        };
        macro_rules! num1 {
            ($name:expr, $f:expr) => {
                r.register($name, Arc::new(NumericUnary { name: $name, f: $f }))
                    .unwrap();
            };
        }
        num1!("abs", |x| x.abs());
        num1!("sqrt", |x| x.sqrt());
        num1!("ln", |x| x.ln());
        num1!("exp", |x| x.exp());
        num1!("floor", |x| x.floor());
        num1!("ceil", |x| x.ceil());
        num1!("sign", |x| if x > 0.0 {
            1.0
        } else if x < 0.0 {
            -1.0
        } else {
            0.0
        });
        num1!("log10", |x| x.log10());
        num1!("log2", |x| x.log2());
        num1!("trunc", |x| x.trunc());
        r.register("round", Arc::new(RoundFn)).unwrap();
        r.register("pow", Arc::new(PowFn)).unwrap();
        r.register("least", Arc::new(LeastGreatest { greatest: false }))
            .unwrap();
        r.register("greatest", Arc::new(LeastGreatest { greatest: true }))
            .unwrap();
        r.register("coalesce", Arc::new(CoalesceFn)).unwrap();
        r.register("if", Arc::new(IfFn)).unwrap();
        r.register("nullif", Arc::new(NullIfFn)).unwrap();
        r.register("length", Arc::new(LengthFn)).unwrap();
        r.register("upper", Arc::new(CaseFn { upper: true }))
            .unwrap();
        r.register("lower", Arc::new(CaseFn { upper: false }))
            .unwrap();
        r.register("substr", Arc::new(SubstrFn)).unwrap();
        r.register("concat", Arc::new(ConcatFn)).unwrap();
        r.register("trim", Arc::new(TrimFn)).unwrap();
        r.register("replace", Arc::new(ReplaceFn)).unwrap();
        r.register("starts_with", Arc::new(StartsWithFn)).unwrap();
        r
    }

    /// Empty registry (tests, restricted environments).
    pub fn empty() -> Self {
        FunctionRegistry {
            fns: BTreeMap::new(),
        }
    }

    /// Register a function; errors on duplicate names.
    pub fn register(&mut self, name: &str, f: Arc<dyn ScalarFn>) -> Result<()> {
        let key = name.to_ascii_lowercase();
        if self.fns.contains_key(&key) {
            return Err(Error::bind(format!("function '{key}' already registered")));
        }
        self.fns.insert(key, f);
        Ok(())
    }

    /// Look up a function by name.
    pub fn get(&self, name: &str) -> Result<Arc<dyn ScalarFn>> {
        self.fns
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| Error::bind(format!("unknown function '{name}'")))
    }

    pub fn contains(&self, name: &str) -> bool {
        self.fns.contains_key(&name.to_ascii_lowercase())
    }

    pub fn names(&self) -> Vec<String> {
        self.fns.keys().cloned().collect()
    }
}

impl Default for FunctionRegistry {
    fn default() -> Self {
        FunctionRegistry::with_builtins()
    }
}

// ---------------------------------------------------------------------------
// Built-ins
// ---------------------------------------------------------------------------

struct NumericUnary {
    name: &'static str,
    f: fn(f64) -> f64,
}

impl ScalarFn for NumericUnary {
    fn call(&self, args: &[Value]) -> Result<Value> {
        let x = args[0].expect_f64(self.name)?;
        Ok(Value::Float((self.f)(x)))
    }

    fn return_type(&self, arg_types: &[DataType]) -> Result<DataType> {
        expect_arity(self.name, arg_types, 1)?;
        expect_numeric(self.name, arg_types[0])?;
        Ok(DataType::Float)
    }
}

struct RoundFn;

impl ScalarFn for RoundFn {
    fn call(&self, args: &[Value]) -> Result<Value> {
        let x = args[0].expect_f64("round")?;
        let digits = if args.len() == 2 {
            args[1].as_i64().unwrap_or(0)
        } else {
            0
        };
        // Clamp before converting: `round(x, 5_000_000_000)` must saturate,
        // not truncate through `as i32`. ±400 is beyond f64's decimal range.
        let m = 10f64.powi(i32::try_from(digits.clamp(-400, 400)).unwrap_or(0));
        Ok(Value::Float((x * m).round() / m))
    }

    fn return_type(&self, arg_types: &[DataType]) -> Result<DataType> {
        if arg_types.is_empty() || arg_types.len() > 2 {
            return Err(Error::bind("round expects 1 or 2 arguments"));
        }
        expect_numeric("round", arg_types[0])?;
        Ok(DataType::Float)
    }
}

struct PowFn;

impl ScalarFn for PowFn {
    fn call(&self, args: &[Value]) -> Result<Value> {
        Ok(Value::Float(
            args[0].expect_f64("pow")?.powf(args[1].expect_f64("pow")?),
        ))
    }

    fn return_type(&self, arg_types: &[DataType]) -> Result<DataType> {
        expect_arity("pow", arg_types, 2)?;
        Ok(DataType::Float)
    }
}

struct LeastGreatest {
    greatest: bool,
}

impl ScalarFn for LeastGreatest {
    fn call(&self, args: &[Value]) -> Result<Value> {
        let mut best: Option<&Value> = None;
        for a in args {
            best = Some(match best {
                None => a,
                Some(b) => {
                    let a_wins = if self.greatest {
                        a.total_cmp(b) == std::cmp::Ordering::Greater
                    } else {
                        a.total_cmp(b) == std::cmp::Ordering::Less
                    };
                    if a_wins {
                        a
                    } else {
                        b
                    }
                }
            });
        }
        Ok(best.cloned().unwrap_or(Value::Null))
    }

    fn return_type(&self, arg_types: &[DataType]) -> Result<DataType> {
        if arg_types.is_empty() {
            return Err(Error::bind("least/greatest expects at least 1 argument"));
        }
        let mut t = arg_types[0];
        for &other in &arg_types[1..] {
            t = t
                .unify(other)
                .ok_or_else(|| Error::bind("least/greatest arguments must share a type"))?;
        }
        Ok(t)
    }
}

struct CoalesceFn;

impl ScalarFn for CoalesceFn {
    fn call(&self, args: &[Value]) -> Result<Value> {
        Ok(args
            .iter()
            .find(|v| !v.is_null())
            .cloned()
            .unwrap_or(Value::Null))
    }

    fn return_type(&self, arg_types: &[DataType]) -> Result<DataType> {
        if arg_types.is_empty() {
            return Err(Error::bind("coalesce expects at least 1 argument"));
        }
        let mut t = DataType::Null;
        for &other in arg_types {
            t = t
                .unify(other)
                .ok_or_else(|| Error::bind("coalesce arguments must share a type"))?;
        }
        Ok(t)
    }

    fn null_strict(&self) -> bool {
        false
    }
}

struct IfFn;

impl ScalarFn for IfFn {
    fn call(&self, args: &[Value]) -> Result<Value> {
        match args[0].as_bool() {
            Some(true) => Ok(args[1].clone()),
            _ => Ok(args[2].clone()),
        }
    }

    fn return_type(&self, arg_types: &[DataType]) -> Result<DataType> {
        expect_arity("if", arg_types, 3)?;
        arg_types[1]
            .unify(arg_types[2])
            .ok_or_else(|| Error::bind("if branches must share a type"))
    }

    fn null_strict(&self) -> bool {
        false
    }
}

struct NullIfFn;

impl ScalarFn for NullIfFn {
    fn call(&self, args: &[Value]) -> Result<Value> {
        if args[0].sql_eq(&args[1]) == Some(true) {
            Ok(Value::Null)
        } else {
            Ok(args[0].clone())
        }
    }

    fn return_type(&self, arg_types: &[DataType]) -> Result<DataType> {
        expect_arity("nullif", arg_types, 2)?;
        Ok(arg_types[0])
    }

    fn null_strict(&self) -> bool {
        false
    }
}

struct LengthFn;

impl ScalarFn for LengthFn {
    fn call(&self, args: &[Value]) -> Result<Value> {
        let s = args[0]
            .as_str()
            .ok_or_else(|| Error::exec("length expects a string"))?;
        Ok(Value::Int(s.chars().count() as i64))
    }

    fn return_type(&self, arg_types: &[DataType]) -> Result<DataType> {
        expect_arity("length", arg_types, 1)?;
        Ok(DataType::Int)
    }
}

struct CaseFn {
    upper: bool,
}

impl ScalarFn for CaseFn {
    fn call(&self, args: &[Value]) -> Result<Value> {
        let s = args[0]
            .as_str()
            .ok_or_else(|| Error::exec("upper/lower expects a string"))?;
        Ok(Value::str(if self.upper {
            s.to_uppercase()
        } else {
            s.to_lowercase()
        }))
    }

    fn return_type(&self, arg_types: &[DataType]) -> Result<DataType> {
        expect_arity("upper/lower", arg_types, 1)?;
        Ok(DataType::Str)
    }
}

struct SubstrFn;

impl ScalarFn for SubstrFn {
    fn call(&self, args: &[Value]) -> Result<Value> {
        let s = args[0]
            .as_str()
            .ok_or_else(|| Error::exec("substr expects a string"))?;
        // SQL substr is 1-based. The `max` guards make the values
        // non-negative, so the checked conversions cannot fail — but they
        // keep a future edit from reintroducing a sign-wrapping `as usize`.
        let start = usize::try_from(args[1].as_i64().unwrap_or(1).max(1) - 1).unwrap_or(0);
        let len = if args.len() == 3 {
            usize::try_from(args[2].as_i64().unwrap_or(0).max(0)).unwrap_or(0)
        } else {
            usize::MAX
        };
        Ok(Value::str(
            s.chars().skip(start).take(len).collect::<String>(),
        ))
    }

    fn return_type(&self, arg_types: &[DataType]) -> Result<DataType> {
        if arg_types.len() < 2 || arg_types.len() > 3 {
            return Err(Error::bind("substr expects 2 or 3 arguments"));
        }
        Ok(DataType::Str)
    }
}

struct ConcatFn;

impl ScalarFn for ConcatFn {
    fn call(&self, args: &[Value]) -> Result<Value> {
        let mut out = String::new();
        for a in args {
            if !a.is_null() {
                out.push_str(&a.to_string());
            }
        }
        Ok(Value::str(out))
    }

    fn return_type(&self, _arg_types: &[DataType]) -> Result<DataType> {
        Ok(DataType::Str)
    }

    fn null_strict(&self) -> bool {
        false
    }
}

struct TrimFn;

impl ScalarFn for TrimFn {
    fn call(&self, args: &[Value]) -> Result<Value> {
        let s = args[0]
            .as_str()
            .ok_or_else(|| Error::exec("trim expects a string"))?;
        Ok(Value::str(s.trim()))
    }

    fn return_type(&self, arg_types: &[DataType]) -> Result<DataType> {
        expect_arity("trim", arg_types, 1)?;
        Ok(DataType::Str)
    }
}

struct ReplaceFn;

impl ScalarFn for ReplaceFn {
    fn call(&self, args: &[Value]) -> Result<Value> {
        let s = args[0]
            .as_str()
            .ok_or_else(|| Error::exec("replace expects strings"))?;
        let from = args[1]
            .as_str()
            .ok_or_else(|| Error::exec("replace expects strings"))?;
        let to = args[2]
            .as_str()
            .ok_or_else(|| Error::exec("replace expects strings"))?;
        if from.is_empty() {
            return Ok(Value::str(s));
        }
        Ok(Value::str(s.replace(from, to)))
    }

    fn return_type(&self, arg_types: &[DataType]) -> Result<DataType> {
        expect_arity("replace", arg_types, 3)?;
        Ok(DataType::Str)
    }
}

struct StartsWithFn;

impl ScalarFn for StartsWithFn {
    fn call(&self, args: &[Value]) -> Result<Value> {
        let s = args[0]
            .as_str()
            .ok_or_else(|| Error::exec("starts_with expects strings"))?;
        let prefix = args[1]
            .as_str()
            .ok_or_else(|| Error::exec("starts_with expects strings"))?;
        Ok(Value::Bool(s.starts_with(prefix)))
    }

    fn return_type(&self, arg_types: &[DataType]) -> Result<DataType> {
        expect_arity("starts_with", arg_types, 2)?;
        Ok(DataType::Bool)
    }
}

fn expect_arity(name: &str, arg_types: &[DataType], n: usize) -> Result<()> {
    if arg_types.len() != n {
        return Err(Error::bind(format!(
            "{name} expects {n} argument(s), got {}",
            arg_types.len()
        )));
    }
    Ok(())
}

fn expect_numeric(name: &str, t: DataType) -> Result<()> {
    if !t.is_numeric() && t != DataType::Null {
        return Err(Error::bind(format!(
            "{name} expects a numeric argument, got {t}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> FunctionRegistry {
        FunctionRegistry::with_builtins()
    }

    #[test]
    fn lookup_case_insensitive() {
        assert!(reg().get("ABS").is_ok());
        assert!(reg().get("nope").is_err());
        assert!(reg().contains("Sqrt"));
    }

    #[test]
    fn numeric_builtins() {
        let r = reg();
        assert_eq!(
            r.get("abs").unwrap().call(&[Value::Float(-2.0)]).unwrap(),
            Value::Float(2.0)
        );
        assert_eq!(
            r.get("sqrt").unwrap().call(&[Value::Int(9)]).unwrap(),
            Value::Float(3.0)
        );
        assert_eq!(
            r.get("sign").unwrap().call(&[Value::Float(-7.0)]).unwrap(),
            Value::Float(-1.0)
        );
        assert_eq!(
            r.get("round")
                .unwrap()
                .call(&[Value::Float(2.345), Value::Int(2)])
                .unwrap(),
            Value::Float(2.35)
        );
        assert_eq!(
            r.get("pow")
                .unwrap()
                .call(&[Value::Int(2), Value::Int(10)])
                .unwrap(),
            Value::Float(1024.0)
        );
    }

    #[test]
    fn conditional_builtins() {
        let r = reg();
        assert_eq!(
            r.get("coalesce")
                .unwrap()
                .call(&[Value::Null, Value::Int(5)])
                .unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            r.get("if")
                .unwrap()
                .call(&[Value::Bool(false), Value::Int(1), Value::Int(2)])
                .unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            r.get("nullif")
                .unwrap()
                .call(&[Value::Int(3), Value::Int(3)])
                .unwrap(),
            Value::Null
        );
        assert_eq!(
            r.get("least")
                .unwrap()
                .call(&[Value::Int(3), Value::Int(1), Value::Int(2)])
                .unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            r.get("greatest")
                .unwrap()
                .call(&[Value::Float(1.5), Value::Int(2)])
                .unwrap(),
            Value::Int(2)
        );
    }

    #[test]
    fn string_builtins() {
        let r = reg();
        assert_eq!(
            r.get("length")
                .unwrap()
                .call(&[Value::str("héllo")])
                .unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            r.get("upper").unwrap().call(&[Value::str("ab")]).unwrap(),
            Value::str("AB")
        );
        assert_eq!(
            r.get("substr")
                .unwrap()
                .call(&[Value::str("hello"), Value::Int(2), Value::Int(3)])
                .unwrap(),
            Value::str("ell")
        );
        assert_eq!(
            r.get("concat")
                .unwrap()
                .call(&[Value::str("a"), Value::Null, Value::Int(3)])
                .unwrap(),
            Value::str("a3")
        );
    }

    #[test]
    fn return_types_validate_arity() {
        let r = reg();
        assert!(r.get("abs").unwrap().return_type(&[DataType::Int]).is_ok());
        assert!(r.get("abs").unwrap().return_type(&[]).is_err());
        assert!(r.get("abs").unwrap().return_type(&[DataType::Str]).is_err());
        assert_eq!(
            r.get("if")
                .unwrap()
                .return_type(&[DataType::Bool, DataType::Int, DataType::Float])
                .unwrap(),
            DataType::Float
        );
    }

    #[test]
    fn more_string_and_math_builtins() {
        let r = reg();
        assert_eq!(
            r.get("trim").unwrap().call(&[Value::str("  hi ")]).unwrap(),
            Value::str("hi")
        );
        assert_eq!(
            r.get("replace")
                .unwrap()
                .call(&[Value::str("a-b-c"), Value::str("-"), Value::str("+")])
                .unwrap(),
            Value::str("a+b+c")
        );
        assert_eq!(
            r.get("replace")
                .unwrap()
                .call(&[Value::str("abc"), Value::str(""), Value::str("x")])
                .unwrap(),
            Value::str("abc")
        );
        assert_eq!(
            r.get("starts_with")
                .unwrap()
                .call(&[Value::str("Brand#11"), Value::str("Brand")])
                .unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            r.get("log10").unwrap().call(&[Value::Int(1000)]).unwrap(),
            Value::Float(3.0)
        );
        assert_eq!(
            r.get("trunc").unwrap().call(&[Value::Float(-2.7)]).unwrap(),
            Value::Float(-2.0)
        );
    }

    #[test]
    fn udf_registration() {
        struct Double;
        impl ScalarFn for Double {
            fn call(&self, args: &[Value]) -> Result<Value> {
                Ok(Value::Float(args[0].expect_f64("double")? * 2.0))
            }
            fn return_type(&self, arg_types: &[DataType]) -> Result<DataType> {
                expect_arity("double", arg_types, 1)?;
                Ok(DataType::Float)
            }
        }
        let mut r = reg();
        r.register("double", Arc::new(Double)).unwrap();
        assert_eq!(
            r.get("DOUBLE").unwrap().call(&[Value::Int(4)]).unwrap(),
            Value::Float(8.0)
        );
        assert!(r.register("double", Arc::new(Double)).is_err());
    }
}
