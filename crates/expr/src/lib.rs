//! Expression layer of the G-OLA engine.
//!
//! Three evaluation modes drive the G-OLA execution model (paper §3.2):
//!
//! * **Point evaluation** ([`eval::eval`]) — evaluate an expression against a
//!   row using the *current running estimates* of any inner-aggregate
//!   references. Used for the lazily-updated answers over uncertain tuples.
//! * **Interval evaluation** ([`interval`]) — propagate *variation ranges*
//!   `R(u)` through arithmetic so a predicate `x θ f(u)` can be classified.
//! * **Three-valued predicate evaluation** ([`tri`]) — classify each tuple at
//!   every predicate into deterministic-true / deterministic-false /
//!   uncertain by range overlap (`R(x) ∩ R(y) = ∅` ⇒ deterministic).
//!
//! Inner aggregates appear as [`Expr::ScalarRef`] (a scalar produced by
//! another lineage block, optionally keyed by correlation columns) and
//! [`Expr::InSubquery`] (membership in another block's filtered group set).
//! The concrete values/ranges behind those references are supplied by an
//! [`eval::EvalContext`], so the same expression tree runs unchanged under
//! the exact batch engine, classical delta maintenance, and G-OLA.

pub mod eval;
pub mod expr;
pub mod functions;
pub mod interval;
pub mod tri;
pub mod types;
pub mod vector;

pub use eval::{eval, eval_predicate, eval_range, eval_tri, EvalContext, ExactContext};
pub use expr::{BinOp, Expr, SubqueryId, UnaryOp};
pub use functions::{FunctionRegistry, ScalarFn};
pub use interval::RangeVal;
pub use tri::Tri;
