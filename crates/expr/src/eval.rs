//! Expression evaluation: point, interval, and three-valued.
//!
//! The same [`Expr`] tree is evaluated in three ways:
//!
//! * [`eval`] — point evaluation with SQL null semantics, using the *current
//!   running estimates* for subquery references.
//! * [`eval_range`] — abstract evaluation over variation ranges
//!   ([`RangeVal`]), propagating uncertainty through arithmetic.
//! * [`eval_tri`] — predicate classification. Internally this is a sound
//!   abstract interpretation over the *set of possible SQL 3VL outcomes*
//!   (`{TRUE}`, `{FALSE, NULL}`, ...), collapsed to [`Tri`] under filter
//!   semantics: a tuple passes a filter iff the predicate is SQL `TRUE`.
//!
//! The values behind subquery references come from an [`EvalContext`], so
//! the batch engine (exact values), classical delta maintenance, and the
//! G-OLA online executor (estimates + ranges) share this code.

use gola_common::{Error, Result, Row, Value};

use crate::expr::{BinOp, Expr, SubqueryId, UnaryOp};
use crate::interval::RangeVal;
use crate::tri::Tri;

/// Supplies row data and subquery values during evaluation.
pub trait EvalContext {
    /// Current row's value for column `idx`.
    fn column(&self, idx: usize) -> &Value;

    /// Variation range of column `idx`. Defaults to the exact current value;
    /// the online executor overrides this for group rows whose aggregate
    /// outputs carry bootstrap ranges (HAVING classification).
    fn column_range(&self, idx: usize) -> RangeVal {
        RangeVal::Exact(self.column(idx).clone())
    }

    /// Current point estimate of a scalar subquery for `key` (empty for an
    /// uncorrelated subquery). `Null` when the group has no rows yet.
    fn scalar_current(&self, id: SubqueryId, key: &[Value]) -> Result<Value>;

    /// Variation range of a scalar subquery for `key`.
    fn scalar_range(&self, id: SubqueryId, key: &[Value]) -> Result<RangeVal>;

    /// Current membership estimate of `key` in a subquery's result set.
    fn member_current(&self, id: SubqueryId, key: &[Value]) -> Result<bool>;

    /// Three-valued membership of `key` (deterministic in/out, or may flip).
    fn member_tri(&self, id: SubqueryId, key: &[Value]) -> Result<Tri>;
}

/// Context for exact execution: subquery values are final, ranges are
/// points, membership is certain.
pub struct ExactContext<'a> {
    row: &'a Row,
    resolver: Option<&'a dyn ExactResolver>,
}

/// Exact subquery resolution used by the batch engine.
pub trait ExactResolver {
    fn scalar(&self, id: SubqueryId, key: &[Value]) -> Result<Value>;
    fn member(&self, id: SubqueryId, key: &[Value]) -> Result<bool>;
}

impl<'a> ExactContext<'a> {
    /// Context over a bare row; any subquery reference is an error.
    pub fn new(row: &'a Row) -> Self {
        ExactContext {
            row,
            resolver: None,
        }
    }

    /// Context with exact subquery resolution.
    pub fn with_resolver(row: &'a Row, resolver: &'a dyn ExactResolver) -> Self {
        ExactContext {
            row,
            resolver: Some(resolver),
        }
    }
}

impl EvalContext for ExactContext<'_> {
    fn column(&self, idx: usize) -> &Value {
        self.row.get(idx)
    }

    fn scalar_current(&self, id: SubqueryId, key: &[Value]) -> Result<Value> {
        match self.resolver {
            Some(r) => r.scalar(id, key),
            None => Err(Error::exec(format!("no resolver for subquery {id}"))),
        }
    }

    fn scalar_range(&self, id: SubqueryId, key: &[Value]) -> Result<RangeVal> {
        Ok(RangeVal::Exact(self.scalar_current(id, key)?))
    }

    fn member_current(&self, id: SubqueryId, key: &[Value]) -> Result<bool> {
        match self.resolver {
            Some(r) => r.member(id, key),
            None => Err(Error::exec(format!("no resolver for subquery {id}"))),
        }
    }

    fn member_tri(&self, id: SubqueryId, key: &[Value]) -> Result<Tri> {
        Ok(Tri::from(self.member_current(id, key)?))
    }
}

// ---------------------------------------------------------------------------
// Point evaluation
// ---------------------------------------------------------------------------

/// Evaluate `expr` to a [`Value`] with SQL null semantics.
pub fn eval(expr: &Expr, ctx: &dyn EvalContext) -> Result<Value> {
    match expr {
        Expr::Column(i) => Ok(ctx.column(*i).clone()),
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Unary { op, expr } => {
            let v = eval(expr, ctx)?;
            match op {
                UnaryOp::Neg => match v {
                    Value::Null => Ok(Value::Null),
                    Value::Int(i) => Ok(Value::Int(-i)),
                    Value::Float(f) => Ok(Value::Float(-f)),
                    other => Err(Error::exec(format!("cannot negate {}", other.data_type()))),
                },
                UnaryOp::Not => match v {
                    Value::Null => Ok(Value::Null),
                    Value::Bool(b) => Ok(Value::Bool(!b)),
                    other => Err(Error::exec(format!(
                        "NOT expects BOOL, got {}",
                        other.data_type()
                    ))),
                },
            }
        }
        Expr::Binary { op, left, right } => {
            if op.is_logical() {
                return eval_logical(*op, left, right, ctx);
            }
            let l = eval(left, ctx)?;
            let r = eval(right, ctx)?;
            eval_binary_values(*op, &l, &r)
        }
        Expr::Func { name, func, args } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(a, ctx)?);
            }
            if func.null_strict() && vals.iter().any(Value::is_null) {
                return Ok(Value::Null);
            }
            func.call(&vals)
                .map_err(|e| Error::exec(format!("in {name}(): {e}")))
        }
        Expr::Case {
            branches,
            else_expr,
        } => {
            for (cond, result) in branches {
                if eval(cond, ctx)?.as_bool() == Some(true) {
                    return eval(result, ctx);
                }
            }
            match else_expr {
                Some(e) => eval(e, ctx),
                None => Ok(Value::Null),
            }
        }
        Expr::Cast { expr, to } => eval(expr, ctx)?.cast(*to),
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, ctx)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::ScalarRef { id, key } => {
            let keys = eval_keys(key, ctx)?;
            ctx.scalar_current(*id, &keys)
        }
        Expr::InSubquery { id, key, negated } => {
            let keys = eval_keys(key, ctx)?;
            if keys.iter().any(Value::is_null) {
                return Ok(Value::Null);
            }
            let m = ctx.member_current(*id, &keys)?;
            Ok(Value::Bool(m != *negated))
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(expr, ctx)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let w = eval(item, ctx)?;
                match v.sql_eq(&w) {
                    Some(true) => return Ok(Value::Bool(!*negated)),
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(*negated))
            }
        }
    }
}

/// Evaluate a predicate to a pass/fail bool: SQL `TRUE` passes, `FALSE` and
/// `NULL` fail.
pub fn eval_predicate(expr: &Expr, ctx: &dyn EvalContext) -> Result<bool> {
    Ok(eval(expr, ctx)?.as_bool().unwrap_or(false))
}

fn eval_keys(keys: &[Expr], ctx: &dyn EvalContext) -> Result<Vec<Value>> {
    keys.iter().map(|k| eval(k, ctx)).collect()
}

fn eval_logical(op: BinOp, left: &Expr, right: &Expr, ctx: &dyn EvalContext) -> Result<Value> {
    let l = eval(left, ctx)?;
    match (op, l.as_bool()) {
        // Short-circuit.
        (BinOp::And, Some(false)) => return Ok(Value::Bool(false)),
        (BinOp::Or, Some(true)) => return Ok(Value::Bool(true)),
        _ => {}
    }
    let r = eval(right, ctx)?;
    let (lb, rb) = (l.as_bool(), r.as_bool());
    if !l.is_null() && lb.is_none() {
        return Err(Error::exec("AND/OR expects BOOL operands"));
    }
    if !r.is_null() && rb.is_none() {
        return Err(Error::exec("AND/OR expects BOOL operands"));
    }
    // SQL three-valued logic with NULL.
    let out = match op {
        BinOp::And => match (lb, rb) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        BinOp::Or => match (lb, rb) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        _ => unreachable!(),
    };
    Ok(out.map(Value::Bool).unwrap_or(Value::Null))
}

/// Apply a non-logical binary operator to two values (shared by point and
/// exact-range evaluation).
pub fn eval_binary_values(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    if op.is_comparison() {
        let ord = l.total_cmp(r);
        let b = match op {
            BinOp::Eq => ord == std::cmp::Ordering::Equal,
            BinOp::NotEq => ord != std::cmp::Ordering::Equal,
            BinOp::Lt => ord == std::cmp::Ordering::Less,
            BinOp::LtEq => ord != std::cmp::Ordering::Greater,
            BinOp::Gt => ord == std::cmp::Ordering::Greater,
            BinOp::GtEq => ord != std::cmp::Ordering::Less,
            _ => unreachable!(),
        };
        return Ok(Value::Bool(b));
    }
    // Arithmetic. Integer arithmetic stays integral except division.
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => {
            let out = match op {
                BinOp::Add => Value::Int(a.wrapping_add(*b)),
                BinOp::Sub => Value::Int(a.wrapping_sub(*b)),
                BinOp::Mul => Value::Int(a.wrapping_mul(*b)),
                BinOp::Div => {
                    if *b == 0 {
                        Value::Null
                    } else {
                        Value::Float(*a as f64 / *b as f64)
                    }
                }
                BinOp::Mod => {
                    if *b == 0 {
                        Value::Null
                    } else {
                        Value::Int(a.rem_euclid(*b))
                    }
                }
                _ => unreachable!(),
            };
            Ok(out)
        }
        _ => {
            let a = l.expect_f64("arithmetic")?;
            let b = r.expect_f64("arithmetic")?;
            let out = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0.0 {
                        return Ok(Value::Null);
                    }
                    a / b
                }
                BinOp::Mod => {
                    if b == 0.0 {
                        return Ok(Value::Null);
                    }
                    a.rem_euclid(b)
                }
                _ => unreachable!(),
            };
            Ok(Value::Float(out))
        }
    }
}

// ---------------------------------------------------------------------------
// Interval evaluation
// ---------------------------------------------------------------------------

/// Evaluate `expr` to a variation range.
pub fn eval_range(expr: &Expr, ctx: &dyn EvalContext) -> Result<RangeVal> {
    match expr {
        Expr::Column(i) => Ok(ctx.column_range(*i)),
        Expr::Literal(v) => Ok(RangeVal::Exact(v.clone())),
        Expr::Unary { op, expr } => {
            let r = eval_range(expr, ctx)?;
            match op {
                UnaryOp::Neg => match r {
                    RangeVal::Exact(v) => Ok(RangeVal::Exact(eval_binary_values(
                        BinOp::Sub,
                        &Value::Int(0),
                        &v,
                    )?)),
                    other => Ok(other.neg()),
                },
                // Boolean NOT as a *value*: deterministic only on exact input.
                UnaryOp::Not => match r {
                    RangeVal::Exact(v) => match v {
                        Value::Null => Ok(RangeVal::Exact(Value::Null)),
                        Value::Bool(b) => Ok(RangeVal::Exact(Value::Bool(!b))),
                        _ => Err(Error::exec("NOT expects BOOL")),
                    },
                    _ => Ok(RangeVal::Unknown),
                },
            }
        }
        Expr::Binary { op, left, right } => {
            if op.is_comparison() || op.is_logical() {
                // A predicate used as a value: exact only when classification
                // is deterministic.
                return Ok(match eval_tri_set(expr, ctx)? {
                    TriSet::TRUE => RangeVal::Exact(Value::Bool(true)),
                    s if s == TriSet::FALSE => RangeVal::Exact(Value::Bool(false)),
                    s if s == TriSet::NULL => RangeVal::Exact(Value::Null),
                    _ => RangeVal::Unknown,
                });
            }
            let l = eval_range(left, ctx)?;
            let r = eval_range(right, ctx)?;
            if let (RangeVal::Exact(a), RangeVal::Exact(b)) = (&l, &r) {
                return Ok(RangeVal::Exact(eval_binary_values(*op, a, b)?));
            }
            // Null in an exact operand poisons arithmetic to NULL.
            if matches!(&l, RangeVal::Exact(v) if v.is_null())
                || matches!(&r, RangeVal::Exact(v) if v.is_null())
            {
                return Ok(RangeVal::Exact(Value::Null));
            }
            Ok(match op {
                BinOp::Add => l.add(&r),
                BinOp::Sub => l.sub(&r),
                BinOp::Mul => l.mul(&r),
                BinOp::Div => l.div(&r),
                BinOp::Mod => RangeVal::Unknown,
                _ => unreachable!(),
            })
        }
        Expr::Func { func, args, name } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                match eval_range(a, ctx)? {
                    RangeVal::Exact(v) => vals.push(v),
                    _ => return Ok(RangeVal::Unknown),
                }
            }
            if func.null_strict() && vals.iter().any(Value::is_null) {
                return Ok(RangeVal::Exact(Value::Null));
            }
            Ok(RangeVal::Exact(
                func.call(&vals)
                    .map_err(|e| Error::exec(format!("in {name}(): {e}")))?,
            ))
        }
        Expr::Case {
            branches,
            else_expr,
        } => {
            // Follow the branch chain while conditions classify
            // deterministically; otherwise give up.
            for (cond, result) in branches {
                match eval_tri(cond, ctx)? {
                    Tri::True => return eval_range(result, ctx),
                    Tri::False => continue,
                    Tri::Maybe => return Ok(RangeVal::Unknown),
                }
            }
            match else_expr {
                Some(e) => eval_range(e, ctx),
                None => Ok(RangeVal::Exact(Value::Null)),
            }
        }
        Expr::Cast { expr, to } => match eval_range(expr, ctx)? {
            RangeVal::Exact(v) => Ok(RangeVal::Exact(v.cast(*to)?)),
            RangeVal::Num { lo, hi } => {
                if to.is_numeric() {
                    // Int truncation can only shrink magnitude; the float
                    // interval stays a sound over-approximation.
                    Ok(RangeVal::Num {
                        lo: lo.floor(),
                        hi: hi.ceil(),
                    })
                } else {
                    Ok(RangeVal::Unknown)
                }
            }
            RangeVal::Unknown => Ok(RangeVal::Unknown),
        },
        Expr::IsNull { .. } | Expr::InSubquery { .. } | Expr::InList { .. } => {
            Ok(match eval_tri_set(expr, ctx)? {
                TriSet::TRUE => RangeVal::Exact(Value::Bool(true)),
                s if s == TriSet::FALSE => RangeVal::Exact(Value::Bool(false)),
                s if s == TriSet::NULL => RangeVal::Exact(Value::Null),
                _ => RangeVal::Unknown,
            })
        }
        Expr::ScalarRef { id, key } => {
            let mut keys = Vec::with_capacity(key.len());
            for k in key {
                match eval_range(k, ctx)? {
                    RangeVal::Exact(v) => keys.push(v),
                    // Uncertain correlation key: cannot even pick the group.
                    _ => return Ok(RangeVal::Unknown),
                }
            }
            ctx.scalar_range(*id, &keys)
        }
    }
}

// ---------------------------------------------------------------------------
// Three-valued classification
// ---------------------------------------------------------------------------

/// The set of SQL 3VL outcomes a predicate may still take — a sound abstract
/// domain for classification under both null semantics and uncertainty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TriSet(u8);

impl TriSet {
    pub const TRUE: TriSet = TriSet(0b001);
    pub const FALSE: TriSet = TriSet(0b010);
    pub const NULL: TriSet = TriSet(0b100);
    pub const ANY: TriSet = TriSet(0b111);

    fn union(self, other: TriSet) -> TriSet {
        TriSet(self.0 | other.0)
    }

    fn may_true(self) -> bool {
        self.0 & 0b001 != 0
    }

    fn may_false(self) -> bool {
        self.0 & 0b010 != 0
    }

    fn may_null(self) -> bool {
        self.0 & 0b100 != 0
    }

    fn members(self) -> impl Iterator<Item = Option<bool>> {
        let mut v = Vec::with_capacity(3);
        if self.may_true() {
            v.push(Some(true));
        }
        if self.may_false() {
            v.push(Some(false));
        }
        if self.may_null() {
            v.push(None);
        }
        v.into_iter()
    }

    fn lift2(
        a: TriSet,
        b: TriSet,
        f: impl Fn(Option<bool>, Option<bool>) -> Option<bool>,
    ) -> TriSet {
        let mut out = TriSet(0);
        for x in a.members() {
            for y in b.members() {
                out = out.union(Self::from_opt(f(x, y)));
            }
        }
        out
    }

    fn from_opt(v: Option<bool>) -> TriSet {
        match v {
            Some(true) => TriSet::TRUE,
            Some(false) => TriSet::FALSE,
            None => TriSet::NULL,
        }
    }

    fn from_tri_nonnull(t: Tri) -> TriSet {
        match t {
            Tri::True => TriSet::TRUE,
            Tri::False => TriSet::FALSE,
            Tri::Maybe => TriSet::TRUE.union(TriSet::FALSE),
        }
    }

    fn not(self) -> TriSet {
        let mut out = TriSet(0);
        for x in self.members() {
            out = out.union(Self::from_opt(x.map(|b| !b)));
        }
        out
    }

    /// Collapse to filter semantics: a tuple passes iff SQL `TRUE`.
    pub fn to_filter_tri(self) -> Tri {
        let may_pass = self.may_true();
        let may_fail = self.may_false() || self.may_null();
        match (may_pass, may_fail) {
            (true, false) => Tri::True,
            (false, true) => Tri::False,
            (true, true) => Tri::Maybe,
            (false, false) => Tri::Maybe, // unreachable: sets are non-empty
        }
    }
}

fn sql_and(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    }
}

fn sql_or(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => Some(true),
        (Some(false), Some(false)) => Some(false),
        _ => None,
    }
}

/// Classify a predicate against the variation ranges provided by `ctx`:
/// [`Tri::True`]/[`Tri::False`] mean the pass/fail decision can never flip
/// as ranges refine; [`Tri::Maybe`] sends the tuple to the uncertain set.
pub fn eval_tri(expr: &Expr, ctx: &dyn EvalContext) -> Result<Tri> {
    Ok(eval_tri_set(expr, ctx)?.to_filter_tri())
}

/// The full outcome-set classification (exposed for tests and the planner).
pub fn eval_tri_set(expr: &Expr, ctx: &dyn EvalContext) -> Result<TriSet> {
    match expr {
        Expr::Literal(Value::Bool(b)) => Ok(TriSet::from_opt(Some(*b))),
        Expr::Literal(Value::Null) => Ok(TriSet::NULL),
        Expr::Column(_) => {
            // Boolean column: exact value or unknowable.
            match eval_range(expr, ctx)? {
                RangeVal::Exact(Value::Bool(b)) => Ok(TriSet::from_opt(Some(b))),
                RangeVal::Exact(Value::Null) => Ok(TriSet::NULL),
                RangeVal::Exact(v) => Err(Error::exec(format!(
                    "predicate column must be BOOL, got {}",
                    v.data_type()
                ))),
                _ => Ok(TriSet::ANY),
            }
        }
        Expr::Unary {
            op: UnaryOp::Not,
            expr,
        } => Ok(eval_tri_set(expr, ctx)?.not()),
        Expr::Unary { .. } => Err(Error::exec("numeric expression used as predicate")),
        Expr::Binary { op, left, right } if op.is_logical() => {
            let l = eval_tri_set(left, ctx)?;
            let r = eval_tri_set(right, ctx)?;
            Ok(match op {
                BinOp::And => TriSet::lift2(l, r, sql_and),
                BinOp::Or => TriSet::lift2(l, r, sql_or),
                _ => unreachable!(),
            })
        }
        Expr::Binary { op, left, right } if op.is_comparison() => {
            let l = eval_range(left, ctx)?;
            let r = eval_range(right, ctx)?;
            // NULL operands make the comparison NULL regardless of ranges.
            if matches!(&l, RangeVal::Exact(v) if v.is_null())
                || matches!(&r, RangeVal::Exact(v) if v.is_null())
            {
                return Ok(TriSet::NULL);
            }
            let t = match op {
                BinOp::Lt => l.lt(&r),
                BinOp::LtEq => l.le(&r),
                BinOp::Gt => l.gt(&r),
                BinOp::GtEq => l.ge(&r),
                BinOp::Eq => l.eq_tri(&r),
                BinOp::NotEq => l.eq_tri(&r).not(),
                _ => unreachable!(),
            };
            Ok(TriSet::from_tri_nonnull(t))
        }
        Expr::Binary { .. } => Err(Error::exec("arithmetic expression used as predicate")),
        Expr::IsNull { expr, negated } => {
            let r = eval_range(expr, ctx)?;
            let t = match r {
                RangeVal::Exact(v) => TriSet::from_opt(Some(v.is_null())),
                // A numeric range asserts the value exists (non-null).
                RangeVal::Num { .. } => TriSet::from_opt(Some(false)),
                RangeVal::Unknown => TriSet::TRUE.union(TriSet::FALSE),
            };
            Ok(if *negated { t.not() } else { t })
        }
        Expr::InSubquery { id, key, negated } => {
            let mut keys = Vec::with_capacity(key.len());
            for k in key {
                match eval_range(k, ctx)? {
                    RangeVal::Exact(v) => {
                        if v.is_null() {
                            return Ok(TriSet::NULL);
                        }
                        keys.push(v);
                    }
                    _ => return Ok(TriSet::ANY),
                }
            }
            let t = ctx.member_tri(*id, &keys)?;
            let s = TriSet::from_tri_nonnull(t);
            Ok(if *negated { s.not() } else { s })
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval_range(expr, ctx)?;
            if matches!(&v, RangeVal::Exact(x) if x.is_null()) {
                return Ok(TriSet::NULL);
            }
            let mut any_true = Tri::False;
            let mut saw_null = false;
            for item in list {
                let w = eval_range(item, ctx)?;
                if matches!(&w, RangeVal::Exact(x) if x.is_null()) {
                    saw_null = true;
                    continue;
                }
                any_true = any_true.or(v.eq_tri(&w));
            }
            let mut s = TriSet::from_tri_nonnull(any_true);
            if saw_null && s.may_false() {
                // Non-matching rows become NULL when the list contains NULL.
                s = TriSet(s.0 & !TriSet::FALSE.0).union(TriSet::NULL);
            }
            Ok(if *negated { s.not() } else { s })
        }
        // Anything else used as a predicate: deterministic only when it
        // evaluates exactly.
        other => match eval_range(other, ctx)? {
            RangeVal::Exact(Value::Bool(b)) => Ok(TriSet::from_opt(Some(b))),
            RangeVal::Exact(Value::Null) => Ok(TriSet::NULL),
            RangeVal::Exact(v) => Err(Error::exec(format!(
                "predicate must be BOOL, got {}",
                v.data_type()
            ))),
            _ => Ok(TriSet::ANY),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gola_common::row;

    struct TestCtx {
        row: Row,
        scalar: Value,
        range: RangeVal,
        member: Tri,
    }

    impl TestCtx {
        fn new(row: Row) -> Self {
            TestCtx {
                row,
                scalar: Value::Null,
                range: RangeVal::Unknown,
                member: Tri::Maybe,
            }
        }
    }

    impl EvalContext for TestCtx {
        fn column(&self, idx: usize) -> &Value {
            self.row.get(idx)
        }
        fn scalar_current(&self, _: SubqueryId, _: &[Value]) -> Result<Value> {
            Ok(self.scalar.clone())
        }
        fn scalar_range(&self, _: SubqueryId, _: &[Value]) -> Result<RangeVal> {
            Ok(self.range.clone())
        }
        fn member_current(&self, _: SubqueryId, _: &[Value]) -> Result<bool> {
            Ok(self.member == Tri::True)
        }
        fn member_tri(&self, _: SubqueryId, _: &[Value]) -> Result<Tri> {
            Ok(self.member)
        }
    }

    fn sref() -> Expr {
        Expr::ScalarRef {
            id: SubqueryId(0),
            key: vec![],
        }
    }

    #[test]
    fn point_arithmetic() {
        let ctx = TestCtx::new(row![10i64, 4.0f64]);
        let e = Expr::binary(BinOp::Add, Expr::col(0), Expr::col(1));
        assert_eq!(eval(&e, &ctx).unwrap(), Value::Float(14.0));
        let e = Expr::binary(BinOp::Div, Expr::col(0), Expr::lit(4i64));
        assert_eq!(eval(&e, &ctx).unwrap(), Value::Float(2.5));
        let e = Expr::binary(BinOp::Div, Expr::col(0), Expr::lit(0i64));
        assert_eq!(eval(&e, &ctx).unwrap(), Value::Null);
        let e = Expr::binary(BinOp::Mod, Expr::lit(-7i64), Expr::lit(3i64));
        assert_eq!(eval(&e, &ctx).unwrap(), Value::Int(2));
    }

    #[test]
    fn point_null_propagation() {
        let ctx = TestCtx::new(Row::new(vec![Value::Null, Value::Int(1)]));
        let e = Expr::binary(BinOp::Add, Expr::col(0), Expr::col(1));
        assert_eq!(eval(&e, &ctx).unwrap(), Value::Null);
        let e = Expr::gt(Expr::col(0), Expr::col(1));
        assert_eq!(eval(&e, &ctx).unwrap(), Value::Null);
        assert!(!eval_predicate(&e, &ctx).unwrap());
        let e = Expr::IsNull {
            expr: Box::new(Expr::col(0)),
            negated: false,
        };
        assert_eq!(eval(&e, &ctx).unwrap(), Value::Bool(true));
    }

    #[test]
    fn sql_three_valued_and_or() {
        let ctx = TestCtx::new(Row::new(vec![
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
        ]));
        // NULL AND FALSE = FALSE
        let e = Expr::and(Expr::col(0), Expr::col(1));
        assert_eq!(eval(&e, &ctx).unwrap(), Value::Bool(false));
        // NULL AND TRUE = NULL
        let e = Expr::and(Expr::col(0), Expr::col(2));
        assert_eq!(eval(&e, &ctx).unwrap(), Value::Null);
        // NULL OR TRUE = TRUE
        let e = Expr::binary(BinOp::Or, Expr::col(0), Expr::col(2));
        assert_eq!(eval(&e, &ctx).unwrap(), Value::Bool(true));
    }

    #[test]
    fn scalar_ref_point_and_range() {
        let mut ctx = TestCtx::new(row![35.0f64]);
        ctx.scalar = Value::Float(37.0);
        ctx.range = RangeVal::num(28.9, 45.1);
        // buffer_time > AVG(buffer_time): point says 35 > 37 = false.
        let pred = Expr::gt(Expr::col(0), sref());
        assert!(!eval_predicate(&pred, &ctx).unwrap());
        // Range says 35 ∈ [28.9, 45.1] → uncertain (the paper's t1).
        assert_eq!(eval_tri(&pred, &ctx).unwrap(), Tri::Maybe);
        // t2 with buffer_time 58 is deterministically selected...
        let ctx2 = TestCtx {
            row: row![58.0f64],
            ..ctx
        };
        assert_eq!(eval_tri(&pred, &ctx2).unwrap(), Tri::True);
        // ...and tn with 17 deterministically dropped.
        let ctx3 = TestCtx {
            row: row![17.0f64],
            ..ctx2
        };
        assert_eq!(eval_tri(&pred, &ctx3).unwrap(), Tri::False);
    }

    #[test]
    fn range_arithmetic_propagates() {
        let mut ctx = TestCtx::new(row![10.0f64]);
        ctx.range = RangeVal::num(10.0, 20.0);
        // 0.2 * $sq ∈ [2, 4]; col 10 > that → deterministic true.
        let pred = Expr::gt(
            Expr::col(0),
            Expr::binary(BinOp::Mul, Expr::lit(0.2), sref()),
        );
        assert_eq!(eval_tri(&pred, &ctx).unwrap(), Tri::True);
        // 2 * $sq ∈ [20, 40]; 10 > that → deterministic false.
        let pred = Expr::gt(
            Expr::col(0),
            Expr::binary(BinOp::Mul, Expr::lit(2.0), sref()),
        );
        assert_eq!(eval_tri(&pred, &ctx).unwrap(), Tri::False);
        // $sq - 5 ∈ [5, 15]; 10 > that → uncertain.
        let pred = Expr::gt(
            Expr::col(0),
            Expr::binary(BinOp::Sub, sref(), Expr::lit(5.0)),
        );
        assert_eq!(eval_tri(&pred, &ctx).unwrap(), Tri::Maybe);
    }

    #[test]
    fn tri_logical_combinations() {
        let mut ctx = TestCtx::new(row![10.0f64]);
        ctx.range = RangeVal::num(5.0, 15.0);
        let uncertain = Expr::gt(Expr::col(0), sref());
        let certain_false = Expr::gt(Expr::lit(0.0), Expr::lit(1.0));
        // uncertain AND false = deterministic false.
        let e = Expr::and(uncertain.clone(), certain_false.clone());
        assert_eq!(eval_tri(&e, &ctx).unwrap(), Tri::False);
        // NOT uncertain = uncertain.
        let e = Expr::Unary {
            op: UnaryOp::Not,
            expr: Box::new(uncertain.clone()),
        };
        assert_eq!(eval_tri(&e, &ctx).unwrap(), Tri::Maybe);
        // uncertain OR true = deterministic true.
        let e = Expr::binary(BinOp::Or, uncertain, Expr::lit(true));
        assert_eq!(eval_tri(&e, &ctx).unwrap(), Tri::True);
    }

    #[test]
    fn not_over_null_filter_semantics() {
        // x = NULL: (x > 1) is NULL → fails; NOT(x > 1) is also NULL → fails.
        let ctx = TestCtx::new(Row::new(vec![Value::Null]));
        let inner = Expr::gt(Expr::col(0), Expr::lit(1i64));
        assert_eq!(eval_tri(&inner, &ctx).unwrap(), Tri::False);
        let outer = Expr::Unary {
            op: UnaryOp::Not,
            expr: Box::new(inner),
        };
        // Deterministically fails despite the NOT — the 4-valued domain
        // keeps NULL distinct from FALSE.
        assert_eq!(eval_tri(&outer, &ctx).unwrap(), Tri::False);
    }

    #[test]
    fn membership_tri() {
        let mut ctx = TestCtx::new(row![7i64]);
        ctx.member = Tri::Maybe;
        let e = Expr::InSubquery {
            id: SubqueryId(1),
            key: vec![Expr::col(0)],
            negated: false,
        };
        assert_eq!(eval_tri(&e, &ctx).unwrap(), Tri::Maybe);
        ctx.member = Tri::True;
        assert_eq!(eval_tri(&e, &ctx).unwrap(), Tri::True);
        assert_eq!(eval(&e, &ctx).unwrap(), Value::Bool(true));
        let neg = Expr::InSubquery {
            id: SubqueryId(1),
            key: vec![Expr::col(0)],
            negated: true,
        };
        assert_eq!(eval_tri(&neg, &ctx).unwrap(), Tri::False);
    }

    #[test]
    fn in_list_null_semantics() {
        let ctx = TestCtx::new(row![3i64]);
        let e = Expr::InList {
            expr: Box::new(Expr::col(0)),
            list: vec![Expr::lit(1i64), Expr::lit(3i64)],
            negated: false,
        };
        assert_eq!(eval(&e, &ctx).unwrap(), Value::Bool(true));
        assert_eq!(eval_tri(&e, &ctx).unwrap(), Tri::True);
        // 3 IN (1, NULL) = NULL → filter-fails deterministically.
        let e = Expr::InList {
            expr: Box::new(Expr::col(0)),
            list: vec![Expr::lit(1i64), Expr::Literal(Value::Null)],
            negated: false,
        };
        assert_eq!(eval(&e, &ctx).unwrap(), Value::Null);
        assert_eq!(eval_tri(&e, &ctx).unwrap(), Tri::False);
    }

    #[test]
    fn case_evaluation() {
        let ctx = TestCtx::new(row![5i64]);
        let e = Expr::Case {
            branches: vec![
                (Expr::gt(Expr::col(0), Expr::lit(10i64)), Expr::lit("big")),
                (Expr::gt(Expr::col(0), Expr::lit(1i64)), Expr::lit("mid")),
            ],
            else_expr: Some(Box::new(Expr::lit("small"))),
        };
        assert_eq!(eval(&e, &ctx).unwrap(), Value::str("mid"));
        // Range evaluation follows deterministic branches.
        assert_eq!(
            eval_range(&e, &ctx).unwrap(),
            RangeVal::Exact(Value::str("mid"))
        );
    }

    #[test]
    fn exact_context_errors_without_resolver() {
        let r = row![1i64];
        let ctx = ExactContext::new(&r);
        assert!(eval(&sref(), &ctx).is_err());
    }

    #[test]
    fn interval_soundness_sample_points() {
        // For many sample values v in the range, the point evaluation of the
        // predicate must agree with a deterministic classification.
        let mut ctx = TestCtx::new(row![10.0f64]);
        ctx.range = RangeVal::num(3.0, 7.0);
        let pred = Expr::gt(
            Expr::col(0),
            Expr::binary(BinOp::Add, sref(), Expr::lit(1.0)),
        );
        // $sq + 1 ∈ [4, 8]; 10 > that always → True.
        assert_eq!(eval_tri(&pred, &ctx).unwrap(), Tri::True);
        for v in [3.0, 4.2, 5.5, 7.0] {
            ctx.scalar = Value::Float(v);
            assert!(eval_predicate(&pred, &ctx).unwrap());
        }
    }
}
