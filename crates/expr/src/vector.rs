//! Vectorized predicate kernels over typed column vectors.
//!
//! The row-at-a-time evaluator ([`crate::eval`]) walks the expression tree
//! once per tuple; on the classify hot path that interpretation overhead
//! dwarfs the comparisons themselves. This module compiles the common
//! predicate shapes — comparisons between columns and literals, `IS NULL`,
//! and `AND`/`OR`/`NOT` combinations thereof — into whole-column passes that
//! produce selection [`Bitmap`]s.
//!
//! The contract is strict bit-identity with the scalar point evaluator: for
//! every supported expression `p` and every row `i`,
//! [`TriMask::pass`]`[i]` ⇔ `eval_predicate(p, row_i)` and
//! [`TriMask::fail`]`[i]` ⇔ `eval_predicate(NOT p, row_i)` under SQL 3VL (a
//! row with neither bit is a NULL outcome, which filters treat as fail).
//! That is deliberately stated against `eval_predicate`, not `eval_tri`:
//! the interval-based `eval_tri` may conservatively answer `Maybe` where
//! the point answer is definite, so it bounds the mask but does not define
//! it. Unsupported shapes return `None` and the caller falls back to the
//! scalar path — the kernel never guesses. Property-tested in
//! `tests/proptests.rs::kernel_equivalence`.

use std::cmp::Ordering;
use std::sync::Arc;

use gola_common::{Bitmap, Column, ColumnData, Value};

use crate::expr::{BinOp, Expr, UnaryOp};

/// 3VL outcome bitmaps for one predicate over a chunk: a row is SQL `TRUE`
/// iff its `pass` bit is set, SQL `FALSE` iff its `fail` bit is set, and a
/// NULL outcome iff neither. (`pass ∧ fail` never holds.)
#[derive(Debug, Clone)]
pub struct TriMask {
    pub pass: Bitmap,
    pub fail: Bitmap,
}

impl TriMask {
    fn constant(len: usize, v: Option<bool>) -> TriMask {
        match v {
            Some(true) => TriMask {
                pass: Bitmap::new_set(len),
                fail: Bitmap::new_clear(len),
            },
            Some(false) => TriMask {
                pass: Bitmap::new_clear(len),
                fail: Bitmap::new_set(len),
            },
            None => TriMask {
                pass: Bitmap::new_clear(len),
                fail: Bitmap::new_clear(len),
            },
        }
    }
}

/// One side of a comparison: a chunk column or a per-chunk constant.
enum Operand<'a> {
    Col(&'a Column),
    Lit(&'a Value),
}

impl<'a> Operand<'a> {
    fn resolve(e: &'a Expr, cols: &'a [Arc<Column>]) -> Option<Operand<'a>> {
        match e {
            Expr::Column(i) => cols.get(*i).map(|c| Operand::Col(c)),
            Expr::Literal(v) => Some(Operand::Lit(v)),
            _ => None,
        }
    }

    /// `true` when every slot is numeric-or-NULL, so [`Value::total_cmp`]
    /// is guaranteed to take its numeric arm against another such operand.
    fn numeric_only(&self) -> bool {
        match self {
            Operand::Col(c) => matches!(
                c.data(),
                ColumnData::Int(_) | ColumnData::Float(_) | ColumnData::Bool(_)
            ),
            Operand::Lit(v) => matches!(
                v,
                Value::Int(_) | Value::Float(_) | Value::Bool(_) | Value::Null
            ),
        }
    }

    #[inline]
    fn num_at(&self, i: usize) -> Option<f64> {
        match self {
            Operand::Col(c) => c.as_f64(i),
            Operand::Lit(v) => v.as_f64(),
        }
    }

    #[inline]
    fn value_at(&self, i: usize) -> Value {
        match self {
            Operand::Col(c) => c.value(i),
            Operand::Lit(v) => (*v).clone(),
        }
    }
}

#[inline]
fn op_holds(op: BinOp, ord: Ordering) -> bool {
    match op {
        BinOp::Eq => ord == Ordering::Equal,
        BinOp::NotEq => ord != Ordering::Equal,
        BinOp::Lt => ord == Ordering::Less,
        BinOp::LtEq => ord != Ordering::Greater,
        BinOp::Gt => ord == Ordering::Greater,
        BinOp::GtEq => ord != Ordering::Less,
        // Callers guard on `op.is_comparison()`.
        _ => unreachable!("op_holds on non-comparison"),
    }
}

/// Match [`Value::total_cmp`]'s numeric arm exactly: normalize `-0.0` then
/// compare under IEEE total order.
#[inline]
fn num_total_cmp(x: f64, y: f64) -> Ordering {
    let x = if x == 0.0 { 0.0 } else { x };
    let y = if y == 0.0 { 0.0 } else { y };
    x.total_cmp(&y)
}

/// Fill `out` from a per-row three-valued comparison outcome.
fn masks_from<F: FnMut(usize) -> Option<bool>>(len: usize, mut holds: F) -> TriMask {
    let mut pass = Bitmap::new_clear(len);
    let mut fail = Bitmap::new_clear(len);
    for i in 0..len {
        match holds(i) {
            Some(true) => pass.set(i, true),
            Some(false) => fail.set(i, true),
            None => {}
        }
    }
    TriMask { pass, fail }
}

fn cmp_masks(l: &Operand<'_>, op: BinOp, r: &Operand<'_>, len: usize) -> TriMask {
    // Numeric fast path: both sides are typed numeric vectors (or numeric
    // constants), so Value::total_cmp reduces to a normalized f64 total
    // order. (Bool-vs-Bool agrees: false < true in both orders.)
    if l.numeric_only() && r.numeric_only() {
        if let Operand::Lit(v) = r {
            // Column-vs-constant: hoist the constant out of the loop.
            let y = v.as_f64();
            return masks_from(len, |i| {
                let x = l.num_at(i)?;
                Some(op_holds(op, num_total_cmp(x, y?)))
            });
        }
        return masks_from(len, |i| {
            let x = l.num_at(i)?;
            let y = r.num_at(i)?;
            Some(op_holds(op, num_total_cmp(x, y)))
        });
    }
    // Dictionary fast path: compare each distinct string once, then the
    // per-row loop is a code-indexed table lookup.
    match (l, r) {
        (Operand::Col(c), Operand::Lit(Value::Str(s)))
        | (Operand::Lit(Value::Str(s)), Operand::Col(c)) => {
            if let ColumnData::Str { dict, codes } = c.data() {
                let flip = matches!(l, Operand::Lit(_));
                let by_code: Vec<bool> = dict
                    .iter()
                    .map(|d| {
                        let ord = d.as_ref().cmp(s.as_ref());
                        op_holds(op, if flip { ord.reverse() } else { ord })
                    })
                    .collect();
                return masks_from(len, |i| {
                    if c.is_valid(i) {
                        Some(by_code[codes[i] as usize])
                    } else {
                        None
                    }
                });
            }
        }
        _ => {}
    }
    // Generic reference path: materialize both sides as values. Still one
    // comparison per row with no expression-tree walk.
    masks_from(len, |i| {
        let x = l.value_at(i);
        let y = r.value_at(i);
        if x.is_null() || y.is_null() {
            return None;
        }
        Some(op_holds(op, x.total_cmp(&y)))
    })
}

/// Classify a predicate over a chunk of `len` rows whose columns are `cols`,
/// producing 3VL outcome bitmaps. Returns `None` when the expression shape
/// is outside the vectorized subset (function calls, arithmetic, CASE,
/// subquery references, …) — callers must then take the row-at-a-time path.
pub fn classify_mask(expr: &Expr, cols: &[Arc<Column>], len: usize) -> Option<TriMask> {
    match expr {
        Expr::Literal(Value::Bool(b)) => Some(TriMask::constant(len, Some(*b))),
        Expr::Literal(Value::Null) => Some(TriMask::constant(len, None)),
        Expr::Column(i) => {
            // A bare boolean column used as a predicate.
            let c = cols.get(*i)?;
            if let ColumnData::Bool(xs) = c.data() {
                Some(masks_from(len, |i| {
                    if c.is_valid(i) {
                        Some(xs[i])
                    } else {
                        None
                    }
                }))
            } else {
                None
            }
        }
        Expr::Unary {
            op: UnaryOp::Not,
            expr,
        } => {
            let m = classify_mask(expr, cols, len)?;
            // SQL NOT: swaps TRUE and FALSE, fixes NULL.
            Some(TriMask {
                pass: m.fail,
                fail: m.pass,
            })
        }
        Expr::Binary { op, left, right } if op.is_comparison() => {
            let l = Operand::resolve(left, cols)?;
            let r = Operand::resolve(right, cols)?;
            Some(cmp_masks(&l, *op, &r, len))
        }
        Expr::Binary { op, left, right } if op.is_logical() => {
            let l = classify_mask(left, cols, len)?;
            let mut r = classify_mask(right, cols, len)?;
            match op {
                BinOp::And => {
                    // TRUE iff both true; FALSE iff either false.
                    let mut pass = l.pass;
                    pass.and_with(&r.pass);
                    r.fail.or_with(&l.fail);
                    Some(TriMask { pass, fail: r.fail })
                }
                BinOp::Or => {
                    // TRUE iff either true; FALSE iff both false.
                    let mut pass = l.pass;
                    pass.or_with(&r.pass);
                    r.fail.and_with(&l.fail);
                    Some(TriMask { pass, fail: r.fail })
                }
                _ => None,
            }
        }
        Expr::IsNull { expr, negated } => {
            let m = match Operand::resolve(expr, cols)? {
                Operand::Col(c) => masks_from(len, |i| Some(!c.is_valid(i))),
                Operand::Lit(v) => TriMask::constant(len, Some(v.is_null())),
            };
            Some(if *negated {
                TriMask {
                    pass: m.fail,
                    fail: m.pass,
                }
            } else {
                m
            })
        }
        _ => None,
    }
}

/// 2VL filter mask: bit `i` set iff the predicate is SQL `TRUE` on row `i`
/// (`FALSE` and NULL both filter the row out), matching
/// [`crate::eval_predicate`] on exact rows. `None` ⇒ unsupported shape.
pub fn predicate_mask(expr: &Expr, cols: &[Arc<Column>], len: usize) -> Option<Bitmap> {
    classify_mask(expr, cols, len).map(|m| m.pass)
}
