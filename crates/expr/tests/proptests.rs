//! Property tests for the expression layer.
//!
//! The load-bearing invariant of G-OLA's classification is **interval
//! soundness**: if `eval_tri` declares a predicate deterministic against a
//! variation range, then point evaluation must agree for *every* value in
//! that range. These tests sample ranges, predicates, and in-range values
//! and verify agreement.

use gola_common::{Result, Row, Value};
use gola_expr::eval::{eval, eval_predicate, eval_range, eval_tri};
use gola_expr::{BinOp, EvalContext, Expr, RangeVal, SubqueryId, Tri};
use proptest::prelude::*;

/// Context with one uncertain scalar (`sq0`) whose current value can be
/// repositioned inside a fixed range.
struct Ctx {
    row: Row,
    value: f64,
    range: (f64, f64),
    member: Tri,
    member_point: bool,
}

impl EvalContext for Ctx {
    fn column(&self, idx: usize) -> &Value {
        self.row.get(idx)
    }
    fn scalar_current(&self, _: SubqueryId, _: &[Value]) -> Result<Value> {
        Ok(Value::Float(self.value))
    }
    fn scalar_range(&self, _: SubqueryId, _: &[Value]) -> Result<RangeVal> {
        Ok(RangeVal::num(self.range.0, self.range.1))
    }
    fn member_current(&self, _: SubqueryId, _: &[Value]) -> Result<bool> {
        Ok(self.member_point)
    }
    fn member_tri(&self, _: SubqueryId, _: &[Value]) -> Result<Tri> {
        Ok(self.member)
    }
}

fn sref() -> Expr {
    Expr::ScalarRef {
        id: SubqueryId(0),
        key: vec![],
    }
}

fn cmp_ops() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Lt),
        Just(BinOp::LtEq),
        Just(BinOp::Gt),
        Just(BinOp::GtEq),
        Just(BinOp::Eq),
        Just(BinOp::NotEq),
    ]
}

/// A predicate comparing a column against an affine function of the
/// uncertain scalar — the shape of every nested-aggregate filter in the
/// paper's queries.
fn affine_predicate(op: BinOp, a: f64, b: f64) -> Expr {
    Expr::binary(
        op,
        Expr::col(0),
        Expr::binary(
            BinOp::Add,
            Expr::binary(BinOp::Mul, Expr::lit(a), sref()),
            Expr::lit(b),
        ),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Deterministic classification must agree with point evaluation at
    /// every sampled value of the uncertain scalar within its range.
    #[test]
    fn tri_soundness_for_affine_predicates(
        x in -100.0f64..100.0,
        lo in -50.0f64..50.0,
        width in 0.0f64..40.0,
        a in -3.0f64..3.0,
        b in -20.0f64..20.0,
        op in cmp_ops(),
        samples in prop::collection::vec(0.0f64..=1.0, 8),
    ) {
        let hi = lo + width;
        let pred = affine_predicate(op, a, b);
        let ctx = Ctx {
            row: Row::new(vec![Value::Float(x)]),
            value: lo,
            range: (lo, hi),
            member: Tri::Maybe,
            member_point: false,
        };
        let tri = eval_tri(&pred, &ctx).unwrap();
        if tri.is_deterministic() {
            for s in samples {
                let u = lo + s * width;
                let ctx = Ctx { value: u, ..ctx_clone(&ctx) };
                let point = eval_predicate(&pred, &ctx).unwrap();
                prop_assert_eq!(
                    point,
                    tri == Tri::True,
                    "tri {:?} but point {} at u = {} in [{}, {}] (pred {})",
                    tri, point, u, lo, hi, pred
                );
            }
        }
    }

    /// `eval_range` must contain the point evaluation for every position of
    /// the uncertain scalar inside its range.
    #[test]
    fn range_evaluation_contains_point_evaluation(
        x in -100.0f64..100.0,
        lo in -50.0f64..50.0,
        width in 0.0f64..40.0,
        a in -3.0f64..3.0,
        b in -20.0f64..20.0,
        s in 0.0f64..=1.0,
    ) {
        let hi = lo + width;
        let expr = Expr::binary(
            BinOp::Add,
            Expr::binary(BinOp::Mul, Expr::lit(a), sref()),
            Expr::binary(BinOp::Sub, Expr::col(0), Expr::lit(b)),
        );
        let ctx = Ctx {
            row: Row::new(vec![Value::Float(x)]),
            value: lo + s * width,
            range: (lo, hi),
            member: Tri::Maybe,
            member_point: false,
        };
        let r = eval_range(&expr, &ctx).unwrap();
        let point = eval(&expr, &ctx).unwrap().as_f64().unwrap();
        // An Unknown range (no bounds) is trivially sound.
        if let Some((rlo, rhi)) = r.bounds() {
            prop_assert!(
                rlo - 1e-9 <= point && point <= rhi + 1e-9,
                "point {} outside range [{}, {}]",
                point,
                rlo,
                rhi
            );
        }
    }

    /// Kleene conjunction of classifications is itself sound: combining a
    /// deterministic filter with an uncertain one never produces a wrong
    /// deterministic verdict.
    #[test]
    fn conjunction_classification_soundness(
        x in -100.0f64..100.0,
        threshold in -100.0f64..100.0,
        lo in -50.0f64..50.0,
        width in 0.0f64..40.0,
        s in 0.0f64..=1.0,
    ) {
        let hi = lo + width;
        let pred = Expr::and(
            Expr::gt(Expr::col(0), Expr::lit(threshold)),
            Expr::lt(Expr::col(0), sref()),
        );
        let u = lo + s * width;
        let ctx = Ctx {
            row: Row::new(vec![Value::Float(x)]),
            value: u,
            range: (lo, hi),
            member: Tri::Maybe,
            member_point: false,
        };
        let tri = eval_tri(&pred, &ctx).unwrap();
        if tri.is_deterministic() {
            let point = eval_predicate(&pred, &ctx).unwrap();
            prop_assert_eq!(point, tri == Tri::True);
        }
    }

    /// Membership classification: a deterministic tri must match the point
    /// membership it was derived from.
    #[test]
    fn membership_tri_consistency(member in any::<bool>(), negated in any::<bool>()) {
        let pred = Expr::InSubquery {
            id: SubqueryId(0),
            key: vec![Expr::col(0)],
            negated,
        };
        let ctx = Ctx {
            row: Row::new(vec![Value::Int(1)]),
            value: 0.0,
            range: (0.0, 0.0),
            member: Tri::from(member),
            member_point: member,
        };
        let tri = eval_tri(&pred, &ctx).unwrap();
        prop_assert!(tri.is_deterministic());
        prop_assert_eq!(tri == Tri::True, eval_predicate(&pred, &ctx).unwrap());
    }

    /// Interval arithmetic is sound under composition: sampling both
    /// endpoints and the midpoint of sub-ranges stays inside the computed
    /// interval for +, -, ×.
    #[test]
    fn interval_arithmetic_soundness(
        alo in -100.0f64..100.0,
        aw in 0.0f64..50.0,
        blo in -100.0f64..100.0,
        bw in 0.0f64..50.0,
        sa in 0.0f64..=1.0,
        sb in 0.0f64..=1.0,
    ) {
        let a = RangeVal::num(alo, alo + aw);
        let b = RangeVal::num(blo, blo + bw);
        let pa = alo + sa * aw;
        let pb = blo + sb * bw;
        for (r, v) in [
            (a.add(&b), pa + pb),
            (a.sub(&b), pa - pb),
            (a.mul(&b), pa * pb),
        ] {
            let (lo, hi) = r.bounds().unwrap();
            prop_assert!(lo - 1e-6 <= v && v <= hi + 1e-6, "{v} outside [{lo}, {hi}]");
        }
    }
}

fn ctx_clone(c: &Ctx) -> Ctx {
    Ctx {
        row: c.row.clone(),
        value: c.value,
        range: c.range,
        member: c.member,
        member_point: c.member_point,
    }
}
