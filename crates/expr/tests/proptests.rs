//! Property tests for the expression layer.
//!
//! The load-bearing invariant of G-OLA's classification is **interval
//! soundness**: if `eval_tri` declares a predicate deterministic against a
//! variation range, then point evaluation must agree for *every* value in
//! that range. These tests sample ranges, predicates, and in-range values
//! and verify agreement.

use gola_common::{Result, Row, Value};
use gola_expr::eval::{eval, eval_predicate, eval_range, eval_tri};
use gola_expr::{BinOp, EvalContext, Expr, RangeVal, SubqueryId, Tri};
use proptest::prelude::*;

/// Context with one uncertain scalar (`sq0`) whose current value can be
/// repositioned inside a fixed range.
struct Ctx {
    row: Row,
    value: f64,
    range: (f64, f64),
    member: Tri,
    member_point: bool,
}

impl EvalContext for Ctx {
    fn column(&self, idx: usize) -> &Value {
        self.row.get(idx)
    }
    fn scalar_current(&self, _: SubqueryId, _: &[Value]) -> Result<Value> {
        Ok(Value::Float(self.value))
    }
    fn scalar_range(&self, _: SubqueryId, _: &[Value]) -> Result<RangeVal> {
        Ok(RangeVal::num(self.range.0, self.range.1))
    }
    fn member_current(&self, _: SubqueryId, _: &[Value]) -> Result<bool> {
        Ok(self.member_point)
    }
    fn member_tri(&self, _: SubqueryId, _: &[Value]) -> Result<Tri> {
        Ok(self.member)
    }
}

fn sref() -> Expr {
    Expr::ScalarRef {
        id: SubqueryId(0),
        key: vec![],
    }
}

fn cmp_ops() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Lt),
        Just(BinOp::LtEq),
        Just(BinOp::Gt),
        Just(BinOp::GtEq),
        Just(BinOp::Eq),
        Just(BinOp::NotEq),
    ]
}

/// A predicate comparing a column against an affine function of the
/// uncertain scalar — the shape of every nested-aggregate filter in the
/// paper's queries.
fn affine_predicate(op: BinOp, a: f64, b: f64) -> Expr {
    Expr::binary(
        op,
        Expr::col(0),
        Expr::binary(
            BinOp::Add,
            Expr::binary(BinOp::Mul, Expr::lit(a), sref()),
            Expr::lit(b),
        ),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Deterministic classification must agree with point evaluation at
    /// every sampled value of the uncertain scalar within its range.
    #[test]
    fn tri_soundness_for_affine_predicates(
        x in -100.0f64..100.0,
        lo in -50.0f64..50.0,
        width in 0.0f64..40.0,
        a in -3.0f64..3.0,
        b in -20.0f64..20.0,
        op in cmp_ops(),
        samples in prop::collection::vec(0.0f64..=1.0, 8),
    ) {
        let hi = lo + width;
        let pred = affine_predicate(op, a, b);
        let ctx = Ctx {
            row: Row::new(vec![Value::Float(x)]),
            value: lo,
            range: (lo, hi),
            member: Tri::Maybe,
            member_point: false,
        };
        let tri = eval_tri(&pred, &ctx).unwrap();
        if tri.is_deterministic() {
            for s in samples {
                let u = lo + s * width;
                let ctx = Ctx { value: u, ..ctx_clone(&ctx) };
                let point = eval_predicate(&pred, &ctx).unwrap();
                prop_assert_eq!(
                    point,
                    tri == Tri::True,
                    "tri {:?} but point {} at u = {} in [{}, {}] (pred {})",
                    tri, point, u, lo, hi, pred
                );
            }
        }
    }

    /// `eval_range` must contain the point evaluation for every position of
    /// the uncertain scalar inside its range.
    #[test]
    fn range_evaluation_contains_point_evaluation(
        x in -100.0f64..100.0,
        lo in -50.0f64..50.0,
        width in 0.0f64..40.0,
        a in -3.0f64..3.0,
        b in -20.0f64..20.0,
        s in 0.0f64..=1.0,
    ) {
        let hi = lo + width;
        let expr = Expr::binary(
            BinOp::Add,
            Expr::binary(BinOp::Mul, Expr::lit(a), sref()),
            Expr::binary(BinOp::Sub, Expr::col(0), Expr::lit(b)),
        );
        let ctx = Ctx {
            row: Row::new(vec![Value::Float(x)]),
            value: lo + s * width,
            range: (lo, hi),
            member: Tri::Maybe,
            member_point: false,
        };
        let r = eval_range(&expr, &ctx).unwrap();
        let point = eval(&expr, &ctx).unwrap().as_f64().unwrap();
        // An Unknown range (no bounds) is trivially sound.
        if let Some((rlo, rhi)) = r.bounds() {
            prop_assert!(
                rlo - 1e-9 <= point && point <= rhi + 1e-9,
                "point {} outside range [{}, {}]",
                point,
                rlo,
                rhi
            );
        }
    }

    /// Kleene conjunction of classifications is itself sound: combining a
    /// deterministic filter with an uncertain one never produces a wrong
    /// deterministic verdict.
    #[test]
    fn conjunction_classification_soundness(
        x in -100.0f64..100.0,
        threshold in -100.0f64..100.0,
        lo in -50.0f64..50.0,
        width in 0.0f64..40.0,
        s in 0.0f64..=1.0,
    ) {
        let hi = lo + width;
        let pred = Expr::and(
            Expr::gt(Expr::col(0), Expr::lit(threshold)),
            Expr::lt(Expr::col(0), sref()),
        );
        let u = lo + s * width;
        let ctx = Ctx {
            row: Row::new(vec![Value::Float(x)]),
            value: u,
            range: (lo, hi),
            member: Tri::Maybe,
            member_point: false,
        };
        let tri = eval_tri(&pred, &ctx).unwrap();
        if tri.is_deterministic() {
            let point = eval_predicate(&pred, &ctx).unwrap();
            prop_assert_eq!(point, tri == Tri::True);
        }
    }

    /// Membership classification: a deterministic tri must match the point
    /// membership it was derived from.
    #[test]
    fn membership_tri_consistency(member in any::<bool>(), negated in any::<bool>()) {
        let pred = Expr::InSubquery {
            id: SubqueryId(0),
            key: vec![Expr::col(0)],
            negated,
        };
        let ctx = Ctx {
            row: Row::new(vec![Value::Int(1)]),
            value: 0.0,
            range: (0.0, 0.0),
            member: Tri::from(member),
            member_point: member,
        };
        let tri = eval_tri(&pred, &ctx).unwrap();
        prop_assert!(tri.is_deterministic());
        prop_assert_eq!(tri == Tri::True, eval_predicate(&pred, &ctx).unwrap());
    }

    /// Interval arithmetic is sound under composition: sampling both
    /// endpoints and the midpoint of sub-ranges stays inside the computed
    /// interval for +, -, ×.
    #[test]
    fn interval_arithmetic_soundness(
        alo in -100.0f64..100.0,
        aw in 0.0f64..50.0,
        blo in -100.0f64..100.0,
        bw in 0.0f64..50.0,
        sa in 0.0f64..=1.0,
        sb in 0.0f64..=1.0,
    ) {
        let a = RangeVal::num(alo, alo + aw);
        let b = RangeVal::num(blo, blo + bw);
        let pa = alo + sa * aw;
        let pb = blo + sb * bw;
        for (r, v) in [
            (a.add(&b), pa + pb),
            (a.sub(&b), pa - pb),
            (a.mul(&b), pa * pb),
        ] {
            let (lo, hi) = r.bounds().unwrap();
            prop_assert!(lo - 1e-6 <= v && v <= hi + 1e-6, "{v} outside [{lo}, {hi}]");
        }
    }
}

fn ctx_clone(c: &Ctx) -> Ctx {
    Ctx {
        row: c.row.clone(),
        value: c.value,
        range: c.range,
        member: c.member,
        member_point: c.member_point,
    }
}

// ---------------------------------------------------------------------------
// Vectorized kernel equivalence: `classify_mask` / `predicate_mask` vs the
// row-at-a-time `eval_tri` / `eval_predicate` reference.
//
// The columnar classify path promises strict bit-identity with the scalar
// evaluator on exact rows: `pass[i]` ⇔ `Tri::True`, `fail[i]` ⇔
// `Tri::False`, neither ⇔ a NULL outcome. These tests sample chunks with
// NULL validity holes, ±0.0, NaN, dictionary strings and boolean columns,
// plus every supported predicate shape (comparisons, IS [NOT] NULL, NOT,
// AND/OR), and check every row of the bitmaps against the reference.
// ---------------------------------------------------------------------------

mod kernel_equivalence {
    use std::sync::Arc;

    use gola_common::{Column, DataType, Row, Value};
    use gola_expr::eval::{eval_predicate, eval_tri};
    use gola_expr::vector::{classify_mask, predicate_mask};
    use gola_expr::{BinOp, Expr, Tri, UnaryOp};
    use proptest::prelude::*;

    use super::Ctx;

    /// Float slots: a small lattice (for Eq collisions) plus the signed-zero
    /// and NaN edges the total-order comparison must normalize, plus NULLs.
    fn float_val() -> BoxedStrategy<Value> {
        prop_oneof![
            (-16i32..16).prop_map(|i| Value::Float(i as f64 * 0.5)),
            (-16i32..16).prop_map(|i| Value::Float(i as f64 * 0.5)),
            (-16i32..16).prop_map(|i| Value::Float(i as f64 * 0.5)),
            Just(Value::Float(-0.0)),
            Just(Value::Float(f64::NAN)),
            Just(Value::Null),
        ]
        .boxed()
    }

    fn int_val() -> BoxedStrategy<Value> {
        prop_oneof![
            (-8i64..8).prop_map(Value::Int),
            (-8i64..8).prop_map(Value::Int),
            (-8i64..8).prop_map(Value::Int),
            Just(Value::Null),
        ]
        .boxed()
    }

    fn some_str() -> BoxedStrategy<Value> {
        prop_oneof![
            Just(Value::Str(Arc::from(""))),
            Just(Value::Str(Arc::from("aa"))),
            Just(Value::Str(Arc::from("ab"))),
            Just(Value::Str(Arc::from("b"))),
        ]
        .boxed()
    }

    fn str_val() -> BoxedStrategy<Value> {
        prop_oneof![some_str(), some_str(), some_str(), Just(Value::Null)].boxed()
    }

    fn bool_val() -> BoxedStrategy<Value> {
        prop_oneof![
            any::<bool>().prop_map(Value::Bool),
            any::<bool>().prop_map(Value::Bool),
            any::<bool>().prop_map(Value::Bool),
            Just(Value::Null),
        ]
        .boxed()
    }

    /// Chunk rows: col 0 float, col 1 int, col 2 dictionary string,
    /// col 3 bool. Lengths cross the 64-bit bitmap word boundary.
    fn chunk() -> BoxedStrategy<Vec<(Value, Value, Value, Value)>> {
        prop::collection::vec((float_val(), int_val(), str_val(), bool_val()), 1..70).boxed()
    }

    fn cmp_op() -> BoxedStrategy<BinOp> {
        prop_oneof![
            Just(BinOp::Lt),
            Just(BinOp::LtEq),
            Just(BinOp::Gt),
            Just(BinOp::GtEq),
            Just(BinOp::Eq),
            Just(BinOp::NotEq),
        ]
        .boxed()
    }

    /// Every expression shape the vectorized classifier supports.
    fn leaf() -> BoxedStrategy<Expr> {
        prop_oneof![
            // numeric column vs literal (both orders), incl. NULL literals
            (cmp_op(), 0usize..2, float_val()).prop_map(|(op, c, v)| Expr::binary(
                op,
                Expr::col(c),
                Expr::lit(v)
            )),
            (cmp_op(), 0usize..2, int_val()).prop_map(|(op, c, v)| Expr::binary(
                op,
                Expr::lit(v),
                Expr::col(c)
            )),
            // numeric column vs numeric column (mixed int/float dtypes)
            cmp_op().prop_map(|op| Expr::binary(op, Expr::col(0), Expr::col(1))),
            // dictionary string vs string literal, both orders
            (cmp_op(), some_str()).prop_map(|(op, v)| Expr::binary(op, Expr::col(2), Expr::lit(v))),
            (cmp_op(), some_str()).prop_map(|(op, v)| Expr::binary(op, Expr::lit(v), Expr::col(2))),
            // IS [NOT] NULL on every column
            (0usize..4, any::<bool>()).prop_map(|(c, negated)| Expr::IsNull {
                expr: Box::new(Expr::col(c)),
                negated,
            }),
            // bare boolean column as a predicate
            Just(Expr::col(3)),
            // constant predicates
            any::<bool>().prop_map(|b| Expr::lit(Value::Bool(b))),
            Just(Expr::lit(Value::Null)),
        ]
        .boxed()
    }

    fn predicate() -> BoxedStrategy<Expr> {
        prop_oneof![
            leaf(),
            leaf(),
            leaf().prop_map(|e| Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(e),
            }),
            (leaf(), leaf()).prop_map(|(a, b)| Expr::binary(BinOp::And, a, b)),
            (leaf(), leaf()).prop_map(|(a, b)| Expr::binary(BinOp::Or, a, b)),
        ]
        .boxed()
    }

    fn columns(rows: &[(Value, Value, Value, Value)]) -> Vec<Arc<Column>> {
        let col = |dt, vals: Vec<Value>| Arc::new(Column::from_values(dt, &vals));
        vec![
            col(DataType::Float, rows.iter().map(|r| r.0.clone()).collect()),
            col(DataType::Int, rows.iter().map(|r| r.1.clone()).collect()),
            col(DataType::Str, rows.iter().map(|r| r.2.clone()).collect()),
            col(DataType::Bool, rows.iter().map(|r| r.3.clone()).collect()),
        ]
    }

    fn row_ctx(rows: &[(Value, Value, Value, Value)], i: usize) -> Ctx {
        let r = &rows[i];
        Ctx {
            row: Row::new(vec![r.0.clone(), r.1.clone(), r.2.clone(), r.3.clone()]),
            value: 0.0,
            range: (0.0, 0.0),
            member: Tri::True,
            member_point: false,
        }
    }

    proptest! {
        /// 3VL bitmap classify vs the scalar evaluator, bit for bit. The
        /// references: `pass[i]` ⇔ the predicate is SQL `TRUE` on row `i`
        /// (`eval_predicate(p)`, and equivalently `eval_tri(p) == True`),
        /// and `fail[i]` ⇔ it is SQL `FALSE` (`eval_predicate(NOT p)` —
        /// `NOT p` is `TRUE` exactly when `p` is `FALSE`, so this captures
        /// the FALSE-vs-NULL distinction `eval_tri`'s filter mapping
        /// collapses).
        #[test]
        fn classify_mask_matches_scalar_eval(rows in chunk(), pred in predicate()) {
            let cols = columns(&rows);
            let len = rows.len();
            let Some(mask) = classify_mask(&pred, &cols, len) else {
                // Every shape `predicate()` generates is in the vectorized
                // subset; a bail-out here would be a silent perf regression.
                return Err(TestCaseError::fail("classify_mask refused a supported shape"));
            };
            let not_pred = Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(pred.clone()),
            };
            for i in 0..len {
                let ctx = row_ctx(&rows, i);
                let is_true = eval_predicate(&pred, &ctx).unwrap();
                let is_false = eval_predicate(&not_pred, &ctx).unwrap();
                prop_assert_eq!(
                    mask.pass.get(i),
                    is_true,
                    "pass bit, row {} of {:?}",
                    i,
                    &pred
                );
                prop_assert_eq!(
                    mask.fail.get(i),
                    is_false,
                    "fail bit, row {} of {:?}",
                    i,
                    &pred
                );
                // `eval_tri` may be conservatively Maybe (e.g. NaN range
                // bounds defeat the interval tests), but a definite verdict
                // must agree with point evaluation.
                match eval_tri(&pred, &ctx).unwrap() {
                    Tri::True => prop_assert!(
                        is_true,
                        "eval_tri True but row fails: row {} ({:?}) of {:?}",
                        i,
                        &rows[i],
                        &pred
                    ),
                    Tri::False => prop_assert!(
                        !is_true,
                        "eval_tri False but row passes: row {} ({:?}) of {:?}",
                        i,
                        &rows[i],
                        &pred
                    ),
                    Tri::Maybe => {}
                }
                prop_assert!(!(mask.pass.get(i) && mask.fail.get(i)));
            }
        }

        /// 2VL filter bitmap vs per-row `eval_predicate` (NULL ⇒ filtered).
        #[test]
        fn predicate_mask_matches_eval_predicate(rows in chunk(), pred in predicate()) {
            let cols = columns(&rows);
            let len = rows.len();
            let Some(mask) = predicate_mask(&pred, &cols, len) else {
                return Err(TestCaseError::fail("predicate_mask refused a supported shape"));
            };
            for i in 0..len {
                let pass = eval_predicate(&pred, &row_ctx(&rows, i)).unwrap();
                prop_assert_eq!(mask.get(i), pass, "row {} of {:?}", i, &pred);
            }
        }
    }
}
