//! Conviva-like video session log generator and query suite.
//!
//! Columns mirror the paper's simplified `Sessions` log (§1) extended with
//! the dimensions its demo scenarios aggregate over (§6.1): content, ad,
//! geography, device, join failures. Buffer times are right-skewed with a
//! small population of "abnormal" sessions whose buffering is much longer —
//! the sub-population queries C1–C3 isolate.

use std::sync::Arc;

use gola_common::rng::SplitMix64;
use gola_common::{DataType, Row, Schema, Value};
use gola_storage::Table;

/// Seeded generator for the `sessions` fact table.
#[derive(Debug, Clone)]
pub struct ConvivaGenerator {
    pub seed: u64,
    pub num_ads: u64,
    pub num_contents: u64,
    pub num_geos: u64,
    /// Fraction of sessions with abnormally long buffering.
    pub abnormal_fraction: f64,
    /// When set, the *last* geography is rare (~1% of sessions) and the
    /// rest are uniform — the stratified-sampling rare-group scenario.
    /// `false` keeps the default generator bit-identical to before.
    pub geo_skew: bool,
}

impl Default for ConvivaGenerator {
    fn default() -> Self {
        ConvivaGenerator {
            seed: 0xC0_7F1A,
            num_ads: 24,
            num_contents: 200,
            num_geos: 12,
            abnormal_fraction: 0.08,
            geo_skew: false,
        }
    }
}

const GEOS: [&str; 12] = [
    "us-east",
    "us-west",
    "eu-west",
    "eu-north",
    "ap-south",
    "ap-east",
    "sa-east",
    "af-south",
    "oc-east",
    "me-central",
    "ca-central",
    "in-west",
];
const DEVICES: [&str; 5] = ["tv", "desktop", "mobile", "tablet", "console"];

impl ConvivaGenerator {
    /// Schema of the generated sessions table.
    pub fn schema() -> Arc<Schema> {
        Arc::new(Schema::from_pairs(&[
            ("session_id", DataType::Int),
            ("user_id", DataType::Int),
            ("content_id", DataType::Int),
            ("ad_id", DataType::Int),
            ("geo", DataType::Str),
            ("device", DataType::Str),
            ("buffer_time", DataType::Float),
            ("play_time", DataType::Float),
            ("join_time", DataType::Float),
            ("join_failed", DataType::Int),
            ("ad_revenue", DataType::Float),
        ]))
    }

    /// Generate `n` session rows.
    pub fn generate(&self, n: usize) -> Table {
        let mut rng = SplitMix64::new(self.seed);
        let geos = &GEOS[..(self.num_geos as usize).min(GEOS.len())];
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            let user = rng.next_below(n as u64 / 3 + 1) as i64;
            let content = rng.next_below(self.num_contents) as i64;
            let ad = (rng.next_below(self.num_ads) + 1) as i64;
            let geo = if self.geo_skew && geos.len() > 1 {
                if rng.next_f64() < 0.01 {
                    geos[geos.len() - 1]
                } else {
                    geos[rng.next_below(geos.len() as u64 - 1) as usize]
                }
            } else {
                geos[rng.next_below(geos.len() as u64) as usize]
            };
            let device = DEVICES[rng.next_below(DEVICES.len() as u64) as usize];
            let abnormal = rng.next_f64() < self.abnormal_fraction;
            // Right-skewed buffering; abnormal sessions buffer far longer.
            let base_buffer = -(1.0 - rng.next_f64()).ln() * 8.0;
            let buffer = if abnormal {
                35.0 + base_buffer * 4.0
            } else {
                base_buffer
            };
            // Long buffering depresses play time (the SBI effect).
            let engagement = (600.0 * rng.next_f64() + 60.0) * (1.0 - (buffer / 200.0).min(0.7));
            let join_time = 0.5 + rng.next_f64() * 3.0 + if abnormal { 4.0 } else { 0.0 };
            let join_failed = (rng.next_f64() < if abnormal { 0.22 } else { 0.03 }) as i64;
            let play = if join_failed == 1 { 0.0 } else { engagement };
            let revenue = if join_failed == 1 {
                0.0
            } else {
                (play / 120.0).floor() * (0.8 + ad as f64 * 0.05)
            };
            rows.push(Row::new(vec![
                Value::Int(i as i64),
                Value::Int(user),
                Value::Int(content),
                Value::Int(ad),
                Value::str(geo),
                Value::str(device),
                Value::Float(buffer),
                Value::Float(play),
                Value::Float(join_time),
                Value::Int(join_failed),
                Value::Float(revenue),
            ]));
        }
        Table::new_unchecked(Self::schema(), rows)
    }
}

/// The paper's Example 1 — Slow Buffering Impact.
pub const SBI: &str = "SELECT AVG(play_time) FROM sessions \
     WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)";

/// C1: histogram of `play_time` for sessions with longer-than-average
/// buffering (paper §5: "histograms of play_time ... of sessions with
/// abnormal behaviors").
pub const C1: &str = "SELECT floor(play_time / 120) AS play_bucket, COUNT(*) AS sessions \
     FROM sessions \
     WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions) \
     GROUP BY play_bucket ORDER BY play_bucket";

/// C2: join-failure rate per geography among sessions buffering more than
/// one standard deviation above the mean.
pub const C2: &str = "SELECT geo, AVG(join_failed) AS join_failure_rate, COUNT(*) AS sessions \
     FROM sessions \
     WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions) \
                         + (SELECT STDDEV(buffer_time) FROM sessions) \
     GROUP BY geo ORDER BY join_failure_rate DESC";

/// C3: per-ad engagement of sessions underperforming their own ad's
/// average play time (correlated inner aggregate).
pub const C3: &str = "SELECT ad_id, AVG(play_time) AS below_avg_play, COUNT(*) AS sessions \
     FROM sessions s \
     WHERE play_time < (SELECT AVG(play_time) FROM sessions t WHERE t.ad_id = s.ad_id) \
     GROUP BY ad_id ORDER BY ad_id";

/// All Conviva-suite queries as `(name, sql)`.
pub fn queries() -> Vec<(&'static str, &'static str)> {
    vec![("SBI", SBI), ("C1", C1), ("C2", C2), ("C3", C3)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gola_storage::Catalog;

    fn catalog(n: usize) -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "sessions",
            Arc::new(ConvivaGenerator::default().generate(n)),
        )
        .unwrap();
        c
    }

    #[test]
    fn generator_is_deterministic() {
        let a = ConvivaGenerator::default().generate(500);
        let b = ConvivaGenerator::default().generate(500);
        assert_eq!(a.rows(), b.rows());
        let c = ConvivaGenerator {
            seed: 1,
            ..Default::default()
        }
        .generate(500);
        assert_ne!(a.rows(), c.rows());
    }

    #[test]
    fn schema_and_shape() {
        let t = ConvivaGenerator::default().generate(2000);
        assert_eq!(t.num_rows(), 2000);
        assert_eq!(t.schema().len(), 11);
        // Buffer times are positive and right-skewed: mean > median.
        let buffers: Vec<f64> = t
            .column("buffer_time")
            .unwrap()
            .iter()
            .map(|v| v.as_f64().unwrap())
            .collect();
        assert!(buffers.iter().all(|&b| b >= 0.0));
        let mean = gola_common::stats::mean(&buffers).unwrap();
        let median = gola_common::stats::percentile(&buffers, 0.5).unwrap();
        assert!(mean > median, "mean {mean} median {median}");
    }

    #[test]
    fn abnormal_sessions_fail_more() {
        let t = ConvivaGenerator::default().generate(20_000);
        let (mut ab_fail, mut ab_n, mut ok_fail, mut ok_n) = (0.0, 0.0, 0.0, 0.0);
        for r in t.rows() {
            let buffer = r.get(6).as_f64().unwrap();
            let failed = r.get(9).as_f64().unwrap();
            if buffer > 30.0 {
                ab_fail += failed;
                ab_n += 1.0;
            } else {
                ok_fail += failed;
                ok_n += 1.0;
            }
        }
        assert!(ab_n > 100.0);
        assert!(ab_fail / ab_n > 2.0 * (ok_fail / ok_n));
    }

    #[test]
    fn geo_skew_makes_last_geo_rare() {
        let skewed = ConvivaGenerator {
            geo_skew: true,
            ..Default::default()
        }
        .generate(20_000);
        let geos = skewed.column("geo").unwrap();
        let rare =
            geos.iter().filter(|v| **v == Value::str(GEOS[11])).count() as f64 / geos.len() as f64;
        assert!(
            rare > 0.002 && rare < 0.03,
            "rare geo fraction {rare} should be ~1%"
        );
        // Default path is bit-unchanged by the new knob.
        let a = ConvivaGenerator::default().generate(500);
        let b = ConvivaGenerator {
            geo_skew: false,
            ..Default::default()
        }
        .generate(500);
        assert_eq!(a.rows(), b.rows());
    }

    #[test]
    fn all_queries_compile_and_run_exactly() {
        let cat = catalog(1500);
        for (name, sql) in queries() {
            let graph = gola_sql::compile(sql, &cat)
                .unwrap_or_else(|e| panic!("{name} failed to compile: {e}"));
            let out = gola_engine::BatchEngine::new(&cat)
                .execute(&graph)
                .unwrap_or_else(|e| panic!("{name} failed to run: {e}"));
            assert!(out.num_rows() > 0, "{name} returned no rows");
        }
    }

    #[test]
    fn sbi_selects_a_minority_with_lower_play_time() {
        let cat = catalog(5000);
        let overall = gola_engine::BatchEngine::new(&cat)
            .execute(&gola_sql::compile("SELECT AVG(play_time) FROM sessions", &cat).unwrap())
            .unwrap();
        let slow = gola_engine::BatchEngine::new(&cat)
            .execute(&gola_sql::compile(SBI, &cat).unwrap())
            .unwrap();
        let overall = overall.rows()[0].get(0).as_f64().unwrap();
        let slow = slow.rows()[0].get(0).as_f64().unwrap();
        assert!(
            slow < overall,
            "slow-buffering sessions should play less: {slow} vs {overall}"
        );
    }
}
