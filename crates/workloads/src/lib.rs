//! Synthetic workloads reproducing the paper's evaluation data (§5, §6).
//!
//! The paper evaluates on (a) a 100 GB TPC-H dataset **denormalized into a
//! single fact table** and (b) a Conviva video-session trace (a single
//! denormalized fact table of session logs). Neither raw dataset is
//! available, so this crate generates seeded synthetic equivalents with the
//! same *statistical shape* (skewed positive times, a minority of abnormal
//! sessions, per-group variation) at laptop scale, plus the adapted query
//! suites:
//!
//! * [`conviva`] — the Sessions log with queries C1–C3 ("statistics of
//!   sessions with abnormal behaviour") and the SBI running example;
//! * [`tpch`] — the denormalized TPC-H-like fact table with nested-
//!   aggregate adaptations of Q11, Q17, Q18 and Q20 (per the paper's
//!   footnote, structure retained but overly-selective constants relaxed);
//! * [`mytube`] — the demo's "MyTube Inc." scenario data: sessions tagged
//!   with A/B experiment variants plus an ads dimension table, for the ad
//!   optimization and A/B testing walkthroughs.

pub mod conviva;
pub mod mytube;
pub mod tpch;

pub use conviva::ConvivaGenerator;
pub use mytube::MyTubeGenerator;
pub use tpch::TpchGenerator;
