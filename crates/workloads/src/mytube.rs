//! "MyTube Inc." demo scenario data (paper §6).
//!
//! The demonstration puts attendees in the shoes of a data scientist at a
//! video-sharing site optimizing ad revenue and running A/B tests. This
//! generator produces the two tables those scenarios need:
//!
//! * `mytube_sessions` — the session fact table with an `experiment`
//!   variant column (`'A'`/`'B'`) and per-session ad revenue. Variant B
//!   ships a real (small) improvement in retention so the A/B example has
//!   something to detect.
//! * `ads` — a small ad dimension table (category, CPM) for broadcast
//!   joins.

use std::sync::Arc;

use gola_common::rng::SplitMix64;
use gola_common::{DataType, Row, Schema, Value};
use gola_storage::Table;

/// Seeded generator for the MyTube demo tables.
#[derive(Debug, Clone)]
pub struct MyTubeGenerator {
    pub seed: u64,
    pub num_ads: u64,
    /// Additive retention advantage of variant B, in expected play seconds.
    pub variant_b_lift: f64,
}

impl Default for MyTubeGenerator {
    fn default() -> Self {
        MyTubeGenerator {
            seed: 0x0341_70BE,
            num_ads: 20,
            variant_b_lift: 18.0,
        }
    }
}

const CATEGORIES: [&str; 5] = ["retail", "auto", "games", "travel", "finance"];

impl MyTubeGenerator {
    pub fn sessions_schema() -> Arc<Schema> {
        Arc::new(Schema::from_pairs(&[
            ("session_id", DataType::Int),
            ("user_id", DataType::Int),
            ("ad_id", DataType::Int),
            ("experiment", DataType::Str),
            ("hour_of_day", DataType::Int),
            ("buffer_time", DataType::Float),
            ("play_time", DataType::Float),
            ("ads_shown", DataType::Int),
            ("ad_revenue", DataType::Float),
        ]))
    }

    pub fn ads_schema() -> Arc<Schema> {
        Arc::new(Schema::from_pairs(&[
            ("ad_id", DataType::Int),
            ("category", DataType::Str),
            ("cpm", DataType::Float),
        ]))
    }

    /// The ads dimension table.
    pub fn ads(&self) -> Table {
        let rows: Vec<Row> = (1..=self.num_ads as i64)
            .map(|i| {
                Row::new(vec![
                    Value::Int(i),
                    Value::str(CATEGORIES[(i as usize) % CATEGORIES.len()]),
                    Value::Float(2.0 + (i % 7) as f64 * 0.75),
                ])
            })
            .collect();
        Table::new_unchecked(Self::ads_schema(), rows)
    }

    /// Generate `n` session rows.
    pub fn sessions(&self, n: usize) -> Table {
        let mut rng = SplitMix64::new(self.seed);
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            let user = rng.next_below(n as u64 / 4 + 1) as i64;
            let ad = (rng.next_below(self.num_ads) + 1) as i64;
            let variant_b = rng.next_u64() & 1 == 1;
            let hour = rng.next_below(24) as i64;
            // Evening hours buffer worse (load); ads perform differently
            // by hour — the ad-optimization signal.
            let load = if (18..23).contains(&hour) { 1.6 } else { 1.0 };
            let buffer = -(1.0 - rng.next_f64()).ln() * 6.0 * load;
            let lift = if variant_b { self.variant_b_lift } else { 0.0 };
            let affinity = 1.0 + ((ad + hour) % 5) as f64 * 0.15;
            let play = ((200.0 + lift)
                * affinity
                * (0.3 + rng.next_f64())
                * (1.0 - (buffer / 150.0).min(0.6)))
            .max(0.0);
            let ads_shown = 1 + (play / 180.0) as i64;
            let revenue = ads_shown as f64 * (1.5 + (ad % 7) as f64 * 0.4) / 1000.0 * play;
            rows.push(Row::new(vec![
                Value::Int(i as i64),
                Value::Int(user),
                Value::Int(ad),
                Value::str(if variant_b { "B" } else { "A" }),
                Value::Int(hour),
                Value::Float(buffer),
                Value::Float(play),
                Value::Int(ads_shown),
                Value::Float(revenue),
            ]));
        }
        Table::new_unchecked(Self::sessions_schema(), rows)
    }

    /// A ready-to-use catalog with both tables registered.
    pub fn catalog(&self, n_sessions: usize) -> gola_storage::Catalog {
        let mut c = gola_storage::Catalog::new();
        c.register("mytube_sessions", Arc::new(self.sessions(n_sessions)))
            .expect("fresh catalog");
        c.register("ads", Arc::new(self.ads()))
            .expect("fresh catalog");
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let g = MyTubeGenerator::default();
        assert_eq!(g.sessions(300).rows(), g.sessions(300).rows());
        assert_eq!(g.ads().num_rows(), 20);
    }

    #[test]
    fn variant_b_actually_lifts_play_time() {
        let t = MyTubeGenerator::default().sessions(30_000);
        let (mut a_sum, mut a_n, mut b_sum, mut b_n) = (0.0, 0.0, 0.0, 0.0);
        for r in t.rows() {
            let play = r.get(6).as_f64().unwrap();
            if r.get(3).as_str() == Some("B") {
                b_sum += play;
                b_n += 1.0;
            } else {
                a_sum += play;
                a_n += 1.0;
            }
        }
        assert!(b_sum / b_n > a_sum / a_n + 5.0, "lift not visible");
        // Roughly balanced split.
        assert!((a_n - b_n).abs() / (a_n + b_n) < 0.05);
    }

    #[test]
    fn catalog_has_both_tables_and_joins_work() {
        let cat = MyTubeGenerator::default().catalog(1000);
        let graph = gola_sql::compile(
            "SELECT a.category, SUM(s.ad_revenue) AS revenue \
             FROM mytube_sessions s JOIN ads a ON s.ad_id = a.ad_id \
             GROUP BY a.category ORDER BY revenue DESC",
            &cat,
        )
        .unwrap();
        let out = gola_engine::BatchEngine::new(&cat).execute(&graph).unwrap();
        assert_eq!(out.num_rows(), 5);
    }
}
