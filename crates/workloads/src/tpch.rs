//! Denormalized TPC-H-like fact table and the adapted query suite.
//!
//! The paper denormalizes TPC-H into a single fact table "to simplify
//! random partitioning during mini-batch execution" (§5) and evaluates
//! nested-aggregate forms of Q11, Q17, Q18 and Q20, with overly selective
//! WHERE/GROUP BY constants relaxed (footnote 12). This module reproduces
//! that setup: one `lineitem_denorm` table carrying the lineitem columns
//! plus the order / part / supplier attributes those queries touch.

use std::sync::Arc;

use gola_common::rng::SplitMix64;
use gola_common::{DataType, Row, Schema, Value};
use gola_storage::Table;

/// Seeded generator for the `lineitem_denorm` fact table.
#[derive(Debug, Clone)]
pub struct TpchGenerator {
    pub seed: u64,
    pub num_parts: u64,
    pub num_suppliers: u64,
    /// Average lineitems per order (orders are sized 1..=2·avg).
    pub lineitems_per_order: u64,
}

impl Default for TpchGenerator {
    fn default() -> Self {
        TpchGenerator {
            seed: 0x79_C4,
            num_parts: 400,
            num_suppliers: 50,
            lineitems_per_order: 4,
        }
    }
}

const BRANDS: [&str; 5] = ["Brand#11", "Brand#22", "Brand#33", "Brand#44", "Brand#55"];
const CONTAINERS: [&str; 4] = ["SM BOX", "MED BAG", "LG CASE", "JUMBO DRUM"];

impl TpchGenerator {
    /// Schema of the denormalized fact table.
    pub fn schema() -> Arc<Schema> {
        Arc::new(Schema::from_pairs(&[
            ("orderkey", DataType::Int),
            ("partkey", DataType::Int),
            ("suppkey", DataType::Int),
            ("quantity", DataType::Float),
            ("extendedprice", DataType::Float),
            ("discount", DataType::Float),
            ("tax", DataType::Float),
            ("shipdate", DataType::Int),
            ("nationkey", DataType::Int),
            ("brand", DataType::Str),
            ("container", DataType::Str),
            ("availqty", DataType::Float),
        ]))
    }

    /// Generate roughly `n` lineitem rows (whole orders, so the exact count
    /// may exceed `n` by at most one order).
    pub fn generate(&self, n: usize) -> Table {
        let mut rng = SplitMix64::new(self.seed);
        let mut rows = Vec::with_capacity(n + self.lineitems_per_order as usize);
        // Stable per-part base price and per-(part, supp) availability.
        let part_price = |p: u64| 900.0 + ((p * 37) % 1000) as f64;
        // TPC-H ps_availqty is uniform 1..9999 — wide relative to the Q20
        // threshold, so most (part, supplier) pairs classify early and only
        // a thin borderline band stays uncertain.
        let avail =
            |p: u64, s: u64| 1.0 + ((p.wrapping_mul(7919).wrapping_add(s * 104_729)) % 9999) as f64;
        let mut orderkey = 0i64;
        while rows.len() < n {
            orderkey += 1;
            let order_size = 1 + rng.next_below(2 * self.lineitems_per_order) as usize;
            // Orders cluster around a nation and a supplier.
            let nation = rng.next_below(25) as i64;
            for _ in 0..order_size {
                let part = rng.next_below(self.num_parts);
                // TPC-H partsupp: each part is stocked by 4 suppliers, so
                // (partkey, suppkey) groups are dense enough for online
                // estimation (the paper's footnote 12 relaxes sparse
                // clauses for the same reason).
                let supp = (part * 7 + rng.next_below(4) * 13) % self.num_suppliers;
                // Quantity 1..=50, mildly part-dependent so per-part inner
                // averages differ (Q17 needs real variation).
                let q_base = 1.0 + rng.next_f64() * 49.0;
                let quantity = (q_base * (0.6 + ((part % 9) as f64) / 10.0)).clamp(1.0, 50.0);
                let price = part_price(part) * quantity / 10.0;
                rows.push(Row::new(vec![
                    Value::Int(orderkey),
                    Value::Int(part as i64),
                    Value::Int(supp as i64),
                    Value::Float(quantity.floor()),
                    Value::Float((price * 100.0).round() / 100.0),
                    Value::Float((rng.next_below(11) as f64) / 100.0),
                    Value::Float((rng.next_below(9) as f64) / 100.0),
                    Value::Int(rng.next_below(2557) as i64), // ~7 years of days
                    Value::Int(nation),
                    Value::str(BRANDS[(part % BRANDS.len() as u64) as usize]),
                    Value::str(CONTAINERS[(part % CONTAINERS.len() as u64) as usize]),
                    Value::Float(avail(part, supp)),
                ]));
            }
        }
        Table::new_unchecked(Self::schema(), rows)
    }
}

/// Q17 (small-quantity-order revenue), denormalized and decorrelated by
/// the engine: average yearly revenue lost if small orders go unfilled.
pub const Q17: &str = "SELECT SUM(extendedprice) / 7.0 AS avg_yearly FROM lineitem_denorm l \
     WHERE quantity < 0.5 * (SELECT AVG(quantity) FROM lineitem_denorm t \
                             WHERE t.partkey = l.partkey)";

/// Q11 (important stock identification): part values above a fraction of
/// the total.
pub const Q11: &str = "SELECT partkey, SUM(extendedprice * quantity) AS value \
     FROM lineitem_denorm GROUP BY partkey \
     HAVING SUM(extendedprice * quantity) > \
            2.0 / 400.0 * (SELECT SUM(extendedprice * quantity) FROM lineitem_denorm) \
     ORDER BY value DESC";

/// Q18 (large-volume customers): statistics over lineitems of big orders.
pub const Q18: &str = "SELECT COUNT(*) AS big_items, AVG(extendedprice) AS avg_price \
     FROM lineitem_denorm WHERE orderkey IN \
     (SELECT orderkey FROM lineitem_denorm GROUP BY orderkey \
      HAVING SUM(quantity) > 300)";

/// Q20 (excess availability): per supplier, lineitems whose availability
/// exceeds a fraction of the part+supplier demand (two correlation keys).
/// The original query's "half a year's shipments" fraction is rescaled to
/// this data's 7-year span and group sizes (the paper's footnote 12
/// likewise adjusts overly selective constants).
pub const Q20: &str = "SELECT suppkey, COUNT(*) AS excess_items FROM lineitem_denorm l \
     WHERE availqty > 0.25 * (SELECT SUM(quantity) FROM lineitem_denorm t \
                              WHERE t.partkey = l.partkey AND t.suppkey = l.suppkey) \
     GROUP BY suppkey ORDER BY suppkey";

/// All adapted TPC-H queries as `(name, sql)`.
pub fn queries() -> Vec<(&'static str, &'static str)> {
    vec![("Q11", Q11), ("Q17", Q17), ("Q18", Q18), ("Q20", Q20)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gola_storage::Catalog;

    fn catalog(n: usize) -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "lineitem_denorm",
            Arc::new(TpchGenerator::default().generate(n)),
        )
        .unwrap();
        c
    }

    #[test]
    fn generator_deterministic_and_sized() {
        let a = TpchGenerator::default().generate(1000);
        let b = TpchGenerator::default().generate(1000);
        assert_eq!(a.rows(), b.rows());
        assert!(a.num_rows() >= 1000);
        assert!(a.num_rows() < 1000 + 10);
    }

    #[test]
    fn orders_have_multiple_lineitems() {
        let t = TpchGenerator::default().generate(2000);
        let orders: std::collections::HashSet<i64> = t
            .column("orderkey")
            .unwrap()
            .iter()
            .map(|v| v.as_i64().unwrap())
            .collect();
        let avg_size = t.num_rows() as f64 / orders.len() as f64;
        assert!(
            avg_size > 2.0 && avg_size < 8.0,
            "avg order size {avg_size}"
        );
    }

    #[test]
    fn quantities_in_range() {
        let t = TpchGenerator::default().generate(2000);
        for v in t.column("quantity").unwrap() {
            let q = v.as_f64().unwrap();
            assert!((1.0..=50.0).contains(&q));
        }
    }

    #[test]
    fn all_queries_compile_run_and_select_nontrivially() {
        let cat = catalog(4000);
        let total = 4000.0;
        for (name, sql) in queries() {
            let graph = gola_sql::compile(sql, &cat)
                .unwrap_or_else(|e| panic!("{name} failed to compile: {e}"));
            let out = gola_engine::BatchEngine::new(&cat)
                .execute(&graph)
                .unwrap_or_else(|e| panic!("{name} failed to run: {e}"));
            assert!(out.num_rows() > 0, "{name} returned no rows");
            // The nested predicates must be selective but not degenerate.
            if name == "Q17" {
                let v = out.rows()[0].get(0).as_f64().unwrap();
                assert!(v > 0.0, "Q17 selected nothing");
            }
            if name == "Q18" {
                let items = out.rows()[0].get(0).as_f64().unwrap();
                assert!(items > 0.0 && items < total, "Q18 selected {items}");
            }
        }
    }

    #[test]
    fn q11_keeps_a_strict_subset_of_parts() {
        let cat = catalog(4000);
        let out = gola_engine::BatchEngine::new(&cat)
            .execute(&gola_sql::compile(Q11, &cat).unwrap())
            .unwrap();
        assert!(out.num_rows() > 5);
        assert!(out.num_rows() < 400);
        // Sorted descending by value.
        let values: Vec<f64> = out
            .column("value")
            .unwrap()
            .iter()
            .map(|v| v.as_f64().unwrap())
            .collect();
        assert!(values.windows(2).all(|w| w[0] >= w[1]));
    }
}
