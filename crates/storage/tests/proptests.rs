//! Property tests for the storage substrate: the mini-batch partitioner
//! must be an exact random partition (every tuple exactly once, sizes
//! near-uniform, deterministic under seed), and CSV must round-trip
//! arbitrary tables.

use std::sync::Arc;

use gola_common::{DataType, Row, Schema, Value};
use gola_storage::csv::{read_csv, write_csv};
use gola_storage::shuffle::permutation;
use gola_storage::{MiniBatchPartitioner, StratifiedPartitioner, Table};
use proptest::prelude::*;

/// Table of `n` rows whose `g` column cycles over `groups` distinct keys,
/// so stratum sizes differ by at most one.
fn grouped_table(n: usize, groups: usize) -> Arc<Table> {
    let schema = Arc::new(Schema::from_pairs(&[
        ("g", DataType::Int),
        ("x", DataType::Int),
    ]));
    let rows: Vec<Row> = (0..n)
        .map(|i| Row::new(vec![Value::Int((i % groups) as i64), Value::Int(i as i64)]))
        .collect();
    Arc::new(Table::new_unchecked(schema, rows))
}

proptest! {
    #[test]
    fn partitioner_is_exact_partition(
        n in 1usize..400,
        k in 1usize..50,
        seed in any::<u64>(),
    ) {
        let k = k.min(n);
        let schema = Arc::new(Schema::from_pairs(&[("x", DataType::Int)]));
        let rows: Vec<Row> = (0..n).map(|i| Row::new(vec![Value::Int(i as i64)])).collect();
        let table = Arc::new(Table::new_unchecked(schema, rows));
        let p = MiniBatchPartitioner::new(table, k, seed).unwrap();
        prop_assert_eq!(p.num_batches(), k);
        let mut ids: Vec<u64> = p.iter().flat_map(|b| b.tuple_ids.clone()).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..n as u64).collect::<Vec<_>>());
        // Near-uniform sizes.
        let sizes: Vec<usize> = p.iter().map(|b| b.len()).collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        prop_assert!(max - min <= 1);
        // Monotone row accounting.
        for i in 0..k {
            prop_assert_eq!(
                p.rows_seen_through(i),
                sizes[..=i].iter().sum::<usize>()
            );
        }
        prop_assert_eq!(p.rows_seen_through(k - 1), n);
    }

    #[test]
    fn partitioner_deterministic(n in 2usize..200, seed in any::<u64>()) {
        let schema = Arc::new(Schema::from_pairs(&[("x", DataType::Int)]));
        let rows: Vec<Row> = (0..n).map(|i| Row::new(vec![Value::Int(i as i64)])).collect();
        let table = Arc::new(Table::new_unchecked(schema, rows));
        let k = (n / 2).max(1);
        let a = MiniBatchPartitioner::new(Arc::clone(&table), k, seed).unwrap();
        let b = MiniBatchPartitioner::new(table, k, seed).unwrap();
        for i in 0..k {
            prop_assert_eq!(a.batch(i).tuple_ids, b.batch(i).tuple_ids);
        }
    }

    #[test]
    fn stratified_is_exact_partition(
        n in 1usize..400,
        k in 1usize..50,
        groups in 1usize..12,
        seed in any::<u64>(),
    ) {
        let k = k.min(n);
        let groups = groups.min(n);
        let table = grouped_table(n, groups);
        let p = StratifiedPartitioner::new(table, "g", k, seed).unwrap();
        prop_assert_eq!(p.num_batches(), k);
        prop_assert_eq!(p.num_strata(), groups);
        // Multiset match: every tuple appears exactly once across batches.
        let mut ids: Vec<u64> = p.iter().flat_map(|b| b.tuple_ids.clone()).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..n as u64).collect::<Vec<_>>());
        // Every batch nonempty, monotone row accounting.
        let sizes: Vec<usize> = p.iter().map(|b| b.len()).collect();
        prop_assert!(sizes.iter().all(|&s| s > 0));
        for i in 0..k {
            prop_assert_eq!(p.rows_seen_through(i), sizes[..=i].iter().sum::<usize>());
        }
        prop_assert_eq!(p.rows_seen_through(k - 1), n);
        // Per-stratum rates are consistent: counts sum to the batch bound
        // and never exceed the stratum population.
        for i in 0..k {
            let mut sum = 0;
            for g in 0..groups {
                let (n_h, cap_h) = p.stratum_rate(&Value::Int(g as i64), i).unwrap();
                prop_assert!(n_h <= cap_h);
                sum += n_h;
            }
            prop_assert_eq!(sum, p.rows_seen_through(i));
        }
    }

    #[test]
    fn stratified_deterministic_under_seed(
        n in 2usize..200,
        groups in 1usize..8,
        seed in any::<u64>(),
    ) {
        let groups = groups.min(n);
        let table = grouped_table(n, groups);
        let k = (n / 2).max(1);
        let a = StratifiedPartitioner::new(Arc::clone(&table), "g", k, seed).unwrap();
        let b = StratifiedPartitioner::new(table, "g", k, seed).unwrap();
        // Same seed ⇒ bit-identical schedule, batch by batch.
        for i in 0..k {
            prop_assert_eq!(a.batch(i).tuple_ids, b.batch(i).tuple_ids);
        }
    }

    #[test]
    fn stratified_every_stratum_in_first_batch(
        n in 8usize..400,
        k in 1usize..16,
        groups in 1usize..8,
        seed in any::<u64>(),
    ) {
        let k = k.min(n);
        // Feasibility: batch 0 can hold every stratum only when the other
        // k-1 batches can each keep at least one row.
        let groups = groups.min(n.saturating_sub(k - 1).max(1));
        let table = grouped_table(n, groups);
        let p = StratifiedPartitioner::new(table, "g", k, seed).unwrap();
        let first = p.batch(0);
        let mut seen = vec![false; groups];
        for &t in &first.tuple_ids {
            seen[t as usize % groups] = true;
        }
        prop_assert!(
            seen.iter().all(|&s| s),
            "batch 0 missing a stratum: {:?}", seen
        );
    }

    #[test]
    fn permutation_property(n in 0usize..1000, seed in any::<u64>()) {
        let p = permutation(n, seed);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn csv_round_trips_arbitrary_tables(
        rows in prop::collection::vec(
            (
                any::<Option<i64>>(),
                prop::option::of("[ -~]{0,20}"), // printable ASCII incl. commas/quotes
                any::<Option<bool>>(),
                prop::option::of(-1e12f64..1e12),
            ),
            0..40,
        )
    ) {
        let schema = Arc::new(Schema::from_pairs(&[
            ("i", DataType::Int),
            ("s", DataType::Str),
            ("b", DataType::Bool),
            ("f", DataType::Float),
        ]));
        let table_rows: Vec<Row> = rows
            .iter()
            .map(|(i, s, b, f)| {
                Row::new(vec![
                    i.map(Value::Int).unwrap_or(Value::Null),
                    s.as_deref().map(Value::str).unwrap_or(Value::Null),
                    b.map(Value::Bool).unwrap_or(Value::Null),
                    f.map(Value::Float).unwrap_or(Value::Null),
                ])
            })
            .collect();
        let table = Table::try_new(schema.clone(), table_rows).unwrap();
        let mut buf = Vec::new();
        write_csv(&table, &mut buf).unwrap();
        let back = read_csv(schema, &buf[..]).unwrap();
        prop_assert_eq!(back.num_rows(), table.num_rows());
        for (a, b) in back.rows().iter().zip(table.rows()) {
            // Caveat: empty strings round-trip as NULL (documented CSV
            // limitation); compare modulo that.
            for (x, y) in a.iter().zip(b.iter()) {
                match (x, y) {
                    (Value::Null, Value::Str(s)) if s.is_empty() => {}
                    (Value::Float(fx), Value::Float(fy)) => {
                        prop_assert!((fx - fy).abs() <= 1e-9 * fy.abs().max(1.0));
                    }
                    _ => prop_assert_eq!(x, y),
                }
            }
        }
    }
}
