//! Minimal CSV import/export for tables.
//!
//! Supports quoted fields with embedded commas/quotes/newlines (RFC-4180
//! style) — enough to round-trip any table the engine produces and to load
//! external traces for the examples.

use std::io::{BufReader, Read, Write};
use std::sync::Arc;

use gola_common::{DataType, Error, Result, Row, Schema, Value};

use crate::table::{Table, TableBuilder};

/// Write `table` as CSV with a header row.
pub fn write_csv<W: Write>(table: &Table, out: &mut W) -> Result<()> {
    let header: Vec<String> = table
        .schema()
        .fields()
        .iter()
        .map(|f| escape(&f.name))
        .collect();
    writeln!(out, "{}", header.join(","))?;
    for row in table.rows() {
        let cells: Vec<String> = row
            .iter()
            .map(|v| match v {
                Value::Null => String::new(),
                Value::Str(s) => escape(s),
                other => other.to_string(),
            })
            .collect();
        writeln!(out, "{}", cells.join(","))?;
    }
    Ok(())
}

/// Read CSV with a header row into a table with the given schema. Column
/// order must match the schema; empty cells become `NULL`.
pub fn read_csv<R: Read>(schema: Arc<Schema>, input: R) -> Result<Table> {
    let mut reader = BufReader::new(input);
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    let mut records = parse_records(&text)?;
    if records.is_empty() {
        return Err(Error::Io("csv input has no header row".into()));
    }
    let header = records.remove(0);
    if header.len() != schema.len() {
        return Err(Error::Io(format!(
            "csv header has {} columns, schema has {}",
            header.len(),
            schema.len()
        )));
    }
    let mut builder = TableBuilder::with_capacity(Arc::clone(&schema), records.len());
    for (line_no, rec) in records.into_iter().enumerate() {
        if rec.len() != schema.len() {
            return Err(Error::Io(format!(
                "csv record {} has {} fields, expected {}",
                line_no + 2,
                rec.len(),
                schema.len()
            )));
        }
        let values: Result<Vec<Value>> = rec
            .into_iter()
            .enumerate()
            .map(|(i, cell)| parse_cell(&cell, schema.field(i).data_type))
            .collect();
        builder.push(Row::new(values?))?;
    }
    builder.finish_checked()
}

fn parse_cell(cell: &str, ty: DataType) -> Result<Value> {
    if cell.is_empty() {
        return Ok(Value::Null);
    }
    Value::str(cell).cast(ty)
}

fn escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// RFC-4180-ish record parser handling quoted fields.
fn parse_records(text: &str) -> Result<Vec<Vec<String>>> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut saw_any = false;
    while let Some(c) = chars.next() {
        saw_any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {} // swallow; \n terminates the record
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(Error::Io("unterminated quoted csv field".into()));
    }
    if saw_any && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gola_common::row;

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::from_pairs(&[
            ("id", DataType::Int),
            ("name", DataType::Str),
            ("score", DataType::Float),
        ]))
    }

    #[test]
    fn round_trip() {
        let t = Table::try_new(
            schema(),
            vec![
                row![1i64, "plain", 1.5f64],
                row![2i64, "with,comma", 2.5f64],
                row![3i64, "with \"quote\"", 3.5f64],
                Row::new(vec![Value::Int(4), Value::Null, Value::Null]),
            ],
        )
        .unwrap();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let back = read_csv(schema(), &buf[..]).unwrap();
        assert_eq!(back.num_rows(), 4);
        assert_eq!(back.rows()[1].get(1), &Value::str("with,comma"));
        assert_eq!(back.rows()[2].get(1), &Value::str("with \"quote\""));
        assert!(back.rows()[3].get(1).is_null());
    }

    #[test]
    fn rejects_bad_arity() {
        let input = "id,name,score\n1,x\n";
        assert!(read_csv(schema(), input.as_bytes()).is_err());
    }

    #[test]
    fn rejects_unterminated_quote() {
        let input = "id,name,score\n1,\"oops,2.0\n";
        assert!(read_csv(schema(), input.as_bytes()).is_err());
    }

    #[test]
    fn rejects_empty_input() {
        assert!(read_csv(schema(), "".as_bytes()).is_err());
    }

    #[test]
    fn parses_crlf() {
        let input = "id,name,score\r\n1,a,2.0\r\n2,b,3.0\r\n";
        let t = read_csv(schema(), input.as_bytes()).unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.rows()[1].get(1), &Value::str("b"));
    }

    #[test]
    fn quoted_newline_in_field() {
        let input = "id,name,score\n1,\"two\nlines\",2.0\n";
        let t = read_csv(schema(), input.as_bytes()).unwrap();
        assert_eq!(t.rows()[0].get(1), &Value::str("two\nlines"));
    }
}
