//! Random shuffling of tables.
//!
//! G-OLA's statistical guarantees require that any prefix of the processed
//! data is a uniform random sample of the whole dataset (paper §2). When the
//! physical layout is correlated with query attributes, the paper's
//! pre-processing tool randomly shuffles the input; this module is that tool.

use std::sync::Arc;

use gola_common::rng::SplitMix64;

use crate::table::Table;

/// Fisher–Yates shuffle of `items` under a deterministic seed.
pub fn shuffle_in_place<T>(items: &mut [T], seed: u64) {
    let mut rng = SplitMix64::new(seed);
    for i in (1..items.len()).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        items.swap(i, j);
    }
}

/// A deterministic random permutation of `0..n`.
pub fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    shuffle_in_place(&mut idx, seed);
    idx
}

/// Return a new table whose rows are a random permutation of `table`'s,
/// materialized as a columnar gather of the permuted indices.
pub fn shuffle_table(table: &Table, seed: u64) -> Table {
    let perm = permutation(table.num_rows(), seed);
    let chunk = table.gather(&perm);
    Table::from_chunks(Arc::clone(table.schema()), vec![chunk])
        .expect("gather of a valid table yields a schema-consistent chunk")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gola_common::{row, DataType, Schema, Value};

    #[test]
    fn permutation_is_a_permutation() {
        let p = permutation(1000, 7);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_under_seed() {
        assert_eq!(permutation(100, 3), permutation(100, 3));
        assert_ne!(permutation(100, 3), permutation(100, 4));
    }

    #[test]
    fn shuffle_table_preserves_multiset() {
        let schema = Arc::new(Schema::from_pairs(&[("x", DataType::Int)]));
        let rows: Vec<_> = (0..50).map(|i| row![i as i64]).collect();
        let t = Table::new_unchecked(schema, rows);
        let s = shuffle_table(&t, 11);
        let mut orig: Vec<i64> = t
            .rows()
            .iter()
            .map(|r| r.get(0).as_i64().unwrap())
            .collect();
        let mut shuf: Vec<i64> = s
            .rows()
            .iter()
            .map(|r| r.get(0).as_i64().unwrap())
            .collect();
        assert_ne!(orig, shuf, "seed 11 should actually move rows");
        orig.sort_unstable();
        shuf.sort_unstable();
        assert_eq!(orig, shuf);
        assert_eq!(s.column("x").unwrap().len(), 50);
        assert!(s.column("x").unwrap().contains(&Value::Int(49)));
    }

    #[test]
    fn tiny_inputs() {
        let mut empty: [u8; 0] = [];
        shuffle_in_place(&mut empty, 1);
        let mut one = [5];
        shuffle_in_place(&mut one, 1);
        assert_eq!(one, [5]);
    }
}
