//! The mini-batch partitioner (paper §2.1–2.2).
//!
//! G-OLA randomly partitions the dataset `D` into `k` mini-batches
//! `ΔD₁ … ΔDₖ` of (near-)uniform size and streams them to the online
//! executor. After batch `i` the running result is `Q(Dᵢ, k/i)` where every
//! tuple is annotated with multiplicity `m = |D| / |Dᵢ|` — because a random
//! prefix of the shuffled data is a uniform sample, seeing a tuple once in
//! `Dᵢ` is "roughly equivalent to seeing it m times in D".
//!
//! Each tuple also carries a stable `tuple_id` (its index in the underlying
//! table). The poissonized bootstrap derives per-replica weights from this
//! id, so a tuple's weight is identical every time it is (re-)processed —
//! the property that makes uncertain-set re-evaluation and failure-triggered
//! recomputation statistically consistent.
//!
//! Batches are materialized as [`ColumnChunk`]s — a gather of the shuffled
//! permutation slice into typed column vectors — so the executor folds
//! column slices instead of cloning rows.

use std::sync::Arc;

use gola_common::{Error, Result, Row};

use crate::chunk::ColumnChunk;
use crate::shuffle::permutation;
use crate::table::Table;

/// One randomly-drawn batch of tuples with stable ids, stored column-major.
#[derive(Debug, Clone)]
pub struct MiniBatch {
    /// 0-based batch number.
    pub index: usize,
    /// Stable per-tuple ids (row index in the source table).
    pub tuple_ids: Vec<u64>,
    /// The tuples themselves, as a columnar chunk.
    chunk: ColumnChunk,
}

impl MiniBatch {
    pub fn new(index: usize, tuple_ids: Vec<u64>, chunk: ColumnChunk) -> MiniBatch {
        debug_assert_eq!(tuple_ids.len(), chunk.len());
        MiniBatch {
            index,
            tuple_ids,
            chunk,
        }
    }

    pub fn len(&self) -> usize {
        self.chunk.len()
    }

    pub fn is_empty(&self) -> bool {
        self.chunk.is_empty()
    }

    /// The columnar payload.
    pub fn chunk(&self) -> &ColumnChunk {
        &self.chunk
    }

    /// Materialize the batch as rows (row-oriented baselines).
    pub fn rows(&self) -> Vec<Row> {
        self.chunk.to_rows()
    }

    /// Iterate `(tuple_id, row)` pairs, materializing each row.
    pub fn iter(&self) -> impl Iterator<Item = (u64, Row)> + '_ {
        self.tuple_ids
            .iter()
            .copied()
            .zip((0..self.chunk.len()).map(|i| self.chunk.row(i)))
    }
}

/// Splits a table into `k` random mini-batches. Deterministic under
/// `(table, k, seed)`.
#[derive(Debug, Clone)]
pub struct MiniBatchPartitioner {
    table: Arc<Table>,
    perm: Vec<usize>,
    /// Exclusive end offset of each batch within `perm`.
    bounds: Vec<usize>,
}

impl MiniBatchPartitioner {
    /// Create a partitioner with `k` batches. Sizes differ by at most one
    /// row (the paper's "uniform size").
    pub fn new(table: Arc<Table>, k: usize, seed: u64) -> Result<Self> {
        let n = table.num_rows();
        if k == 0 {
            return Err(Error::config("mini-batch count must be >= 1"));
        }
        if n == 0 {
            return Err(Error::config("cannot partition an empty table"));
        }
        if k > n {
            return Err(Error::config(format!(
                "mini-batch count {k} exceeds row count {n}"
            )));
        }
        let perm = permutation(n, seed);
        // Balanced split: the first (n % k) batches get one extra row.
        let base = n / k;
        let extra = n % k;
        let mut bounds = Vec::with_capacity(k);
        let mut end = 0usize;
        for i in 0..k {
            end += base + usize::from(i < extra);
            bounds.push(end);
        }
        debug_assert_eq!(end, n);
        Ok(MiniBatchPartitioner {
            table,
            perm,
            bounds,
        })
    }

    /// Number of batches `k`.
    pub fn num_batches(&self) -> usize {
        self.bounds.len()
    }

    /// Total number of rows `|D|`.
    pub fn total_rows(&self) -> usize {
        self.perm.len()
    }

    /// Rows contained in batches `0..=i` (that is `|Dᵢ₊₁|` in paper terms).
    pub fn rows_seen_through(&self, i: usize) -> usize {
        self.bounds[i]
    }

    /// The multiplicity annotation `m = |D| / |Dᵢ|` after batch `i`
    /// (0-based). With uniform batch sizes this is the paper's `k / i`.
    pub fn multiplicity_after(&self, i: usize) -> f64 {
        self.total_rows() as f64 / self.rows_seen_through(i) as f64
    }

    /// Materialize batch `i` as a columnar gather of its permutation slice.
    pub fn batch(&self, i: usize) -> MiniBatch {
        let start = if i == 0 { 0 } else { self.bounds[i - 1] };
        let end = self.bounds[i];
        let idxs = &self.perm[start..end];
        MiniBatch::new(
            i,
            idxs.iter().map(|&x| x as u64).collect(),
            self.table.gather(idxs),
        )
    }

    /// Iterate all batches in order.
    pub fn iter(&self) -> impl Iterator<Item = MiniBatch> + '_ {
        (0..self.num_batches()).map(move |i| self.batch(i))
    }

    /// The underlying table.
    pub fn table(&self) -> &Arc<Table> {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gola_common::{row, DataType, Schema};

    fn table(n: usize) -> Arc<Table> {
        let schema = Arc::new(Schema::from_pairs(&[("x", DataType::Int)]));
        Arc::new(Table::new_unchecked(
            schema,
            (0..n).map(|i| row![i as i64]).collect(),
        ))
    }

    #[test]
    fn batches_partition_all_tuples_exactly_once() {
        let p = MiniBatchPartitioner::new(table(103), 10, 5).unwrap();
        let mut ids: Vec<u64> = p.iter().flat_map(|b| b.tuple_ids.clone()).collect();
        assert_eq!(ids.len(), 103);
        ids.sort_unstable();
        assert_eq!(ids, (0..103u64).collect::<Vec<_>>());
    }

    #[test]
    fn batch_sizes_near_uniform() {
        let p = MiniBatchPartitioner::new(table(103), 10, 5).unwrap();
        let sizes: Vec<usize> = p.iter().map(|b| b.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 103);
        let max = sizes.iter().max().unwrap();
        let min = sizes.iter().min().unwrap();
        assert!(max - min <= 1, "sizes {sizes:?}");
    }

    #[test]
    fn multiplicity_matches_paper_k_over_i() {
        let p = MiniBatchPartitioner::new(table(100), 10, 1).unwrap();
        // Uniform sizes: after batch i (0-based) multiplicity = k/(i+1).
        for i in 0..10 {
            let expected = 10.0 / (i as f64 + 1.0);
            assert!((p.multiplicity_after(i) - expected).abs() < 1e-12);
        }
        assert_eq!(p.rows_seen_through(9), 100);
    }

    #[test]
    fn deterministic_under_seed() {
        let t = table(50);
        let a = MiniBatchPartitioner::new(Arc::clone(&t), 5, 9).unwrap();
        let b = MiniBatchPartitioner::new(Arc::clone(&t), 5, 9).unwrap();
        for i in 0..5 {
            assert_eq!(a.batch(i).tuple_ids, b.batch(i).tuple_ids);
        }
        let c = MiniBatchPartitioner::new(t, 5, 10).unwrap();
        assert_ne!(a.batch(0).tuple_ids, c.batch(0).tuple_ids);
    }

    #[test]
    fn rows_match_tuple_ids() {
        let p = MiniBatchPartitioner::new(table(30), 3, 2).unwrap();
        for b in p.iter() {
            for (id, row) in b.iter() {
                assert_eq!(row.get(0).as_i64().unwrap(), id as i64);
            }
        }
    }

    #[test]
    fn config_errors() {
        assert!(MiniBatchPartitioner::new(table(10), 0, 1).is_err());
        assert!(MiniBatchPartitioner::new(table(10), 11, 1).is_err());
        let empty = Arc::new(Table::empty(Arc::new(Schema::from_pairs(&[(
            "x",
            DataType::Int,
        )]))));
        assert!(MiniBatchPartitioner::new(empty, 1, 1).is_err());
    }

    #[test]
    fn single_batch_is_whole_table() {
        let p = MiniBatchPartitioner::new(table(10), 1, 1).unwrap();
        assert_eq!(p.batch(0).len(), 10);
        assert!((p.multiplicity_after(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn batch_chunk_matches_rows() {
        let p = MiniBatchPartitioner::new(table(30), 3, 2).unwrap();
        let b = p.batch(1);
        assert_eq!(b.chunk().len(), b.len());
        let rows = b.rows();
        for (i, (id, row)) in b.iter().enumerate() {
            assert_eq!(row, rows[i]);
            assert_eq!(id, b.tuple_ids[i]);
        }
    }
}
