//! Write-once columnar **segment files** (the durable half of streaming
//! ingest, DESIGN.md §3.12).
//!
//! A segment is one immutable [`ColumnChunk`] serialized to disk: a small
//! header (magic, version, row/column counts), the schema (so a directory
//! of segments is self-describing), then one typed column payload per
//! attribute — optional validity bitmap packed as `u64` words, followed by
//! the column vector in its native encoding (i64 / f64 LE, bool bytes,
//! dictionary + u32 codes for strings, tagged values for mixed columns).
//!
//! Segments are written whole and never modified; atomicity comes from the
//! stream manifest ([`crate::stream`]) — a segment file becomes visible
//! only once its manifest line is durable, so a torn write from a crash is
//! simply ignored on reopen. The read path is buffered `std::io` (the
//! toolchain is dependency-free, so no mmap crate; segment payloads are
//! decoded once into `Arc`-shared columns and then never re-read).
//!
//! Round-tripping is **bit-exact**: floats are stored as raw IEEE-754 bits
//! and row order is preserved, which is what lets crash recovery replay a
//! durable stream to a bit-identical report stream.

use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::sync::Arc;

use gola_common::{Bitmap, Column, ColumnData, DataType, Error, Result, Schema, Value};

use crate::chunk::ColumnChunk;

/// File magic: "GSEG" + format version.
pub const SEGMENT_MAGIC: [u8; 4] = *b"GSEG";
/// Current (only) format version.
pub const SEGMENT_VERSION: u16 = 1;

// Column payload tags.
const TAG_INT: u8 = 0;
const TAG_FLOAT: u8 = 1;
const TAG_BOOL: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_MIXED: u8 = 4;

// Value tags inside mixed payloads.
const VAL_NULL: u8 = 0;
const VAL_BOOL: u8 = 1;
const VAL_INT: u8 = 2;
const VAL_FLOAT: u8 = 3;
const VAL_STR: u8 = 4;

fn dtype_tag(t: DataType) -> u8 {
    match t {
        DataType::Bool => 0,
        DataType::Int => 1,
        DataType::Float => 2,
        DataType::Str => 3,
        DataType::Null => 4,
    }
}

fn dtype_from_tag(tag: u8) -> Result<DataType> {
    Ok(match tag {
        0 => DataType::Bool,
        1 => DataType::Int,
        2 => DataType::Float,
        3 => DataType::Str,
        4 => DataType::Null,
        other => return Err(Error::Io(format!("segment: unknown dtype tag {other}"))),
    })
}

fn corrupt(what: &str) -> Error {
    Error::Io(format!("segment: corrupt file ({what})"))
}

// ---------------------------------------------------------------------------
// Little-endian primitive helpers over std::io
// ---------------------------------------------------------------------------

fn put_u16(w: &mut impl Write, v: u16) -> Result<()> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

fn put_u32(w: &mut impl Write, v: u32) -> Result<()> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

fn put_u64(w: &mut impl Write, v: u64) -> Result<()> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

fn put_len(w: &mut impl Write, n: usize) -> Result<()> {
    put_u64(w, n as u64)
}

fn put_bytes(w: &mut impl Write, b: &[u8]) -> Result<()> {
    put_len(w, b.len())?;
    w.write_all(b)?;
    Ok(())
}

fn get_u16(r: &mut impl Read) -> Result<u16> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn get_u32(r: &mut impl Read) -> Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn get_u64(r: &mut impl Read) -> Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Bounded length read: `cap` is a loose sanity ceiling so a corrupt
/// length field fails with a diagnostic instead of a huge allocation.
fn get_len(r: &mut impl Read, cap: u64, what: &str) -> Result<usize> {
    let n = get_u64(r)?;
    if n > cap {
        return Err(corrupt(what));
    }
    usize::try_from(n).map_err(|_| corrupt(what))
}

fn get_bytes(r: &mut impl Read, cap: u64, what: &str) -> Result<Vec<u8>> {
    let n = get_len(r, cap, what)?;
    let mut b = vec![0u8; n];
    r.read_exact(&mut b)?;
    Ok(b)
}

/// Upper bound on declared element counts: far beyond any real segment,
/// small enough that a corrupt header cannot drive a giant allocation.
const MAX_ELEMS: u64 = 1 << 33;

// ---------------------------------------------------------------------------
// Column payloads
// ---------------------------------------------------------------------------

fn write_value(w: &mut impl Write, v: &Value) -> Result<()> {
    match v {
        Value::Null => w.write_all(&[VAL_NULL])?,
        Value::Bool(b) => w.write_all(&[VAL_BOOL, u8::from(*b)])?,
        Value::Int(x) => {
            w.write_all(&[VAL_INT])?;
            w.write_all(&x.to_le_bytes())?;
        }
        Value::Float(x) => {
            w.write_all(&[VAL_FLOAT])?;
            w.write_all(&x.to_bits().to_le_bytes())?;
        }
        Value::Str(s) => {
            w.write_all(&[VAL_STR])?;
            put_bytes(w, s.as_bytes())?;
        }
    }
    Ok(())
}

fn read_value(r: &mut impl Read) -> Result<Value> {
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    Ok(match tag[0] {
        VAL_NULL => Value::Null,
        VAL_BOOL => {
            let mut b = [0u8; 1];
            r.read_exact(&mut b)?;
            Value::Bool(b[0] != 0)
        }
        VAL_INT => Value::Int(get_u64(r)? as i64),
        VAL_FLOAT => Value::Float(f64::from_bits(get_u64(r)?)),
        VAL_STR => {
            let bytes = get_bytes(r, MAX_ELEMS, "mixed string length")?;
            Value::Str(Arc::from(
                std::str::from_utf8(&bytes).map_err(|_| corrupt("mixed string utf-8"))?,
            ))
        }
        _ => return Err(corrupt("mixed value tag")),
    })
}

fn write_column(w: &mut impl Write, col: &Column) -> Result<()> {
    // Validity bitmap, packed LSB-first into u64 words (the in-memory
    // layout is reproduced bit for bit on read via Bitmap::push).
    match col.validity() {
        None => w.write_all(&[0u8])?,
        Some(bm) => {
            w.write_all(&[1u8])?;
            let mut word = 0u64;
            let mut fill = 0u32;
            for i in 0..bm.len() {
                if bm.get(i) {
                    word |= 1u64 << fill;
                }
                fill += 1;
                if fill == 64 {
                    put_u64(w, word)?;
                    word = 0;
                    fill = 0;
                }
            }
            if fill > 0 {
                put_u64(w, word)?;
            }
        }
    }
    match col.data() {
        ColumnData::Int(xs) => {
            w.write_all(&[TAG_INT])?;
            for &x in xs {
                w.write_all(&x.to_le_bytes())?;
            }
        }
        ColumnData::Float(xs) => {
            w.write_all(&[TAG_FLOAT])?;
            for &x in xs {
                w.write_all(&x.to_bits().to_le_bytes())?;
            }
        }
        ColumnData::Bool(xs) => {
            w.write_all(&[TAG_BOOL])?;
            for &x in xs {
                w.write_all(&[u8::from(x)])?;
            }
        }
        ColumnData::Str { dict, codes } => {
            w.write_all(&[TAG_STR])?;
            put_u32(
                w,
                u32::try_from(dict.len()).map_err(|_| corrupt("dictionary size"))?,
            )?;
            for entry in dict.iter() {
                put_bytes(w, entry.as_bytes())?;
            }
            for &c in codes {
                put_u32(w, c)?;
            }
        }
        ColumnData::Mixed(vs) => {
            w.write_all(&[TAG_MIXED])?;
            for v in vs {
                write_value(w, v)?;
            }
        }
    }
    Ok(())
}

fn read_column(r: &mut impl Read, nrows: usize) -> Result<Column> {
    let mut flag = [0u8; 1];
    r.read_exact(&mut flag)?;
    let validity = if flag[0] == 0 {
        None
    } else {
        let mut bm = Bitmap::new();
        let words = nrows.div_ceil(64);
        let mut remaining = nrows;
        for _ in 0..words {
            let word = get_u64(r)?;
            let bits = remaining.min(64);
            for b in 0..bits {
                bm.push(word & (1u64 << b) != 0);
            }
            remaining -= bits;
        }
        Some(bm)
    };
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    let data = match tag[0] {
        TAG_INT => {
            let mut xs = Vec::with_capacity(nrows);
            for _ in 0..nrows {
                xs.push(get_u64(r)? as i64);
            }
            ColumnData::Int(xs)
        }
        TAG_FLOAT => {
            let mut xs = Vec::with_capacity(nrows);
            for _ in 0..nrows {
                xs.push(f64::from_bits(get_u64(r)?));
            }
            ColumnData::Float(xs)
        }
        TAG_BOOL => {
            let mut bytes = vec![0u8; nrows];
            r.read_exact(&mut bytes)?;
            ColumnData::Bool(bytes.into_iter().map(|b| b != 0).collect())
        }
        TAG_STR => {
            let dict_len = get_u32(r)? as usize;
            let mut dict: Vec<Arc<str>> = Vec::with_capacity(dict_len);
            for _ in 0..dict_len {
                let bytes = get_bytes(r, MAX_ELEMS, "dictionary entry length")?;
                dict.push(Arc::from(
                    std::str::from_utf8(&bytes).map_err(|_| corrupt("dictionary utf-8"))?,
                ));
            }
            let mut codes = Vec::with_capacity(nrows);
            for _ in 0..nrows {
                let c = get_u32(r)?;
                if (c as usize) >= dict_len.max(1) {
                    return Err(corrupt("dictionary code out of range"));
                }
                codes.push(c);
            }
            ColumnData::Str {
                dict: Arc::new(dict),
                codes,
            }
        }
        TAG_MIXED => {
            let mut vs = Vec::with_capacity(nrows);
            for _ in 0..nrows {
                vs.push(read_value(r)?);
            }
            ColumnData::Mixed(vs)
        }
        other => return Err(Error::Io(format!("segment: unknown column tag {other}"))),
    };
    Ok(Column::new(data, validity))
}

// ---------------------------------------------------------------------------
// Whole-segment read/write
// ---------------------------------------------------------------------------

/// Serialize `chunk` (columns described by `schema`) into the write-once
/// segment file at `path`. The file is flushed and fsynced before return —
/// once this returns `Ok`, the bytes survive a crash (visibility is still
/// gated by the stream manifest).
pub fn write_segment(path: &Path, schema: &Schema, chunk: &ColumnChunk) -> Result<()> {
    if chunk.num_columns() != schema.len() {
        return Err(Error::catalog(format!(
            "segment: chunk has {} columns, schema has {}",
            chunk.num_columns(),
            schema.len()
        )));
    }
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    w.write_all(&SEGMENT_MAGIC)?;
    put_u16(&mut w, SEGMENT_VERSION)?;
    put_u32(
        &mut w,
        u32::try_from(schema.len()).map_err(|_| corrupt("column count"))?,
    )?;
    put_len(&mut w, chunk.len())?;
    for field in schema.fields() {
        put_bytes(&mut w, field.name.as_bytes())?;
        w.write_all(&[dtype_tag(field.data_type)])?;
    }
    for j in 0..chunk.num_columns() {
        write_column(&mut w, chunk.column(j))?;
    }
    let file = w
        .into_inner()
        .map_err(|e| Error::Io(format!("segment flush: {e}")))?;
    file.sync_all()?;
    Ok(())
}

/// Read a segment file back as `(schema, chunk)`. Fails with a typed
/// [`Error::Io`] on any malformed or truncated input — a torn segment from
/// a crash is rejected here, never half-loaded.
pub fn read_segment(path: &Path) -> Result<(Schema, ColumnChunk)> {
    let file = std::fs::File::open(path)?;
    let mut r = BufReader::new(file);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != SEGMENT_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = get_u16(&mut r)?;
    if version != SEGMENT_VERSION {
        return Err(Error::Io(format!(
            "segment: unsupported version {version} (this build reads v{SEGMENT_VERSION})"
        )));
    }
    let ncols = get_u32(&mut r)? as usize;
    let nrows = get_len(&mut r, MAX_ELEMS, "row count")?;
    let mut fields = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let name = get_bytes(&mut r, MAX_ELEMS, "field name length")?;
        let name = String::from_utf8(name).map_err(|_| corrupt("field name utf-8"))?;
        let mut tag = [0u8; 1];
        r.read_exact(&mut tag)?;
        fields.push(gola_common::Field::new(name, dtype_from_tag(tag[0])?));
    }
    let schema = Schema::new(fields);
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let col = read_column(&mut r, nrows)?;
        if col.len() != nrows {
            return Err(corrupt("column length"));
        }
        columns.push(Arc::new(col));
    }
    // Trailing garbage means the file is not what we wrote.
    let mut probe = [0u8; 1];
    if r.read(&mut probe)? != 0 {
        return Err(corrupt("trailing bytes"));
    }
    Ok((schema, ColumnChunk::new(columns, nrows)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gola_common::{row, Row};

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("id", DataType::Int),
            ("score", DataType::Float),
            ("name", DataType::Str),
            ("ok", DataType::Bool),
        ])
    }

    // A quiet NaN with a distinctive payload: round-tripping must keep the
    // exact bit pattern, not normalize it.
    fn odd_nan() -> f64 {
        f64::from_bits(0x7ff8_0000_dead_beef)
    }

    fn rows() -> Vec<Row> {
        vec![
            row![1i64, 1.5f64, "alpha", true],
            Row::new(vec![
                Value::Int(2),
                Value::Null,
                Value::str("beta"),
                Value::Bool(false),
            ]),
            row![3i64, odd_nan(), "alpha", true],
        ]
    }

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("gola-seg-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("seg-0.gseg");
        let schema = schema();
        let chunk = ColumnChunk::from_rows(&schema, &rows());
        write_segment(&path, &schema, &chunk).unwrap();
        let (rschema, rchunk) = read_segment(&path).unwrap();
        assert_eq!(rschema, schema);
        assert_eq!(rchunk.len(), chunk.len());
        for i in 0..chunk.len() {
            for (a, b) in rchunk.row(i).iter().zip(chunk.row(i).iter()) {
                match (a, b) {
                    (Value::Float(x), Value::Float(y)) => {
                        assert_eq!(x.to_bits(), y.to_bits(), "row {i}")
                    }
                    _ => assert_eq!(a, b, "row {i}"),
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_and_corrupt_files_rejected() {
        let dir = tmpdir("corrupt");
        let path = dir.join("seg.gseg");
        let schema = schema();
        let chunk = ColumnChunk::from_rows(&schema, &rows());
        write_segment(&path, &schema, &chunk).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Torn write: drop the tail.
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        assert!(read_segment(&path).is_err());
        // Bad magic.
        let mut evil = bytes.clone();
        evil[0] = b'X';
        std::fs::write(&path, &evil).unwrap();
        assert!(read_segment(&path).is_err());
        // Future version.
        let mut future = bytes.clone();
        future[4] = 99;
        std::fs::write(&path, &future).unwrap();
        let e = read_segment(&path).unwrap_err().to_string();
        assert!(e.contains("version"), "{e}");
        // Trailing garbage.
        let mut longer = bytes;
        longer.push(0);
        std::fs::write(&path, &longer).unwrap();
        assert!(read_segment(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_and_all_null_columns_round_trip() {
        let dir = tmpdir("edge");
        let schema = Schema::from_pairs(&[("x", DataType::Int), ("s", DataType::Str)]);
        // Every value null: builders keep the declared type with a cleared
        // validity bitmap.
        let rows = vec![
            Row::new(vec![Value::Null, Value::Null]),
            Row::new(vec![Value::Null, Value::Null]),
        ];
        let chunk = ColumnChunk::from_rows(&schema, &rows);
        let path = dir.join("nulls.gseg");
        write_segment(&path, &schema, &chunk).unwrap();
        let (_, rchunk) = read_segment(&path).unwrap();
        assert_eq!(rchunk.to_rows(), rows);
        // Zero rows.
        let empty = ColumnChunk::from_rows(&schema, &[]);
        let path = dir.join("empty.gseg");
        write_segment(&path, &schema, &empty).unwrap();
        let (_, rempty) = read_segment(&path).unwrap();
        assert_eq!(rempty.len(), 0);
        assert_eq!(rempty.num_columns(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn width_mismatch_rejected_at_write() {
        let dir = tmpdir("width");
        let narrow = Schema::from_pairs(&[("x", DataType::Int)]);
        let chunk = ColumnChunk::from_rows(&schema(), &rows());
        let err = write_segment(&dir.join("w.gseg"), &narrow, &chunk);
        assert!(err.is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
