//! Named-table [`Catalog`].

use std::collections::BTreeMap;
use std::sync::Arc;

use gola_common::{Error, Result};

use crate::stream::StreamTable;
use crate::table::Table;

/// A case-insensitive map from table name to table.
///
/// `BTreeMap` keeps iteration deterministic (catalog listings in tests and
/// the CLI are stable across runs).
///
/// A name can also be backed by a [`StreamTable`]: `get` then materializes
/// a point-in-time snapshot of the sealed segments (cheap — chunks are
/// `Arc`-shared), while [`Catalog::stream`] hands out the live handle so
/// growing queries and ingest paths observe appends. Cloning a catalog
/// clones the `Arc`s, so a clone shares every stream with the original.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: BTreeMap<String, Arc<Table>>,
    streams: BTreeMap<String, Arc<StreamTable>>,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a table; errors on duplicate names.
    pub fn register(&mut self, name: impl Into<String>, table: Arc<Table>) -> Result<()> {
        let key = name.into().to_ascii_lowercase();
        if self.tables.contains_key(&key) || self.streams.contains_key(&key) {
            return Err(Error::catalog(format!("table '{key}' already exists")));
        }
        self.tables.insert(key, table);
        Ok(())
    }

    /// Register an appendable stream under `name`; errors on duplicates.
    /// Queries resolve the name to a snapshot of the sealed segments;
    /// [`Catalog::stream`] returns the live handle.
    pub fn register_stream(
        &mut self,
        name: impl Into<String>,
        stream: Arc<StreamTable>,
    ) -> Result<()> {
        let key = name.into().to_ascii_lowercase();
        if self.tables.contains_key(&key) || self.streams.contains_key(&key) {
            return Err(Error::catalog(format!("table '{key}' already exists")));
        }
        self.streams.insert(key, stream);
        Ok(())
    }

    /// The live stream handle behind `name`, if `name` is stream-backed.
    pub fn stream(&self, name: &str) -> Option<&Arc<StreamTable>> {
        self.streams.get(&name.to_ascii_lowercase())
    }

    /// Replace or insert a table.
    pub fn register_or_replace(&mut self, name: impl Into<String>, table: Arc<Table>) {
        self.tables.insert(name.into().to_ascii_lowercase(), table);
    }

    /// Remove a table, returning it if present.
    pub fn deregister(&mut self, name: &str) -> Option<Arc<Table>> {
        self.tables.remove(&name.to_ascii_lowercase())
    }

    /// Look up a table by name (case-insensitive). A stream-backed name
    /// yields a fresh snapshot of its sealed segments, so batch engines and
    /// dimension reads see a consistent point-in-time table.
    pub fn get(&self, name: &str) -> Result<Arc<Table>> {
        let key = name.to_ascii_lowercase();
        if let Some(t) = self.tables.get(&key) {
            return Ok(Arc::clone(t));
        }
        if let Some(s) = self.streams.get(&key) {
            return Ok(Arc::new(s.snapshot()?));
        }
        Err(Error::catalog(format!(
            "unknown table '{name}' (available: {})",
            self.names().join(", ")
        )))
    }

    pub fn contains(&self, name: &str) -> bool {
        let key = name.to_ascii_lowercase();
        self.tables.contains_key(&key) || self.streams.contains_key(&key)
    }

    /// Sorted table names (static tables and streams alike).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.extend(self.streams.keys().cloned());
        names.sort();
        names
    }

    pub fn len(&self) -> usize {
        self.tables.len() + self.streams.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tables.is_empty() && self.streams.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gola_common::{row, DataType, Schema};

    fn table() -> Arc<Table> {
        let schema = Arc::new(Schema::from_pairs(&[("x", DataType::Int)]));
        Arc::new(Table::try_new(schema, vec![row![1i64]]).unwrap())
    }

    #[test]
    fn register_and_lookup_case_insensitive() {
        let mut c = Catalog::new();
        c.register("Sessions", table()).unwrap();
        assert!(c.get("sessions").is_ok());
        assert!(c.get("SESSIONS").is_ok());
        assert!(c.contains("SeSsIoNs"));
    }

    #[test]
    fn duplicate_rejected_but_replace_allowed() {
        let mut c = Catalog::new();
        c.register("t", table()).unwrap();
        assert!(c.register("T", table()).is_err());
        c.register_or_replace("T", table());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn missing_table_error_lists_names() {
        let mut c = Catalog::new();
        c.register("alpha", table()).unwrap();
        c.register("beta", table()).unwrap();
        let e = c.get("gamma").unwrap_err().to_string();
        assert!(e.contains("alpha") && e.contains("beta"));
    }

    #[test]
    fn stream_backed_names_snapshot_and_share() {
        use crate::stream::StreamTable;
        let schema = Arc::new(Schema::from_pairs(&[("x", DataType::Int)]));
        let s = StreamTable::new(Arc::clone(&schema));
        let mut c = Catalog::new();
        c.register_stream("Live", Arc::clone(&s)).unwrap();
        assert!(c.contains("live"));
        assert!(c.register("LIVE", table()).is_err(), "name is taken");
        assert!(c.register_stream("live", StreamTable::new(schema)).is_err());
        // Snapshot sees only sealed rows; a catalog clone shares the stream.
        s.append_rows(&[row![1i64], row![2i64]]).unwrap();
        assert_eq!(c.get("live").unwrap().num_rows(), 0);
        let c2 = c.clone();
        s.seal().unwrap();
        assert_eq!(c.get("live").unwrap().num_rows(), 2);
        assert_eq!(c2.get("live").unwrap().num_rows(), 2);
        assert!(c2.stream("live").is_some());
        assert_eq!(c.names(), vec!["live".to_string()]);
    }

    #[test]
    fn deregister() {
        let mut c = Catalog::new();
        c.register("t", table()).unwrap();
        assert!(c.deregister("T").is_some());
        assert!(c.deregister("t").is_none());
        assert!(c.is_empty());
    }
}
