//! Named-table [`Catalog`].

use std::collections::BTreeMap;
use std::sync::Arc;

use gola_common::{Error, Result};

use crate::table::Table;

/// A case-insensitive map from table name to table.
///
/// `BTreeMap` keeps iteration deterministic (catalog listings in tests and
/// the CLI are stable across runs).
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: BTreeMap<String, Arc<Table>>,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a table; errors on duplicate names.
    pub fn register(&mut self, name: impl Into<String>, table: Arc<Table>) -> Result<()> {
        let key = name.into().to_ascii_lowercase();
        if self.tables.contains_key(&key) {
            return Err(Error::catalog(format!("table '{key}' already exists")));
        }
        self.tables.insert(key, table);
        Ok(())
    }

    /// Replace or insert a table.
    pub fn register_or_replace(&mut self, name: impl Into<String>, table: Arc<Table>) {
        self.tables.insert(name.into().to_ascii_lowercase(), table);
    }

    /// Remove a table, returning it if present.
    pub fn deregister(&mut self, name: &str) -> Option<Arc<Table>> {
        self.tables.remove(&name.to_ascii_lowercase())
    }

    /// Look up a table by name (case-insensitive).
    pub fn get(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| {
                Error::catalog(format!(
                    "unknown table '{name}' (available: {})",
                    self.names().join(", ")
                ))
            })
    }

    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_ascii_lowercase())
    }

    /// Sorted table names.
    pub fn names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    pub fn len(&self) -> usize {
        self.tables.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gola_common::{row, DataType, Schema};

    fn table() -> Arc<Table> {
        let schema = Arc::new(Schema::from_pairs(&[("x", DataType::Int)]));
        Arc::new(Table::try_new(schema, vec![row![1i64]]).unwrap())
    }

    #[test]
    fn register_and_lookup_case_insensitive() {
        let mut c = Catalog::new();
        c.register("Sessions", table()).unwrap();
        assert!(c.get("sessions").is_ok());
        assert!(c.get("SESSIONS").is_ok());
        assert!(c.contains("SeSsIoNs"));
    }

    #[test]
    fn duplicate_rejected_but_replace_allowed() {
        let mut c = Catalog::new();
        c.register("t", table()).unwrap();
        assert!(c.register("T", table()).is_err());
        c.register_or_replace("T", table());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn missing_table_error_lists_names() {
        let mut c = Catalog::new();
        c.register("alpha", table()).unwrap();
        c.register("beta", table()).unwrap();
        let e = c.get("gamma").unwrap_err().to_string();
        assert!(e.contains("alpha") && e.contains("beta"));
    }

    #[test]
    fn deregister() {
        let mut c = Catalog::new();
        c.register("t", table()).unwrap();
        assert!(c.deregister("T").is_some());
        assert!(c.deregister("t").is_none());
        assert!(c.is_empty());
    }
}
