//! The in-memory row-store [`Table`].

use std::fmt;
use std::sync::Arc;

use gola_common::{Error, Result, Row, Schema, Value};

/// An immutable, schema-tagged collection of rows. Tables are shared via
/// `Arc` between the catalog, partitioner and executors.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    schema: Arc<Schema>,
    rows: Vec<Row>,
}

impl Table {
    /// Build a table, validating row arity and (non-null) value types
    /// against the schema.
    pub fn try_new(schema: Arc<Schema>, rows: Vec<Row>) -> Result<Table> {
        for (i, row) in rows.iter().enumerate() {
            if row.len() != schema.len() {
                return Err(Error::catalog(format!(
                    "row {i} has {} values, schema has {} columns",
                    row.len(),
                    schema.len()
                )));
            }
            for (j, v) in row.iter().enumerate() {
                let expected = schema.field(j).data_type;
                if !v.is_null() && v.data_type() != expected {
                    return Err(Error::catalog(format!(
                        "row {i} column '{}': expected {expected}, got {}",
                        schema.field(j).name,
                        v.data_type()
                    )));
                }
            }
        }
        Ok(Table { schema, rows })
    }

    /// Build a table without validation (generators construct well-typed
    /// rows by design; validation there would just re-scan gigabytes).
    pub fn new_unchecked(schema: Arc<Schema>, rows: Vec<Row>) -> Table {
        Table { schema, rows }
    }

    /// Empty table with the given schema.
    pub fn empty(schema: Arc<Schema>) -> Table {
        Table {
            schema,
            rows: Vec::new(),
        }
    }

    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Take ownership of the rows.
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    /// Column values by name, for tests and quick inspection.
    pub fn column(&self, name: &str) -> Result<Vec<Value>> {
        let idx = self.schema.index_of_or_err(name)?;
        Ok(self.rows.iter().map(|r| r.get(idx).clone()).collect())
    }

    /// Pretty-print at most `limit` rows as an aligned text table.
    pub fn display_limit(&self, limit: usize) -> String {
        let header: Vec<String> = self
            .schema
            .fields()
            .iter()
            .map(|f| f.name.clone())
            .collect();
        let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
        let shown: Vec<Vec<String>> = self
            .rows
            .iter()
            .take(limit)
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &shown {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {c:w$} |"));
            }
            line
        };
        out.push_str(&fmt_row(&header, &widths));
        out.push('\n');
        out.push('|');
        for w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('|');
        }
        out.push('\n');
        for row in &shown {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        if self.rows.len() > limit {
            out.push_str(&format!("... {} more rows\n", self.rows.len() - limit));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display_limit(20))
    }
}

/// Incremental construction of a [`Table`].
#[derive(Debug)]
pub struct TableBuilder {
    schema: Arc<Schema>,
    rows: Vec<Row>,
}

impl TableBuilder {
    pub fn new(schema: Arc<Schema>) -> Self {
        TableBuilder {
            schema,
            rows: Vec::new(),
        }
    }

    pub fn with_capacity(schema: Arc<Schema>, capacity: usize) -> Self {
        TableBuilder {
            schema,
            rows: Vec::with_capacity(capacity),
        }
    }

    /// Append a row, checking arity (type checks are deferred to
    /// [`TableBuilder::finish_checked`]).
    pub fn push(&mut self, row: Row) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(Error::catalog(format!(
                "row arity {} != schema arity {}",
                row.len(),
                self.schema.len()
            )));
        }
        self.rows.push(row);
        Ok(())
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Finish without per-value validation.
    pub fn finish(self) -> Table {
        Table::new_unchecked(self.schema, self.rows)
    }

    /// Finish with full validation.
    pub fn finish_checked(self) -> Result<Table> {
        Table::try_new(self.schema, self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gola_common::{row, DataType};

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::from_pairs(&[
            ("id", DataType::Int),
            ("score", DataType::Float),
        ]))
    }

    #[test]
    fn validates_arity_and_types() {
        let ok = Table::try_new(schema(), vec![row![1i64, 2.0f64]]);
        assert!(ok.is_ok());
        let bad_arity = Table::try_new(schema(), vec![row![1i64]]);
        assert!(bad_arity.is_err());
        let bad_type = Table::try_new(schema(), vec![row![1i64, "x"]]);
        assert!(bad_type.is_err());
    }

    #[test]
    fn nulls_pass_validation() {
        let t = Table::try_new(schema(), vec![Row::new(vec![Value::Null, Value::Null])]);
        assert!(t.is_ok());
    }

    #[test]
    fn column_extraction() {
        let t = Table::try_new(schema(), vec![row![1i64, 2.0f64], row![2i64, 4.0f64]]).unwrap();
        assert_eq!(
            t.column("score").unwrap(),
            vec![Value::Float(2.0), Value::Float(4.0)]
        );
        assert!(t.column("missing").is_err());
    }

    #[test]
    fn builder_checks_arity() {
        let mut b = TableBuilder::new(schema());
        assert!(b.push(row![1i64, 1.0f64]).is_ok());
        assert!(b.push(row![1i64]).is_err());
        assert_eq!(b.finish().num_rows(), 1);
    }

    #[test]
    fn display_truncates() {
        let rows: Vec<Row> = (0..30).map(|i| row![i as i64, i as f64]).collect();
        let t = Table::new_unchecked(schema(), rows);
        let s = t.display_limit(5);
        assert!(s.contains("... 25 more rows"));
        assert!(s.contains("| id | score |"));
    }
}
