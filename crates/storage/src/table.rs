//! The in-memory columnar [`Table`].
//!
//! Tables store tuples as a sequence of [`ColumnChunk`]s of up to
//! [`TABLE_CHUNK_ROWS`] rows each: one typed column vector per attribute
//! (i64 / f64 / bool / dictionary-encoded strings) with a validity bitmap
//! where NULLs occur. The row-oriented API (`rows`, `into_rows`) is kept as
//! a materializing compatibility view for the exact engine and tests; the
//! online executor reads chunks directly.

use std::fmt;
use std::sync::Arc;

use gola_common::{Bitmap, Column, ColumnBuilder, ColumnData, Error, Result, Row, Schema, Value};

use crate::chunk::ColumnChunk;

/// Rows per storage chunk. Large enough to amortize per-chunk dictionaries,
/// small enough that a gather touches cache-resident column slices.
pub const TABLE_CHUNK_ROWS: usize = 65_536;

/// An immutable, schema-tagged collection of tuples stored column-major.
/// Tables are shared via `Arc` between the catalog, partitioner and
/// executors; chunks share their columns via `Arc` too, so cloning a table
/// copies no data.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Arc<Schema>,
    chunks: Vec<ColumnChunk>,
    /// Start row of each chunk. Row-built tables are *regular* (every chunk
    /// but the last holds exactly [`TABLE_CHUNK_ROWS`] rows) and resolve
    /// indices by division; [`Table::from_chunks`] may produce arbitrary
    /// chunk lengths, which resolve through this prefix instead.
    offsets: Vec<usize>,
    regular: bool,
    len: usize,
}

fn chunk_offsets(chunks: &[ColumnChunk]) -> (Vec<usize>, bool) {
    let mut offsets = Vec::with_capacity(chunks.len());
    let mut acc = 0usize;
    let mut regular = true;
    for (idx, c) in chunks.iter().enumerate() {
        offsets.push(acc);
        if idx + 1 < chunks.len() && c.len() != TABLE_CHUNK_ROWS {
            regular = false;
        }
        acc += c.len();
    }
    (offsets, regular)
}

impl Table {
    /// Build a table, validating row arity and (non-null) value types
    /// against the schema.
    pub fn try_new(schema: Arc<Schema>, rows: Vec<Row>) -> Result<Table> {
        for (i, row) in rows.iter().enumerate() {
            if row.len() != schema.len() {
                return Err(Error::catalog(format!(
                    "row {i} has {} values, schema has {} columns",
                    row.len(),
                    schema.len()
                )));
            }
            for (j, v) in row.iter().enumerate() {
                let expected = schema.field(j).data_type;
                if !v.is_null() && v.data_type() != expected {
                    return Err(Error::catalog(format!(
                        "row {i} column '{}': expected {expected}, got {}",
                        schema.field(j).name,
                        v.data_type()
                    )));
                }
            }
        }
        Ok(Table::new_unchecked(schema, rows))
    }

    /// Build a table without validation (generators construct well-typed
    /// rows by design; validation there would just re-scan gigabytes).
    pub fn new_unchecked(schema: Arc<Schema>, rows: Vec<Row>) -> Table {
        let len = rows.len();
        let chunks: Vec<ColumnChunk> = rows
            .chunks(TABLE_CHUNK_ROWS)
            .map(|slice| ColumnChunk::from_rows(&schema, slice))
            .collect();
        let (offsets, regular) = chunk_offsets(&chunks);
        Table {
            schema,
            chunks,
            offsets,
            regular,
            len,
        }
    }

    /// Assemble a table directly from columnar chunks (shuffle, columnar
    /// loaders, stream snapshots). Every chunk must be as wide as the
    /// schema and internally consistent: a chunk whose columns disagree on
    /// length would otherwise surface much later as an out-of-bounds gather
    /// panic, far from the loader that produced it.
    pub fn from_chunks(schema: Arc<Schema>, chunks: Vec<ColumnChunk>) -> Result<Table> {
        for (idx, c) in chunks.iter().enumerate() {
            if c.num_columns() != schema.len() {
                return Err(Error::catalog(format!(
                    "chunk {idx} has {} columns, schema has {}",
                    c.num_columns(),
                    schema.len()
                )));
            }
            for j in 0..c.num_columns() {
                let col_len = c.column(j).len();
                if col_len != c.len() {
                    return Err(Error::catalog(format!(
                        "chunk {idx} column '{}' has {col_len} rows, chunk declares {}",
                        schema.field(j).name,
                        c.len()
                    )));
                }
            }
        }
        let len = chunks.iter().map(|c| c.len()).sum();
        let (offsets, regular) = chunk_offsets(&chunks);
        Ok(Table {
            schema,
            chunks,
            offsets,
            regular,
            len,
        })
    }

    /// Empty table with the given schema.
    pub fn empty(schema: Arc<Schema>) -> Table {
        Table {
            schema,
            chunks: Vec::new(),
            offsets: Vec::new(),
            regular: true,
            len: 0,
        }
    }

    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The columnar chunks backing this table.
    pub fn chunks(&self) -> &[ColumnChunk] {
        &self.chunks
    }

    /// Materialize every tuple as a [`Row`] (compatibility view: the exact
    /// engine and tests are row-oriented; the online path reads chunks).
    pub fn rows(&self) -> Vec<Row> {
        let mut out = Vec::with_capacity(self.len);
        for c in &self.chunks {
            out.extend((0..c.len()).map(|i| c.row(i)));
        }
        out
    }

    pub fn num_rows(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Materialize all tuples, consuming the table.
    pub fn into_rows(self) -> Vec<Row> {
        self.rows()
    }

    /// Locate global row index `i` as `(chunk, offset)`.
    #[inline]
    fn locate(&self, i: usize) -> (usize, usize) {
        if self.regular {
            // Every chunk but the last holds exactly TABLE_CHUNK_ROWS rows.
            return (i / TABLE_CHUNK_ROWS, i % TABLE_CHUNK_ROWS);
        }
        let c = self.offsets.partition_point(|&o| o <= i) - 1;
        (c, i - self.offsets[c])
    }

    /// Value at global row `i`, column `j`.
    pub fn value(&self, i: usize, j: usize) -> Value {
        let (c, o) = self.locate(i);
        self.chunks[c].column(j).value(o)
    }

    /// Materialize the tuple at global row `i`.
    pub fn row(&self, i: usize) -> Row {
        let (c, o) = self.locate(i);
        self.chunks[c].row(o)
    }

    /// Gather tuples by global row index into a single [`ColumnChunk`]
    /// (the partitioner's mini-batch materialization).
    pub fn gather(&self, indices: &[usize]) -> ColumnChunk {
        if self.chunks.len() == 1 {
            return self.chunks[0].gather(indices);
        }
        let columns = (0..self.schema.len())
            .map(|j| Arc::new(self.gather_column(j, indices)))
            .collect();
        ColumnChunk::new(columns, indices.len())
    }

    /// Gather one column across chunk boundaries.
    fn gather_column(&self, j: usize, indices: &[usize]) -> Column {
        // Typed fast paths when every chunk stores the same primitive
        // variant; otherwise rebuild through the builder (re-encoding
        // dictionary strings against a fresh per-gather dictionary).
        let all_int = self
            .chunks
            .iter()
            .all(|c| matches!(c.column(j).data(), ColumnData::Int(_)));
        let all_float = !all_int
            && self
                .chunks
                .iter()
                .all(|c| matches!(c.column(j).data(), ColumnData::Float(_)));
        let all_bool = !all_int
            && !all_float
            && self
                .chunks
                .iter()
                .all(|c| matches!(c.column(j).data(), ColumnData::Bool(_)));
        let any_null = self.chunks.iter().any(|c| c.column(j).validity().is_some());
        macro_rules! typed_gather {
            ($variant:ident) => {{
                let mut out = Vec::with_capacity(indices.len());
                let mut validity = if any_null { Some(Bitmap::new()) } else { None };
                for &i in indices {
                    let (c, o) = self.locate(i);
                    let col = self.chunks[c].column(j);
                    match col.data() {
                        ColumnData::$variant(xs) => out.push(xs[o]),
                        _ => unreachable!("variant checked above"),
                    }
                    if let Some(bm) = validity.as_mut() {
                        bm.push(col.is_valid(o));
                    }
                }
                Column::new(ColumnData::$variant(out), validity)
            }};
        }
        if all_int {
            typed_gather!(Int)
        } else if all_float {
            typed_gather!(Float)
        } else if all_bool {
            typed_gather!(Bool)
        } else {
            let mut b = ColumnBuilder::new(self.schema.field(j).data_type, indices.len());
            for &i in indices {
                let (c, o) = self.locate(i);
                b.push(&self.chunks[c].column(j).value(o));
            }
            b.finish()
        }
    }

    /// Column values by name, for tests and quick inspection.
    pub fn column(&self, name: &str) -> Result<Vec<Value>> {
        let idx = self.schema.index_of_or_err(name)?;
        let mut out = Vec::with_capacity(self.len);
        for c in &self.chunks {
            let col = c.column(idx);
            out.extend((0..c.len()).map(|i| col.value(i)));
        }
        Ok(out)
    }

    /// Pretty-print at most `limit` rows as an aligned text table.
    pub fn display_limit(&self, limit: usize) -> String {
        let header: Vec<String> = self
            .schema
            .fields()
            .iter()
            .map(|f| f.name.clone())
            .collect();
        let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
        let shown: Vec<Vec<String>> = (0..self.len.min(limit))
            .map(|i| {
                self.row(i)
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
            })
            .collect();
        for row in &shown {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {c:w$} |"));
            }
            line
        };
        out.push_str(&fmt_row(&header, &widths));
        out.push('\n');
        out.push('|');
        for w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('|');
        }
        out.push('\n');
        for row in &shown {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        if self.len > limit {
            out.push_str(&format!("... {} more rows\n", self.len - limit));
        }
        out
    }
}

impl PartialEq for Table {
    /// Semantic equality: same schema and the same values in the same
    /// order, regardless of chunking or encoding.
    fn eq(&self, other: &Table) -> bool {
        if self.schema != other.schema || self.len != other.len {
            return false;
        }
        (0..self.len).all(|i| (0..self.schema.len()).all(|j| self.value(i, j) == other.value(i, j)))
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display_limit(20))
    }
}

/// Incremental construction of a [`Table`]. Buffers rows and transposes
/// into columnar chunks on `finish`.
#[derive(Debug)]
pub struct TableBuilder {
    schema: Arc<Schema>,
    rows: Vec<Row>,
}

impl TableBuilder {
    pub fn new(schema: Arc<Schema>) -> Self {
        TableBuilder {
            schema,
            rows: Vec::new(),
        }
    }

    pub fn with_capacity(schema: Arc<Schema>, capacity: usize) -> Self {
        TableBuilder {
            schema,
            rows: Vec::with_capacity(capacity),
        }
    }

    /// Append a row, checking arity (type checks are deferred to
    /// [`TableBuilder::finish_checked`]).
    pub fn push(&mut self, row: Row) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(Error::catalog(format!(
                "row arity {} != schema arity {}",
                row.len(),
                self.schema.len()
            )));
        }
        self.rows.push(row);
        Ok(())
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Finish without per-value validation.
    pub fn finish(self) -> Table {
        Table::new_unchecked(self.schema, self.rows)
    }

    /// Finish with full validation.
    pub fn finish_checked(self) -> Result<Table> {
        Table::try_new(self.schema, self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gola_common::{row, DataType};

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::from_pairs(&[
            ("id", DataType::Int),
            ("score", DataType::Float),
        ]))
    }

    #[test]
    fn irregular_chunks_index_correctly() {
        // `from_chunks` accepts arbitrary chunk lengths; global-row lookup
        // must resolve through the offset prefix, not division.
        let rows: Vec<Row> = (0..50).map(|i| row![i as i64, i as f64]).collect();
        let sch = schema();
        let chunks: Vec<ColumnChunk> = [0..7usize, 7..8, 8..31, 31..50]
            .into_iter()
            .map(|r| ColumnChunk::from_rows(&sch, &rows[r]))
            .collect();
        let t = Table::from_chunks(Arc::clone(&sch), chunks).unwrap();
        assert_eq!(t.num_rows(), 50);
        for (i, expect) in rows.iter().enumerate() {
            assert_eq!(&t.row(i), expect, "row {i}");
            assert_eq!(t.value(i, 0), Value::Int(i as i64));
        }
        let gathered = t.gather(&[49, 0, 8, 7, 30]);
        assert_eq!(gathered.row(0), rows[49]);
        assert_eq!(gathered.row(3), rows[7]);
        // Semantic equality ignores chunking.
        let regular = Table::new_unchecked(Arc::clone(&sch), rows);
        assert_eq!(t, regular);
    }

    #[test]
    fn from_chunks_rejects_inconsistent_chunks() {
        let sch = schema();
        // Width mismatch: one-column chunk against a two-column schema.
        let narrow = Schema::from_pairs(&[("id", DataType::Int)]);
        let thin = ColumnChunk::from_rows(&narrow, &[row![1i64]]);
        let err = Table::from_chunks(Arc::clone(&sch), vec![thin]).unwrap_err();
        assert!(err.to_string().contains("columns"), "{err}");
        // Internal disagreement: columns of different lengths inside one
        // chunk (previously a deferred index panic, now a typed error).
        let a = Arc::new(Column::from_values(
            DataType::Int,
            &[Value::Int(1), Value::Int(2)],
        ));
        let b = Arc::new(Column::from_values(DataType::Float, &[Value::Float(0.5)]));
        let ragged = ColumnChunk::from_columns_untrusted(vec![a, b], 2);
        let err = Table::from_chunks(Arc::clone(&sch), vec![ragged]).unwrap_err();
        assert!(err.to_string().contains("rows"), "{err}");
    }

    #[test]
    fn validates_arity_and_types() {
        let ok = Table::try_new(schema(), vec![row![1i64, 2.0f64]]);
        assert!(ok.is_ok());
        let bad_arity = Table::try_new(schema(), vec![row![1i64]]);
        assert!(bad_arity.is_err());
        let bad_type = Table::try_new(schema(), vec![row![1i64, "x"]]);
        assert!(bad_type.is_err());
    }

    #[test]
    fn nulls_pass_validation() {
        let t = Table::try_new(schema(), vec![Row::new(vec![Value::Null, Value::Null])]);
        assert!(t.is_ok());
    }

    #[test]
    fn column_extraction() {
        let t = Table::try_new(schema(), vec![row![1i64, 2.0f64], row![2i64, 4.0f64]]).unwrap();
        assert_eq!(
            t.column("score").unwrap(),
            vec![Value::Float(2.0), Value::Float(4.0)]
        );
        assert!(t.column("missing").is_err());
    }

    #[test]
    fn builder_checks_arity() {
        let mut b = TableBuilder::new(schema());
        assert!(b.push(row![1i64, 1.0f64]).is_ok());
        assert!(b.push(row![1i64]).is_err());
        assert_eq!(b.finish().num_rows(), 1);
    }

    #[test]
    fn display_truncates() {
        let rows: Vec<Row> = (0..30).map(|i| row![i as i64, i as f64]).collect();
        let t = Table::new_unchecked(schema(), rows);
        let s = t.display_limit(5);
        assert!(s.contains("... 25 more rows"));
        assert!(s.contains("| id | score |"));
    }

    #[test]
    fn rows_round_trip_and_equality() {
        let rows: Vec<Row> = (0..10)
            .map(|i| {
                if i % 3 == 0 {
                    Row::new(vec![Value::Int(i), Value::Null])
                } else {
                    row![i, i as f64 / 2.0]
                }
            })
            .collect();
        let t = Table::new_unchecked(schema(), rows.clone());
        assert_eq!(t.rows(), rows);
        assert_eq!(t.row(4), rows[4]);
        assert_eq!(t.value(3, 1), Value::Null);
        let u = Table::new_unchecked(schema(), rows);
        assert_eq!(t, u);
    }

    #[test]
    fn gather_matches_row_view() {
        let rows: Vec<Row> = (0..100).map(|i| row![i as i64, i as f64]).collect();
        let t = Table::new_unchecked(schema(), rows);
        let g = t.gather(&[7, 3, 99]);
        assert_eq!(g.len(), 3);
        assert_eq!(g.row(0), t.row(7));
        assert_eq!(g.row(2), t.row(99));
    }
}
