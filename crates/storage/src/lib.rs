//! Storage substrate for G-OLA: an in-memory **columnar chunk store**, a
//! table catalog, random shuffling, the **mini-batch partitioner** at the
//! heart of the G-OLA execution model (paper §2.1–2.2), and CSV
//! import/export.

pub mod catalog;
pub mod chunk;
pub mod csv;
pub mod partition;
pub mod shuffle;
pub mod stratified;
pub mod table;

pub use catalog::Catalog;
pub use chunk::ColumnChunk;
pub use partition::{MiniBatch, MiniBatchPartitioner};
pub use stratified::{Partitioner, StratifiedPartitioner};
pub use table::{Table, TableBuilder, TABLE_CHUNK_ROWS};
