//! Storage substrate for G-OLA: an in-memory row store, a table catalog,
//! random shuffling, the **mini-batch partitioner** at the heart of the
//! G-OLA execution model (paper §2.1–2.2), and CSV import/export.

pub mod catalog;
pub mod csv;
pub mod partition;
pub mod shuffle;
pub mod table;

pub use catalog::Catalog;
pub use partition::{MiniBatch, MiniBatchPartitioner};
pub use table::{Table, TableBuilder};
