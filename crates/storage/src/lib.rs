//! Storage substrate for G-OLA: an in-memory **columnar chunk store**, a
//! table catalog, random shuffling, the **mini-batch partitioner** at the
//! heart of the G-OLA execution model (paper §2.1–2.2), CSV
//! import/export, and the **streaming ingest** path — appendable
//! [`StreamTable`]s sealing into write-once columnar segment files, with a
//! growing partitioner that exposes live appends as extra mini-batches
//! (DESIGN.md §3.12).

pub mod catalog;
pub mod chunk;
pub mod csv;
pub mod growing;
pub mod partition;
pub mod segment;
pub mod shuffle;
pub mod stratified;
pub mod stream;
pub mod table;

pub use catalog::Catalog;
pub use chunk::ColumnChunk;
pub use growing::GrowingPartitioner;
pub use partition::{MiniBatch, MiniBatchPartitioner};
pub use stratified::{Partitioner, StratifiedPartitioner};
pub use stream::{SealedSegment, StreamTable};
pub use table::{Table, TableBuilder, TABLE_CHUNK_ROWS};
