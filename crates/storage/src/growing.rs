//! The growing partitioner: live appends as extra mini-batches.
//!
//! Fegaras's incremental-OLA observation (PAPERS.md) is that a segment of
//! rows that arrives *after* a query starts needs no shuffling into the
//! existing schedule — it is simply one more mini-batch, appended to the
//! end. [`GrowingPartitioner`] wraps the uniform [`MiniBatchPartitioner`]
//! over a snapshot of the stream taken at query start, then polls the
//! [`StreamTable`] for segments sealed afterwards and exposes each as an
//! additional batch (tuple ids are the segment's global row range, so
//! bootstrap weights stay stable and replayable).
//!
//! Moving-N semantics: `total_rows` is the stream's **live** population
//! (sealed + buffered), so multiplicities and finite-population
//! corrections computed against it never overstate convergence — an
//! append strictly widens (or holds) the CI. The *last* batch exists only
//! once the stream is closed and every sealed segment is consumed; at
//! that point `closed ⇒ pending = 0` makes the final multiplicity exactly
//! `1.0` and the FPC exactly `0.0`, identical to the static path.
//!
//! Determinism: extra batches are materialized once, in seal order, and
//! cached — `batch(i)` returns bit-identical data on every call, which is
//! what failure-triggered replay (`executor::recover`) and the
//! threads=1/N contract rely on. Reports are bit-identical across runs
//! whenever the interleaving of appends/seals/close with executor steps
//! is the same; *when* data becomes visible under wall-clock-driven
//! ingest is explicitly not deterministic (DESIGN.md §3.12).

use std::sync::{Arc, Mutex};

use gola_common::{Error, Result};

use crate::partition::{MiniBatch, MiniBatchPartitioner};
use crate::stream::StreamTable;
use crate::table::Table;

struct GrowState {
    /// Batches materialized from post-snapshot segments, in seal order.
    extra: Vec<MiniBatch>,
    /// Cumulative rows through each extra batch (absolute, including the
    /// base snapshot).
    bounds: Vec<usize>,
    /// Stream segments consumed so far (snapshot + extras).
    segments_seen: usize,
    /// Stream closed and every sealed segment consumed: the batch list is
    /// complete and the next unprocessed batch index can be "last".
    finalized: bool,
}

/// A partitioner over a [`StreamTable`] whose batch list grows as segments
/// seal. Clones share growth state, so every handle to one query sees the
/// same schedule.
#[derive(Clone)]
pub struct GrowingPartitioner {
    stream: Arc<StreamTable>,
    base: MiniBatchPartitioner,
    state: Arc<Mutex<GrowState>>,
}

impl std::fmt::Debug for GrowingPartitioner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GrowingPartitioner")
            .field("base_batches", &self.base.num_batches())
            .finish_non_exhaustive()
    }
}

impl GrowingPartitioner {
    /// Partition the stream's current sealed snapshot into `k` seeded
    /// batches; segments sealed later surface through [`Self::refresh`].
    /// The snapshot must be nonempty (a growing query needs at least one
    /// sealed row to start).
    pub fn new(stream: Arc<StreamTable>, k: usize, seed: u64) -> Result<Self> {
        let (snapshot, segments_seen) = stream.snapshot_with_segments()?;
        if snapshot.num_rows() == 0 {
            return Err(Error::config(
                "growing query needs at least one sealed row at start (seal before querying)",
            ));
        }
        let base = MiniBatchPartitioner::new(Arc::new(snapshot), k, seed)?;
        let p = GrowingPartitioner {
            stream,
            base,
            state: Arc::new(Mutex::new(GrowState {
                extra: Vec::new(),
                bounds: Vec::new(),
                segments_seen,
                finalized: false,
            })),
        };
        p.refresh();
        Ok(p)
    }

    /// The stream backing this partitioner.
    pub fn stream(&self) -> &Arc<StreamTable> {
        &self.stream
    }

    /// Pull newly sealed segments into the batch list (one batch per
    /// segment, seal order). Returns `true` when new batches appeared.
    /// Idempotent and cheap when nothing changed.
    pub fn refresh(&self) -> bool {
        let mut state = self.state.lock().unwrap();
        if state.finalized {
            return false;
        }
        let (fresh, closed) = self.stream.poll(state.segments_seen);
        let grew = !fresh.is_empty();
        for seg in fresh {
            let index = self.base.num_batches() + state.extra.len();
            let len = seg.chunk.len();
            let ids: Vec<u64> = (0..len as u64).map(|j| seg.start_row + j).collect();
            let prev = state
                .bounds
                .last()
                .copied()
                .unwrap_or_else(|| self.base.total_rows());
            state.extra.push(MiniBatch::new(index, ids, seg.chunk));
            state.bounds.push(prev + len);
            state.segments_seen += 1;
        }
        if closed {
            // `closed` forbids further appends and seals, and we consumed
            // every segment visible in the same atomic poll — the batch
            // list is complete.
            state.finalized = true;
        }
        grew
    }

    /// `true` once the batch list can no longer grow.
    pub fn finalized(&self) -> bool {
        self.state.lock().unwrap().finalized
    }

    /// Is batch `i` the definitive last batch? Only a finalized schedule
    /// has one — while the stream is open, no batch is last.
    pub fn is_final_batch(&self, i: usize) -> bool {
        let state = self.state.lock().unwrap();
        state.finalized && i + 1 == self.base.num_batches() + state.extra.len()
    }

    /// Block until the stream seals a segment we have not consumed or
    /// closes, then pull it in. Used by the executor when every visible
    /// batch is processed but the stream is still open.
    pub fn wait_for_growth(&self) {
        let seen = self.state.lock().unwrap().segments_seen;
        self.stream.wait_for_growth(seen);
        self.refresh();
    }

    /// Batches visible so far (base + consumed extras).
    pub fn num_batches(&self) -> usize {
        self.base.num_batches() + self.state.lock().unwrap().extra.len()
    }

    /// The **live** population `N`: every sealed row plus the write
    /// buffer. Deliberately larger than the sum of visible batches while
    /// ingest is in flight — that slack is exactly what keeps the FPC
    /// from claiming convergence against a population that can still grow.
    pub fn total_rows(&self) -> usize {
        self.stream.total_rows() as usize
    }

    /// Rows contained in batches `0..=i`.
    pub fn rows_seen_through(&self, i: usize) -> usize {
        let k = self.base.num_batches();
        if i < k {
            self.base.rows_seen_through(i)
        } else {
            self.state.lock().unwrap().bounds[i - k]
        }
    }

    /// Multiplicity `m = N_live / |Dᵢ|` after batch `i`. Exactly `1.0` at
    /// the final batch of a closed stream (numerator equals denominator).
    pub fn multiplicity_after(&self, i: usize) -> f64 {
        self.total_rows() as f64 / self.rows_seen_through(i) as f64
    }

    /// Materialize batch `i` — stable: identical bits on every call.
    pub fn batch(&self, i: usize) -> MiniBatch {
        let k = self.base.num_batches();
        if i < k {
            self.base.batch(i)
        } else {
            self.state.lock().unwrap().extra[i - k].clone()
        }
    }

    /// The base snapshot (rows sealed at query start).
    pub fn table(&self) -> &Arc<Table> {
        self.base.table()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gola_common::{row, DataType, Row, Schema};

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::from_pairs(&[("x", DataType::Int)]))
    }

    fn rows(lo: i64, n: i64) -> Vec<Row> {
        (lo..lo + n).map(|i| row![i]).collect()
    }

    fn seeded_stream(n: i64) -> Arc<StreamTable> {
        let s = StreamTable::new(schema());
        s.append_rows(&rows(0, n)).unwrap();
        s.seal().unwrap();
        s
    }

    #[test]
    fn extra_segments_become_batches_with_global_ids() {
        let s = seeded_stream(40);
        let p = GrowingPartitioner::new(Arc::clone(&s), 4, 7).unwrap();
        assert_eq!(p.num_batches(), 4);
        assert!(!p.finalized());
        assert!(!p.is_final_batch(3), "open stream has no last batch");

        s.append_rows(&rows(40, 10)).unwrap();
        s.seal().unwrap();
        assert!(p.refresh());
        assert_eq!(p.num_batches(), 5);
        let b = p.batch(4);
        assert_eq!(b.index, 4);
        assert_eq!(b.tuple_ids, (40..50u64).collect::<Vec<_>>());
        assert_eq!(p.rows_seen_through(4), 50);
        assert!(!p.is_final_batch(4));

        s.close().unwrap();
        assert!(!p.refresh(), "close adds no rows");
        assert!(p.finalized());
        assert!(p.is_final_batch(4));
        assert!((p.multiplicity_after(4) - 1.0).abs() == 0.0, "exact 1.0");
    }

    #[test]
    fn live_total_rows_counts_pending_buffer() {
        let s = seeded_stream(20);
        let p = GrowingPartitioner::new(Arc::clone(&s), 2, 1).unwrap();
        assert_eq!(p.total_rows(), 20);
        s.append_rows(&rows(20, 7)).unwrap();
        // Buffered rows are not a batch yet, but they are population.
        assert_eq!(p.num_batches(), 2);
        assert_eq!(p.total_rows(), 27);
        assert!(p.multiplicity_after(1) > 1.0);
    }

    #[test]
    fn batches_are_stable_across_calls_and_clones() {
        let s = seeded_stream(30);
        let p = GrowingPartitioner::new(Arc::clone(&s), 3, 9).unwrap();
        s.append_rows(&rows(30, 5)).unwrap();
        s.seal().unwrap();
        let q = p.clone();
        assert!(p.refresh());
        // The clone shares state: no second refresh needed.
        assert_eq!(q.num_batches(), 4);
        for i in 0..4 {
            assert_eq!(p.batch(i).tuple_ids, q.batch(i).tuple_ids);
            assert_eq!(p.batch(i).tuple_ids, p.batch(i).tuple_ids);
        }
    }

    #[test]
    fn empty_snapshot_rejected() {
        let s = StreamTable::new(schema());
        assert!(GrowingPartitioner::new(s, 2, 1).is_err());
    }

    #[test]
    fn wait_for_growth_wakes_on_seal_and_close() {
        let s = seeded_stream(10);
        let p = GrowingPartitioner::new(Arc::clone(&s), 1, 1).unwrap();
        let s2 = Arc::clone(&s);
        let t = std::thread::spawn(move || {
            s2.append_rows(&rows(10, 3)).unwrap();
            s2.seal().unwrap();
            s2.close().unwrap();
        });
        // Either wakeup order is fine; after the thread ends we must see
        // the extra batch and the final state.
        p.wait_for_growth();
        t.join().unwrap();
        p.refresh();
        assert!(p.finalized());
        assert_eq!(p.num_batches(), 2);
    }
}
