//! Struct-of-arrays chunks: the unit the partitioner, shuffler and executor
//! move around.
//!
//! A [`ColumnChunk`] is a run of tuples stored column-major: one
//! [`Column`] per attribute, all the same length, shared via `Arc` so
//! projections (lineage columns) and carried uncertain sets are reference
//! bumps instead of row copies. Row-at-a-time views are reconstructed on
//! demand (`row`, `to_rows`) for the exact engine and the tests; the hot
//! paths read the typed vectors directly.

use std::sync::Arc;

use gola_common::{Column, ColumnBuilder, Row, Schema, Value};

/// A column-major run of tuples.
#[derive(Debug, Clone)]
pub struct ColumnChunk {
    columns: Vec<Arc<Column>>,
    len: usize,
}

impl ColumnChunk {
    /// Assemble from columns (all must share `len`; `len` is explicit so
    /// zero-column chunks keep a row count).
    pub fn new(columns: Vec<Arc<Column>>, len: usize) -> ColumnChunk {
        debug_assert!(columns.iter().all(|c| c.len() == len));
        ColumnChunk { columns, len }
    }

    /// Assemble from externally produced columns **without** the equal-
    /// length debug assertion. Loaders that cannot vouch for their input
    /// (file readers, network decoders) build chunks here and rely on
    /// [`crate::Table::from_chunks`] for the checked validation — that is
    /// where a ragged chunk becomes a typed error instead of a deferred
    /// index panic.
    pub fn from_columns_untrusted(columns: Vec<Arc<Column>>, len: usize) -> ColumnChunk {
        ColumnChunk { columns, len }
    }

    /// An empty chunk with `width` zero-length columns.
    pub fn empty(width: usize) -> ColumnChunk {
        ColumnChunk {
            columns: (0..width)
                .map(|_| Arc::new(Column::from_values(gola_common::DataType::Null, &[])))
                .collect(),
            len: 0,
        }
    }

    /// Transpose rows into columns, using `schema` for the declared types.
    pub fn from_rows(schema: &Schema, rows: &[Row]) -> ColumnChunk {
        let mut builders: Vec<ColumnBuilder> = schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::new(f.data_type, rows.len()))
            .collect();
        for row in rows {
            for (b, v) in builders.iter_mut().zip(row.iter()) {
                b.push(v);
            }
        }
        ColumnChunk {
            columns: builders.into_iter().map(|b| Arc::new(b.finish())).collect(),
            len: rows.len(),
        }
    }

    /// Transpose rows into columns without a declared schema: each column
    /// adopts the type of its first non-null value (and degrades to a mixed
    /// column on mismatch). Used where no source schema is available, e.g.
    /// lineage projections of dimension-joined rows.
    pub fn from_rows_untyped(width: usize, rows: &[Row]) -> ColumnChunk {
        let mut builders: Vec<ColumnBuilder> = (0..width)
            .map(|_| ColumnBuilder::new(gola_common::DataType::Null, rows.len()))
            .collect();
        for row in rows {
            debug_assert_eq!(row.len(), width);
            for (b, v) in builders.iter_mut().zip(row.iter()) {
                b.push(v);
            }
        }
        ColumnChunk {
            columns: builders.into_iter().map(|b| Arc::new(b.finish())).collect(),
            len: rows.len(),
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    pub fn column(&self, i: usize) -> &Arc<Column> {
        &self.columns[i]
    }

    pub fn columns(&self) -> &[Arc<Column>] {
        &self.columns
    }

    /// Select columns by index (cheap: `Arc` clones, no data copied).
    pub fn project(&self, indices: &[usize]) -> ColumnChunk {
        ColumnChunk {
            columns: indices
                .iter()
                .map(|&i| Arc::clone(&self.columns[i]))
                .collect(),
            len: self.len,
        }
    }

    /// Gather tuple slots by index into a new chunk.
    pub fn gather(&self, indices: &[usize]) -> ColumnChunk {
        ColumnChunk {
            columns: self
                .columns
                .iter()
                .map(|c| Arc::new(c.gather(indices)))
                .collect(),
            len: indices.len(),
        }
    }

    /// Concatenate two chunks of the same width (carried uncertain set ++
    /// new candidates).
    pub fn concat(&self, other: &ColumnChunk) -> ColumnChunk {
        if self.len == 0 {
            return other.clone();
        }
        if other.len == 0 {
            return self.clone();
        }
        debug_assert_eq!(self.num_columns(), other.num_columns());
        ColumnChunk {
            columns: self
                .columns
                .iter()
                .zip(&other.columns)
                .map(|(a, b)| Arc::new(a.concat(b)))
                .collect(),
            len: self.len + other.len,
        }
    }

    /// Materialize the values of tuple `i` into `buf` (reused across calls
    /// by row-at-a-time fallbacks).
    pub fn row_values_into(&self, i: usize, buf: &mut Vec<Value>) {
        buf.clear();
        buf.extend(self.columns.iter().map(|c| c.value(i)));
    }

    /// Materialize tuple `i` as a [`Row`].
    pub fn row(&self, i: usize) -> Row {
        Row::new(self.columns.iter().map(|c| c.value(i)).collect())
    }

    /// Materialize every tuple (compatibility view for the exact engine).
    pub fn to_rows(&self) -> Vec<Row> {
        (0..self.len).map(|i| self.row(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gola_common::{row, DataType};

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("id", DataType::Int),
            ("name", DataType::Str),
            ("score", DataType::Float),
        ])
    }

    fn rows() -> Vec<Row> {
        vec![
            row![1i64, "a", 1.5f64],
            Row::new(vec![Value::Int(2), Value::Null, Value::Float(2.5)]),
            row![3i64, "a", 3.5f64],
        ]
    }

    #[test]
    fn from_rows_round_trips() {
        let c = ColumnChunk::from_rows(&schema(), &rows());
        assert_eq!(c.len(), 3);
        assert_eq!(c.to_rows(), rows());
        let mut buf = Vec::new();
        c.row_values_into(1, &mut buf);
        assert_eq!(buf, rows()[1].values());
    }

    #[test]
    fn project_shares_columns() {
        let c = ColumnChunk::from_rows(&schema(), &rows());
        let p = c.project(&[2, 0]);
        assert_eq!(p.num_columns(), 2);
        assert!(Arc::ptr_eq(p.column(1), c.column(0)));
        assert_eq!(p.row(0), row![1.5f64, 1i64]);
    }

    #[test]
    fn gather_and_concat() {
        let c = ColumnChunk::from_rows(&schema(), &rows());
        let g = c.gather(&[2, 1]);
        assert_eq!(g.row(0), rows()[2]);
        let cc = g.concat(&c.gather(&[0]));
        assert_eq!(cc.len(), 3);
        assert_eq!(cc.row(2), rows()[0]);
        assert!(ColumnChunk::empty(3).concat(&g).len() == 2);
    }
}
