//! Streaming ingest: an appendable table made of sealed immutable
//! segments plus one mutable write buffer (DESIGN.md §3.12).
//!
//! A [`StreamTable`] accumulates appended rows in a write buffer; `seal`
//! transposes the buffer into an immutable [`ColumnChunk`] segment and —
//! when the stream is durable — persists it as a [`crate::segment`] file
//! before making it visible. Long-running queries observe the stream
//! through two monotone quantities:
//!
//! * **watermark** — rows sealed so far; only sealed rows are queryable,
//! * **total_rows** — watermark + buffered rows; this is the live `N`
//!   that finite-population corrections must use while the stream is open
//!   (the moving-N contract: a CI may never claim completeness against an
//!   `N` that can still grow).
//!
//! `close` seals any pending buffer and forbids further appends, so
//! `closed ⇒ pending = 0 ⇒ watermark = total_rows`: the final batch of a
//! growing query runs at multiplicity exactly 1 and FPC exactly 0, same
//! as the static path.
//!
//! Durability protocol: segment files are write-once; the append-only
//! `MANIFEST` is the commit point. A seal writes + fsyncs the segment
//! file, then appends one manifest line and fsyncs the manifest. On
//! reopen, only manifest-listed segments are loaded, in manifest order —
//! a torn segment file from a crash is invisible, and a torn final
//! manifest line is discarded. `close` is itself a manifest line, so a
//! closed stream reopens closed — without that, a replayed final batch
//! would not know it is final and reports would drift. Replay is
//! therefore bit-exact: same segments, same order, same row ids, same
//! end-of-stream.

use std::collections::BTreeSet;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};

use gola_common::{DataType, Error, Result, Row, Schema};

use crate::chunk::ColumnChunk;
use crate::segment::{read_segment, write_segment};
use crate::table::Table;

/// Manifest file name inside a durable stream directory.
pub const MANIFEST_FILE: &str = "MANIFEST";
const MANIFEST_HEADER: &str = "gola-stream\tv1";
/// Manifest line marking a durably-closed stream.
const CLOSE_LINE: &str = "close";

/// One sealed, immutable segment.
#[derive(Clone)]
pub struct SealedSegment {
    /// Sequential id (also the on-disk file stem for durable streams).
    pub id: u64,
    /// Global row offset of this segment's first row.
    pub start_row: u64,
    /// The columnar payload.
    pub chunk: ColumnChunk,
}

struct StreamInner {
    segments: Vec<SealedSegment>,
    buffer: Vec<Row>,
    closed: bool,
    next_id: u64,
    /// Rows sealed so far (== sum of segment lengths).
    sealed_rows: u64,
}

/// An appendable table: sealed segments + a write buffer. Shared via
/// `Arc` between the ingest path and any number of running queries.
pub struct StreamTable {
    schema: Arc<Schema>,
    dir: Option<PathBuf>,
    inner: Mutex<StreamInner>,
    growth: Condvar,
}

impl std::fmt::Debug for StreamTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamTable")
            .field("schema", &self.schema)
            .field("dir", &self.dir)
            .finish_non_exhaustive()
    }
}

impl StreamTable {
    /// A new, empty, in-memory stream.
    pub fn new(schema: Arc<Schema>) -> Arc<StreamTable> {
        Arc::new(StreamTable {
            schema,
            dir: None,
            inner: Mutex::new(StreamInner {
                segments: Vec::new(),
                buffer: Vec::new(),
                closed: false,
                next_id: 0,
                sealed_rows: 0,
            }),
            growth: Condvar::new(),
        })
    }

    /// Create a durable stream rooted at `dir` (created if absent; must
    /// not already contain a manifest).
    pub fn create_dir(schema: Arc<Schema>, dir: &Path) -> Result<Arc<StreamTable>> {
        std::fs::create_dir_all(dir)?;
        let manifest = dir.join(MANIFEST_FILE);
        if manifest.exists() {
            return Err(Error::catalog(format!(
                "stream directory {} already has a manifest; use open_dir",
                dir.display()
            )));
        }
        let mut header = String::from(MANIFEST_HEADER);
        for field in schema.fields() {
            header.push('\t');
            header.push_str(&field.name);
            header.push('\t');
            header.push_str(dtype_token(field.data_type));
        }
        header.push('\n');
        let mut f = std::fs::File::create(&manifest)?;
        f.write_all(header.as_bytes())?;
        f.sync_all()?;
        Ok(Arc::new(StreamTable {
            schema,
            dir: Some(dir.to_path_buf()),
            inner: Mutex::new(StreamInner {
                segments: Vec::new(),
                buffer: Vec::new(),
                closed: false,
                next_id: 0,
                sealed_rows: 0,
            }),
            growth: Condvar::new(),
        }))
    }

    /// Reopen a durable stream: replay the manifest, loading each listed
    /// segment in order. Unlisted (torn) segment files are ignored; a
    /// partial final manifest line (no trailing newline) is discarded —
    /// both are the expected residue of a crash mid-seal.
    pub fn open_dir(dir: &Path) -> Result<Arc<StreamTable>> {
        let manifest_path = dir.join(MANIFEST_FILE);
        let text = std::fs::read_to_string(&manifest_path).map_err(|e| {
            Error::Io(format!(
                "open stream manifest {}: {e}",
                manifest_path.display()
            ))
        })?;
        let complete: &str = match text.rfind('\n') {
            Some(end) => &text[..end],
            None => {
                return Err(Error::catalog(format!(
                    "stream manifest {} has no complete header line",
                    manifest_path.display()
                )))
            }
        };
        let mut lines = complete.lines();
        let header = lines
            .next()
            .ok_or_else(|| Error::catalog("stream manifest is empty".to_string()))?;
        let schema = parse_manifest_header(header)?;
        let schema = Arc::new(schema);

        let mut segments = Vec::new();
        let mut sealed_rows: u64 = 0;
        let mut next_id: u64 = 0;
        let mut closed = false;
        let mut seen = BTreeSet::new();
        for line in lines {
            if line == CLOSE_LINE {
                closed = true;
                continue;
            }
            if closed {
                return Err(Error::catalog(format!(
                    "stream manifest {} lists a segment after close",
                    manifest_path.display()
                )));
            }
            let (id, file, rows) = parse_manifest_line(line)?;
            if !seen.insert(id) {
                return Err(Error::catalog(format!(
                    "stream manifest lists segment {id} twice"
                )));
            }
            let path = dir.join(&file);
            let (seg_schema, chunk) = read_segment(&path)?;
            if seg_schema != *schema {
                return Err(Error::catalog(format!(
                    "segment {} schema disagrees with stream manifest",
                    path.display()
                )));
            }
            if chunk.len() as u64 != rows {
                return Err(Error::catalog(format!(
                    "segment {} has {} rows; manifest says {rows}",
                    path.display(),
                    chunk.len()
                )));
            }
            segments.push(SealedSegment {
                id,
                start_row: sealed_rows,
                chunk,
            });
            sealed_rows += rows;
            next_id = next_id.max(id + 1);
        }
        Ok(Arc::new(StreamTable {
            schema,
            dir: Some(dir.to_path_buf()),
            inner: Mutex::new(StreamInner {
                segments,
                buffer: Vec::new(),
                closed,
                next_id,
                sealed_rows,
            }),
            growth: Condvar::new(),
        }))
    }

    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// `true` when this stream persists sealed segments to disk.
    pub fn is_durable(&self) -> bool {
        self.dir.is_some()
    }

    /// Append rows to the write buffer. Rows are arity- and type-checked
    /// against the stream schema (`NULL` is valid in any column). Fails
    /// once the stream is closed — `closed` is final, which is what makes
    /// the last mini-batch of a growing query truly last.
    pub fn append_rows(&self, rows: &[Row]) -> Result<()> {
        for row in rows {
            if row.len() != self.schema.len() {
                return Err(Error::catalog(format!(
                    "append: row has {} values, schema has {} columns",
                    row.len(),
                    self.schema.len()
                )));
            }
            for (v, field) in row.iter().zip(self.schema.fields()) {
                let vt = v.data_type();
                if vt != DataType::Null
                    && field.data_type != DataType::Null
                    && vt != field.data_type
                {
                    return Err(Error::catalog(format!(
                        "append: value {v} is {vt}, column '{}' is {}",
                        field.name, field.data_type
                    )));
                }
            }
        }
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(Error::catalog(
                "append: stream is closed to further ingest".to_string(),
            ));
        }
        inner.buffer.extend_from_slice(rows);
        Ok(())
    }

    /// Seal the write buffer into one immutable segment. Durable streams
    /// persist the segment file (fsync) and then commit it with a
    /// manifest line (fsync) before it becomes visible. Returns the
    /// number of rows sealed; an empty buffer is a no-op.
    pub fn seal(&self) -> Result<usize> {
        let mut inner = self.inner.lock().unwrap();
        self.seal_locked(&mut inner)
    }

    fn seal_locked(&self, inner: &mut StreamInner) -> Result<usize> {
        if inner.buffer.is_empty() {
            return Ok(0);
        }
        let rows = std::mem::take(&mut inner.buffer);
        let chunk = ColumnChunk::from_rows(&self.schema, &rows);
        let id = inner.next_id;
        if let Some(dir) = &self.dir {
            let file = format!("seg-{id:08}.gseg");
            let path = dir.join(&file);
            if let Err(e) = write_segment(&path, &self.schema, &chunk) {
                // The seal failed before the commit point: put the rows
                // back so nothing is lost and nothing half-visible.
                inner.buffer = rows;
                return Err(e);
            }
            if let Err(e) = append_manifest_line(dir, id, &file, chunk.len()) {
                inner.buffer = rows;
                return Err(e);
            }
        }
        let n = chunk.len();
        inner.segments.push(SealedSegment {
            id,
            start_row: inner.sealed_rows,
            chunk,
        });
        inner.next_id = id + 1;
        inner.sealed_rows += n as u64;
        self.growth.notify_all();
        Ok(n)
    }

    /// Seal any pending rows, then close the stream to further appends.
    /// Idempotent. After `close`, `watermark == total_rows` and waiting
    /// queries are woken to run their final batch. Durable streams commit
    /// the close to the manifest, so a reopened stream is still closed —
    /// end-of-stream is part of what replay must reproduce.
    pub fn close(&self) -> Result<()> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Ok(());
        }
        self.seal_locked(&mut inner)?;
        if let Some(dir) = &self.dir {
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(dir.join(MANIFEST_FILE))?;
            f.write_all(format!("{CLOSE_LINE}\n").as_bytes())?;
            f.sync_all()?;
        }
        inner.closed = true;
        self.growth.notify_all();
        Ok(())
    }

    pub fn is_closed(&self) -> bool {
        self.inner.lock().unwrap().closed
    }

    /// Rows sealed (queryable) so far.
    pub fn watermark(&self) -> u64 {
        self.inner.lock().unwrap().sealed_rows
    }

    /// Rows appended but not yet sealed.
    pub fn pending_rows(&self) -> usize {
        self.inner.lock().unwrap().buffer.len()
    }

    /// The live `N`: sealed + buffered rows. This is the population size
    /// finite-population corrections must divide by while the stream is
    /// open (see executor `build_report`).
    pub fn total_rows(&self) -> u64 {
        let inner = self.inner.lock().unwrap();
        inner.sealed_rows + inner.buffer.len() as u64
    }

    /// Number of sealed segments.
    pub fn num_segments(&self) -> usize {
        self.inner.lock().unwrap().segments.len()
    }

    /// A point-in-time [`Table`] over the sealed segments (cheap: chunks
    /// share their `Arc`ed columns with the stream).
    pub fn snapshot(&self) -> Result<Table> {
        Ok(self.snapshot_with_segments()?.0)
    }

    /// Atomic snapshot plus the number of segments it covers — the pair a
    /// growing partitioner needs so its "segments consumed so far" cursor
    /// cannot straddle a concurrent seal.
    pub fn snapshot_with_segments(&self) -> Result<(Table, usize)> {
        let inner = self.inner.lock().unwrap();
        let chunks: Vec<ColumnChunk> = inner.segments.iter().map(|s| s.chunk.clone()).collect();
        let n = inner.segments.len();
        Ok((Table::from_chunks(Arc::clone(&self.schema), chunks)?, n))
    }

    /// Atomically read `(segments sealed at or after index from, closed)`.
    /// Because `closed` forbids further appends and seals, a `true` here
    /// with the returned tail consumed means the caller has seen the whole
    /// stream — the property that makes "last batch" well-defined under
    /// ingest.
    pub fn poll(&self, from: usize) -> (Vec<SealedSegment>, bool) {
        let inner = self.inner.lock().unwrap();
        let fresh = inner.segments.get(from..).unwrap_or(&[]).to_vec();
        (fresh, inner.closed)
    }

    /// Block until more than `seen_segments` segments are sealed or the
    /// stream closes. Returns `(num_segments, closed)` at wake-up. Used
    /// by the executor when a growing query has drained every visible
    /// batch but the stream is still open.
    pub fn wait_for_growth(&self, seen_segments: usize) -> (usize, bool) {
        let mut inner = self.inner.lock().unwrap();
        while inner.segments.len() <= seen_segments && !inner.closed {
            inner = self.growth.wait(inner).unwrap();
        }
        (inner.segments.len(), inner.closed)
    }
}

fn dtype_token(t: DataType) -> &'static str {
    match t {
        DataType::Bool => "bool",
        DataType::Int => "int",
        DataType::Float => "float",
        DataType::Str => "str",
        DataType::Null => "null",
    }
}

fn dtype_from_token(tok: &str) -> Result<DataType> {
    Ok(match tok {
        "bool" => DataType::Bool,
        "int" => DataType::Int,
        "float" => DataType::Float,
        "str" => DataType::Str,
        "null" => DataType::Null,
        other => {
            return Err(Error::catalog(format!(
                "stream manifest: unknown column type '{other}'"
            )))
        }
    })
}

fn parse_manifest_header(line: &str) -> Result<Schema> {
    let mut parts = line.split('\t');
    let (magic, version) = (parts.next(), parts.next());
    if magic != Some("gola-stream") || version != Some("v1") {
        return Err(Error::catalog(
            "stream manifest: unrecognized header".to_string(),
        ));
    }
    let mut fields = Vec::new();
    while let Some(name) = parts.next() {
        let Some(tok) = parts.next() else {
            return Err(Error::catalog(
                "stream manifest: column name without a type".to_string(),
            ));
        };
        fields.push(gola_common::Field::new(name, dtype_from_token(tok)?));
    }
    if fields.is_empty() {
        return Err(Error::catalog(
            "stream manifest: header declares no columns".to_string(),
        ));
    }
    Ok(Schema::new(fields))
}

fn parse_manifest_line(line: &str) -> Result<(u64, String, u64)> {
    let bad = || Error::catalog(format!("stream manifest: malformed segment line '{line}'"));
    let mut parts = line.split('\t');
    if parts.next() != Some("seg") {
        return Err(bad());
    }
    let id = parts
        .next()
        .and_then(|s| s.parse::<u64>().ok())
        .ok_or_else(bad)?;
    let file = parts.next().ok_or_else(bad)?;
    if file.contains('/') || file.contains("..") {
        return Err(bad());
    }
    let rows = parts
        .next()
        .and_then(|s| s.parse::<u64>().ok())
        .ok_or_else(bad)?;
    Ok((id, file.to_string(), rows))
}

fn append_manifest_line(dir: &Path, id: u64, file: &str, rows: usize) -> Result<()> {
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(dir.join(MANIFEST_FILE))?;
    f.write_all(format!("seg\t{id}\t{file}\t{rows}\n").as_bytes())?;
    f.sync_all()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gola_common::row;

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::from_pairs(&[
            ("id", DataType::Int),
            ("score", DataType::Float),
        ]))
    }

    fn some_rows(lo: i64, n: i64) -> Vec<Row> {
        (lo..lo + n).map(|i| row![i, i as f64 * 0.5]).collect()
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gola-stream-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn watermark_and_total_rows_track_seals() {
        let s = StreamTable::new(schema());
        s.append_rows(&some_rows(0, 10)).unwrap();
        assert_eq!(s.watermark(), 0);
        assert_eq!(s.total_rows(), 10);
        assert_eq!(s.seal().unwrap(), 10);
        assert_eq!(s.watermark(), 10);
        s.append_rows(&some_rows(10, 5)).unwrap();
        assert_eq!(s.total_rows(), 15);
        s.close().unwrap();
        assert_eq!(s.watermark(), 15);
        assert_eq!(s.total_rows(), 15);
        assert!(s.is_closed());
        assert!(s.append_rows(&some_rows(0, 1)).is_err());
        // Idempotent close.
        s.close().unwrap();
        let snap = s.snapshot().unwrap();
        assert_eq!(snap.num_rows(), 15);
    }

    #[test]
    fn appends_are_type_checked() {
        let s = StreamTable::new(schema());
        assert!(s.append_rows(&[row![1i64]]).is_err()); // arity
        assert!(s.append_rows(&[row!["x", 1.0f64]]).is_err()); // type
        s.append_rows(&[Row::new(vec![
            gola_common::Value::Null,
            gola_common::Value::Float(1.0),
        ])])
        .unwrap(); // null ok
    }

    #[test]
    fn durable_stream_reopens_bit_exact() {
        let dir = tmpdir("reopen");
        {
            let s = StreamTable::create_dir(schema(), &dir).unwrap();
            s.append_rows(&some_rows(0, 7)).unwrap();
            s.seal().unwrap();
            s.append_rows(&some_rows(7, 4)).unwrap();
            s.seal().unwrap();
        } // drop everything
        let r = StreamTable::open_dir(&dir).unwrap();
        assert_eq!(r.watermark(), 11);
        assert_eq!(r.num_segments(), 2);
        let snap = r.snapshot().unwrap();
        let expect: Vec<Row> = some_rows(0, 11);
        for (i, want) in expect.iter().enumerate() {
            assert_eq!(&snap.row(i), want, "row {i}");
        }
        // Reopened stream keeps accepting appends with continuing ids.
        r.append_rows(&some_rows(11, 3)).unwrap();
        r.seal().unwrap();
        let r2 = StreamTable::open_dir(&dir).unwrap();
        assert_eq!(r2.watermark(), 14);
        assert!(!r2.is_closed());
        // Close is durable: the reopened stream is still end-of-stream.
        r2.close().unwrap();
        let r3 = StreamTable::open_dir(&dir).unwrap();
        assert!(r3.is_closed());
        assert!(r3.append_rows(&some_rows(14, 1)).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_segment_and_manifest_lines_ignored_or_rejected() {
        let dir = tmpdir("torn");
        let s = StreamTable::create_dir(schema(), &dir).unwrap();
        s.append_rows(&some_rows(0, 6)).unwrap();
        s.seal().unwrap();
        drop(s);
        // A torn segment file never listed in the manifest is invisible.
        std::fs::write(dir.join("seg-00000099.gseg"), b"GSEGgarbage").unwrap();
        let r = StreamTable::open_dir(&dir).unwrap();
        assert_eq!(r.num_segments(), 1);
        drop(r);
        // A torn (unterminated) final manifest line is discarded.
        let manifest = dir.join(MANIFEST_FILE);
        let mut text = std::fs::read_to_string(&manifest).unwrap();
        text.push_str("seg\t1\tseg-000");
        std::fs::write(&manifest, &text).unwrap();
        let r = StreamTable::open_dir(&dir).unwrap();
        assert_eq!(r.num_segments(), 1);
        assert_eq!(r.watermark(), 6);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_refuses_existing_manifest() {
        let dir = tmpdir("dup");
        let _s = StreamTable::create_dir(schema(), &dir).unwrap();
        assert!(StreamTable::create_dir(schema(), &dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
