//! Stratified mini-batch partitioning (BlinkDB-style, PAPERS.md §1203.5485).
//!
//! The uniform partitioner starves rare groups: a group holding 1% of a
//! table contributes ~1% of every mini-batch, so its per-group sample — and
//! its confidence interval — converges k× slower than the overall answer.
//! The stratified partitioner fixes this by keying **strata** on a
//! low-cardinality column and allocating every mini-batch
//! *proportionally-with-a-floor*: each batch takes each stratum's
//! proportional share, but never fewer than `floor` rows while the stratum
//! has rows left. Rare strata are therefore **oversampled early** and
//! exhaust after a few batches — at which point their per-stratum sampling
//! fraction hits 1, their finite-population correction hits 0, and their
//! group estimate is exact.
//!
//! Statistical honesty: an early stratified prefix is *not* a uniform
//! sample of the table. Estimates stay calibrated only when the estimator
//! weights each stratum by its own sampling rate — per-stratum
//! multiplicity `m_h = N_h / n_h` and per-stratum FPC
//! `sqrt(1 - n_h / N_h)` — which the executor applies when the query
//! groups by the stratification column. The final batch always drains
//! every stratum, so the finished answer is exact regardless.
//!
//! Determinism: construction is a pure function of
//! `(table, column, k, seed, floor)`. Strata are ordered by
//! [`Value::total_cmp`] on their key, each stratum's row order comes from
//! one seeded [`SplitMix64`] stream consumed in that order, and the
//! allocation below is integer arithmetic — so the batch schedule is
//! bit-identical across runs and thread counts.

use std::collections::HashMap;
use std::sync::Arc;

use gola_common::rng::SplitMix64;
use gola_common::{Error, Result, Value};

use crate::growing::GrowingPartitioner;
use crate::partition::{MiniBatch, MiniBatchPartitioner};
use crate::shuffle::shuffle_in_place;
use crate::table::Table;

/// One stratum: all rows sharing a key value, in seeded-shuffled order.
#[derive(Debug, Clone)]
struct Stratum {
    key: Value,
    /// Row indices into the table, shuffled under the stratum's sub-seed.
    idxs: Vec<usize>,
    /// Cumulative rows allocated through batch `i` (length `k`).
    taken: Vec<usize>,
}

/// Splits a table into `k` mini-batches stratified on one column.
/// Deterministic under `(table, column, k, seed, floor)`.
#[derive(Debug, Clone)]
pub struct StratifiedPartitioner {
    table: Arc<Table>,
    column: String,
    strata: Vec<Stratum>,
    /// Stratum index by key value.
    by_key: HashMap<Value, usize>,
    /// Cumulative total rows through batch `i` (length `k`).
    bounds: Vec<usize>,
}

impl StratifiedPartitioner {
    /// Partitioner with the default floor `max(1, n / k²)` — small enough
    /// to leave proportional allocation untouched for common strata, large
    /// enough that a rare stratum exhausts within the first few batches.
    pub fn new(table: Arc<Table>, column: &str, k: usize, seed: u64) -> Result<Self> {
        let floor = if k == 0 {
            1
        } else {
            (table.num_rows() / (k * k)).max(1)
        };
        Self::with_floor(table, column, k, seed, floor)
    }

    /// Partitioner with an explicit per-batch floor per stratum.
    ///
    /// Every batch is nonempty, and batch 0 represents every nonempty
    /// stratum whenever that is feasible (`num_strata <= n - k + 1`); with
    /// more strata than spare rows, later batches' nonemptiness wins.
    pub fn with_floor(
        table: Arc<Table>,
        column: &str,
        k: usize,
        seed: u64,
        floor: usize,
    ) -> Result<Self> {
        let n = table.num_rows();
        if k == 0 {
            return Err(Error::config("mini-batch count must be >= 1"));
        }
        if n == 0 {
            return Err(Error::config("cannot partition an empty table"));
        }
        if k > n {
            return Err(Error::config(format!(
                "mini-batch count {k} exceeds row count {n}"
            )));
        }
        let values = table.column(column)?;
        let floor = floor.max(1);

        // Group row indices by key, then order strata by key for
        // determinism (first-appearance order would also be deterministic,
        // but total_cmp order is stable under row shuffles of the input).
        let mut groups: HashMap<Value, Vec<usize>> = HashMap::new();
        for (i, v) in values.iter().enumerate() {
            groups.entry(v.clone()).or_default().push(i);
        }
        let mut keys: Vec<Value> = groups.keys().cloned().collect();
        keys.sort_by(|a, b| a.total_cmp(b));

        let mut rng = SplitMix64::new(seed);
        let mut strata: Vec<Stratum> = keys
            .into_iter()
            .map(|key| {
                let mut idxs = groups.remove(&key).expect("key came from the map");
                let sub_seed = rng.next_u64();
                shuffle_in_place(&mut idxs, sub_seed);
                Stratum {
                    key,
                    idxs,
                    taken: Vec::with_capacity(k),
                }
            })
            .collect();

        // Allocate batch by batch: proportional share with a floor, capped
        // by what each stratum has left, then trimmed so every later batch
        // can still be nonempty. The last batch drains everything.
        let mut bounds = Vec::with_capacity(k);
        let mut taken_total = 0usize;
        for i in 0..k {
            if i + 1 == k {
                for s in &mut strata {
                    s.taken.push(s.idxs.len());
                }
                bounds.push(n);
                break;
            }
            let remaining_total = n - taken_total;
            let mut takes: Vec<usize> = Vec::with_capacity(strata.len());
            let mut total = 0usize;
            for s in &strata {
                let n_h = s.idxs.len();
                let prev = s.taken.last().copied().unwrap_or(0);
                // Balanced proportional share: the first n_h % k batches
                // get one extra row, mirroring the uniform partitioner.
                let prop = n_h / k + usize::from(i < n_h % k);
                let t = prop.max(floor.min(n_h)).min(n_h - prev);
                takes.push(t);
                total += t;
            }
            // Leave at least one row for each of the k-1-i later batches.
            let max_allowed = remaining_total - (k - 1 - i);
            let mut over = total.saturating_sub(max_allowed);
            if over > 0 {
                // First give back floor-driven oversampling (down to the
                // proportional share), then, if the table is nearly
                // drained, the proportional share itself.
                for (h, s) in strata.iter().enumerate() {
                    if over == 0 {
                        break;
                    }
                    let n_h = s.idxs.len();
                    let prev = s.taken.last().copied().unwrap_or(0);
                    let prop = (n_h / k + usize::from(i < n_h % k)).min(n_h - prev);
                    let cut = takes[h].saturating_sub(prop).min(over);
                    takes[h] -= cut;
                    over -= cut;
                }
                for t in takes.iter_mut() {
                    if over == 0 {
                        break;
                    }
                    let cut = (*t).min(over);
                    *t -= cut;
                    over -= cut;
                }
            }
            for (s, &t) in strata.iter_mut().zip(&takes) {
                let prev = s.taken.last().copied().unwrap_or(0);
                s.taken.push(prev + t);
                taken_total += t;
            }
            bounds.push(taken_total);
        }
        debug_assert_eq!(*bounds.last().expect("k >= 1"), n);

        let by_key = strata
            .iter()
            .enumerate()
            .map(|(h, s)| (s.key.clone(), h))
            .collect();
        Ok(StratifiedPartitioner {
            table,
            column: column.to_string(),
            strata,
            by_key,
            bounds,
        })
    }

    /// The stratification column name.
    pub fn column(&self) -> &str {
        &self.column
    }

    /// Number of batches `k`.
    pub fn num_batches(&self) -> usize {
        self.bounds.len()
    }

    /// Total number of rows `|D|`.
    pub fn total_rows(&self) -> usize {
        self.table.num_rows()
    }

    /// Rows contained in batches `0..=i`.
    pub fn rows_seen_through(&self, i: usize) -> usize {
        self.bounds[i]
    }

    /// Global multiplicity `m = |D| / |Dᵢ|` after batch `i`.
    pub fn multiplicity_after(&self, i: usize) -> f64 {
        self.total_rows() as f64 / self.rows_seen_through(i) as f64
    }

    /// Number of strata.
    pub fn num_strata(&self) -> usize {
        self.strata.len()
    }

    /// Per-stratum sampling state after batch `i` for the stratum keyed by
    /// `key`: `(n_h, N_h)` — rows of the stratum seen through batch `i`
    /// and the stratum's total size. `None` for an unknown key.
    pub fn stratum_rate(&self, key: &Value, i: usize) -> Option<(usize, usize)> {
        let s = &self.strata[*self.by_key.get(key)?];
        Some((s.taken[i], s.idxs.len()))
    }

    /// Materialize batch `i`: each stratum's slice for this batch,
    /// concatenated in stratum order.
    pub fn batch(&self, i: usize) -> MiniBatch {
        let start_total = if i == 0 { 0 } else { self.bounds[i - 1] };
        let mut idxs = Vec::with_capacity(self.bounds[i] - start_total);
        for s in &self.strata {
            let start = if i == 0 { 0 } else { s.taken[i - 1] };
            idxs.extend_from_slice(&s.idxs[start..s.taken[i]]);
        }
        MiniBatch::new(
            i,
            idxs.iter().map(|&x| x as u64).collect(),
            self.table.gather(&idxs),
        )
    }

    /// Iterate all batches in order.
    pub fn iter(&self) -> impl Iterator<Item = MiniBatch> + '_ {
        (0..self.num_batches()).map(move |i| self.batch(i))
    }

    /// The underlying table.
    pub fn table(&self) -> &Arc<Table> {
        &self.table
    }
}

/// Any mini-batch partitioner, behind one dispatching surface, so the
/// executor is agnostic to the sampling design. The `Growing` variant's
/// batch list can lengthen between calls (live ingest); the static
/// variants are always `finalized` and their `refresh` is a no-op, so the
/// executor drives all three through the same moving-N protocol.
#[derive(Debug, Clone)]
pub enum Partitioner {
    Uniform(MiniBatchPartitioner),
    Stratified(StratifiedPartitioner),
    Growing(GrowingPartitioner),
}

impl Partitioner {
    pub fn num_batches(&self) -> usize {
        match self {
            Partitioner::Uniform(p) => p.num_batches(),
            Partitioner::Stratified(p) => p.num_batches(),
            Partitioner::Growing(p) => p.num_batches(),
        }
    }

    /// The live population `N`. Static designs return the table size; a
    /// growing design returns sealed + buffered rows, which can exceed
    /// the rows reachable through `batch` until the next `refresh`.
    pub fn total_rows(&self) -> usize {
        match self {
            Partitioner::Uniform(p) => p.total_rows(),
            Partitioner::Stratified(p) => p.total_rows(),
            Partitioner::Growing(p) => p.total_rows(),
        }
    }

    pub fn rows_seen_through(&self, i: usize) -> usize {
        match self {
            Partitioner::Uniform(p) => p.rows_seen_through(i),
            Partitioner::Stratified(p) => p.rows_seen_through(i),
            Partitioner::Growing(p) => p.rows_seen_through(i),
        }
    }

    pub fn multiplicity_after(&self, i: usize) -> f64 {
        match self {
            Partitioner::Uniform(p) => p.multiplicity_after(i),
            Partitioner::Stratified(p) => p.multiplicity_after(i),
            Partitioner::Growing(p) => p.multiplicity_after(i),
        }
    }

    pub fn batch(&self, i: usize) -> MiniBatch {
        match self {
            Partitioner::Uniform(p) => p.batch(i),
            Partitioner::Stratified(p) => p.batch(i),
            Partitioner::Growing(p) => p.batch(i),
        }
    }

    pub fn iter(&self) -> impl Iterator<Item = MiniBatch> + '_ {
        (0..self.num_batches()).map(move |i| self.batch(i))
    }

    pub fn table(&self) -> &Arc<Table> {
        match self {
            Partitioner::Uniform(p) => p.table(),
            Partitioner::Stratified(p) => p.table(),
            Partitioner::Growing(p) => p.table(),
        }
    }

    /// Pull newly sealed segments into the batch list. `true` when new
    /// batches appeared; always `false` for static designs.
    pub fn refresh(&self) -> bool {
        match self {
            Partitioner::Growing(p) => p.refresh(),
            _ => false,
        }
    }

    /// `true` once the batch list can no longer grow. Static designs are
    /// finalized from birth.
    pub fn finalized(&self) -> bool {
        match self {
            Partitioner::Growing(p) => p.finalized(),
            _ => true,
        }
    }

    /// Is batch `i` the definitive last batch — the one whose report is
    /// exact? For a growing design no batch is last until the stream
    /// closes and every sealed segment is consumed.
    pub fn is_final_batch(&self, i: usize) -> bool {
        match self {
            Partitioner::Growing(p) => p.is_final_batch(i),
            _ => i + 1 == self.num_batches(),
        }
    }

    /// Block until a growing design has more batches (or its stream
    /// closes). No-op for static designs — their schedule never grows.
    pub fn wait_for_growth(&self) {
        if let Partitioner::Growing(p) = self {
            p.wait_for_growth();
        }
    }

    /// The stratification column, when stratified.
    pub fn stratify_column(&self) -> Option<&str> {
        match self {
            Partitioner::Stratified(p) => Some(p.column()),
            _ => None,
        }
    }

    /// Per-stratum `(n_h, N_h)` after batch `i`; `None` when not
    /// stratified or the key is unknown.
    pub fn stratum_rate(&self, key: &Value, i: usize) -> Option<(usize, usize)> {
        match self {
            Partitioner::Stratified(p) => p.stratum_rate(key, i),
            _ => None,
        }
    }
}

impl From<GrowingPartitioner> for Partitioner {
    fn from(p: GrowingPartitioner) -> Self {
        Partitioner::Growing(p)
    }
}

impl From<MiniBatchPartitioner> for Partitioner {
    fn from(p: MiniBatchPartitioner) -> Self {
        Partitioner::Uniform(p)
    }
}

impl From<StratifiedPartitioner> for Partitioner {
    fn from(p: StratifiedPartitioner) -> Self {
        Partitioner::Stratified(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gola_common::{row, DataType, Schema};

    /// `n` rows over `g` groups: group id `i % g`, skewed so group `g-1`
    /// only appears when `i % rare == 0`.
    fn grouped_table(n: usize, g: i64) -> Arc<Table> {
        let schema = Arc::new(Schema::from_pairs(&[
            ("grp", DataType::Int),
            ("x", DataType::Int),
        ]));
        Arc::new(Table::new_unchecked(
            schema,
            (0..n).map(|i| row![(i as i64) % g, i as i64]).collect(),
        ))
    }

    #[test]
    fn batches_partition_all_tuples_exactly_once() {
        let p = StratifiedPartitioner::new(grouped_table(103, 7), "grp", 10, 5).unwrap();
        let mut ids: Vec<u64> = p.iter().flat_map(|b| b.tuple_ids.clone()).collect();
        assert_eq!(ids.len(), 103);
        ids.sort_unstable();
        assert_eq!(ids, (0..103u64).collect::<Vec<_>>());
    }

    #[test]
    fn every_stratum_in_batch_zero() {
        let t = grouped_table(200, 9);
        let p = StratifiedPartitioner::new(Arc::clone(&t), "grp", 8, 3).unwrap();
        let b0 = p.batch(0);
        let groups: std::collections::HashSet<i64> = b0
            .rows()
            .iter()
            .map(|r| r.get(0).as_i64().unwrap())
            .collect();
        assert_eq!(groups.len(), 9, "batch 0 must touch all 9 strata");
    }

    #[test]
    fn rare_stratum_oversampled_and_exhausted_early() {
        // 1000 rows, one rare group of 10 rows.
        let schema = Arc::new(Schema::from_pairs(&[("grp", DataType::Int)]));
        let rows = (0..1000).map(|i| row![i64::from(i % 100 == 0)]);
        let t = Arc::new(Table::new_unchecked(schema, rows.collect()));
        let p = StratifiedPartitioner::with_floor(t, "grp", 10, 1, 5).unwrap();
        // Rare stratum (10 rows, floor 5) exhausts by batch 1.
        let (n_h, total_h) = p.stratum_rate(&Value::Int(1), 1).unwrap();
        assert_eq!(total_h, 10);
        assert_eq!(n_h, 10, "floor 5/batch drains 10 rows in two batches");
        // Uniform allocation would have seen ~2 rows by then.
        let (n0, _) = p.stratum_rate(&Value::Int(1), 0).unwrap();
        assert_eq!(n0, 5);
    }

    #[test]
    fn deterministic_under_seed_and_sensitive_to_it() {
        let t = grouped_table(150, 5);
        let a = StratifiedPartitioner::new(Arc::clone(&t), "grp", 6, 9).unwrap();
        let b = StratifiedPartitioner::new(Arc::clone(&t), "grp", 6, 9).unwrap();
        for i in 0..6 {
            assert_eq!(a.batch(i).tuple_ids, b.batch(i).tuple_ids);
        }
        let c = StratifiedPartitioner::new(t, "grp", 6, 10).unwrap();
        assert_ne!(a.batch(0).tuple_ids, c.batch(0).tuple_ids);
    }

    #[test]
    fn bounds_cover_table_and_batches_nonempty() {
        for k in [1, 2, 5, 16] {
            let p = StratifiedPartitioner::new(grouped_table(64, 13), "grp", k, 2).unwrap();
            let sizes: Vec<usize> = p.iter().map(|b| b.len()).collect();
            assert_eq!(sizes.iter().sum::<usize>(), 64);
            assert!(sizes.iter().all(|&s| s > 0), "k={k}: sizes {sizes:?}");
            assert_eq!(p.rows_seen_through(k - 1), 64);
            assert!((p.multiplicity_after(k - 1) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn config_errors_match_uniform() {
        let t = grouped_table(10, 2);
        assert!(StratifiedPartitioner::new(Arc::clone(&t), "grp", 0, 1).is_err());
        assert!(StratifiedPartitioner::new(Arc::clone(&t), "grp", 11, 1).is_err());
        assert!(StratifiedPartitioner::new(t, "nope", 2, 1).is_err());
        let empty = Arc::new(Table::empty(Arc::new(Schema::from_pairs(&[(
            "grp",
            DataType::Int,
        )]))));
        assert!(StratifiedPartitioner::new(empty, "grp", 1, 1).is_err());
    }

    #[test]
    fn partitioner_enum_delegates() {
        let t = grouped_table(60, 3);
        let u: Partitioner = MiniBatchPartitioner::new(Arc::clone(&t), 4, 1)
            .unwrap()
            .into();
        let s: Partitioner = StratifiedPartitioner::new(t, "grp", 4, 1).unwrap().into();
        assert_eq!(u.num_batches(), 4);
        assert_eq!(s.num_batches(), 4);
        assert_eq!(u.total_rows(), 60);
        assert_eq!(s.total_rows(), 60);
        assert_eq!(u.stratify_column(), None);
        assert_eq!(s.stratify_column(), Some("grp"));
        assert!(u.stratum_rate(&Value::Int(0), 0).is_none());
        assert!(s.stratum_rate(&Value::Int(0), 0).is_some());
        assert!(s.stratum_rate(&Value::Int(99), 0).is_none());
    }
}
