//! Exact batch query execution.
//!
//! [`BatchEngine`] interprets a [`gola_plan::QueryGraph`] directly over fully
//! materialized tables — no sampling, no mini-batches, no error estimation.
//! It plays two roles in the reproduction:
//!
//! * the **"traditional query engine"** baseline of the paper's Figure 3(a)
//!   (the vertical bar G-OLA's online answers are compared against), and
//! * the **ground truth** for differential testing: after the last
//!   mini-batch G-OLA must produce exactly this engine's answer.
//!
//! It is deliberately an *independent* implementation: it executes the
//! logical plan tree, not the meta-plan blocks the online executor uses, so
//! agreement between the two is meaningful evidence of correctness.

pub mod executor;

pub use executor::BatchEngine;
