//! The recursive logical-plan interpreter.

use std::sync::Arc;

use gola_common::{Error, FxHashMap, FxHashSet, Result, Row, Value};
use gola_expr::eval::{eval, eval_predicate, ExactContext, ExactResolver};
use gola_expr::{Expr, SubqueryId};
use gola_plan::{AggCall, LogicalPlan, QueryGraph, SubqueryKind};
use gola_storage::{Catalog, Table};

/// Exact, single-threaded executor over a catalog.
pub struct BatchEngine<'a> {
    catalog: &'a Catalog,
}

/// Rows pulled from base tables by `Scan` nodes (cached handle — see
/// `gola-core`'s metrics module for the pattern and the inertness
/// contract).
fn exact_rows_scanned() -> &'static gola_obs::Counter {
    static C: std::sync::OnceLock<gola_obs::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| gola_obs::counter("exact.rows_scanned"))
}

/// Materialized subquery results used to resolve `ScalarRef`/`InSubquery`
/// expressions during exact evaluation.
#[derive(Debug, Default)]
struct Resolved {
    scalars: Vec<Option<FxHashMap<Vec<Value>, Value>>>,
    members: Vec<Option<FxHashSet<Vec<Value>>>>,
}

impl ExactResolver for Resolved {
    fn scalar(&self, id: SubqueryId, key: &[Value]) -> Result<Value> {
        let map = self
            .scalars
            .get(id.0)
            .and_then(|m| m.as_ref())
            .ok_or_else(|| Error::exec(format!("unresolved scalar subquery {id}")))?;
        // A missing group behaves like an empty subquery: NULL.
        Ok(map.get(key).cloned().unwrap_or(Value::Null))
    }

    fn member(&self, id: SubqueryId, key: &[Value]) -> Result<bool> {
        let set = self
            .members
            .get(id.0)
            .and_then(|m| m.as_ref())
            .ok_or_else(|| Error::exec(format!("unresolved membership subquery {id}")))?;
        Ok(set.contains(key))
    }
}

impl<'a> BatchEngine<'a> {
    pub fn new(catalog: &'a Catalog) -> Self {
        BatchEngine { catalog }
    }

    /// Execute a full query graph: subqueries in dependency order, then the
    /// root.
    pub fn execute(&self, graph: &QueryGraph) -> Result<Table> {
        let _span = gola_obs::span!("exact.query", subqueries = graph.subqueries.len());
        let n = graph.subqueries.len();
        let mut resolved = Resolved {
            scalars: vec![None; n],
            members: vec![None; n],
        };
        for idx in subquery_topo_order(graph)? {
            let sq = &graph.subqueries[idx];
            match sq.kind {
                SubqueryKind::Scalar => {
                    let map = self.execute_scalar_subquery(&sq.plan, &resolved)?;
                    resolved.scalars[idx] = Some(map);
                }
                SubqueryKind::Membership => {
                    let rows = self.execute_plan(&sq.plan, &resolved)?;
                    let set: FxHashSet<Vec<Value>> =
                        rows.into_iter().map(|r| r.values().to_vec()).collect();
                    resolved.members[idx] = Some(set);
                }
            }
        }
        let rows = self.execute_plan(&graph.root, &resolved)?;
        Ok(Table::new_unchecked(Arc::clone(graph.root.schema()), rows))
    }

    /// Execute a scalar subquery plan into a `group key → value` map. The
    /// plan shape is `Project[expr]` over (filters over) an `Aggregate`; the
    /// group key is the first `n_group` columns of each aggregate row.
    fn execute_scalar_subquery(
        &self,
        plan: &LogicalPlan,
        resolved: &Resolved,
    ) -> Result<FxHashMap<Vec<Value>, Value>> {
        let (project_exprs, input) = match plan {
            LogicalPlan::Project { input, exprs, .. } => (exprs, input.as_ref()),
            other => {
                return Err(Error::exec(format!(
                    "scalar subquery plan must end in a projection, got {}",
                    other.explain().lines().next().unwrap_or("?")
                )))
            }
        };
        let n_group = aggregate_group_arity(input)
            .ok_or_else(|| Error::exec("scalar subquery plan has no aggregate node".to_string()))?;
        let rows = self.execute_plan(input, resolved)?;
        let mut map = FxHashMap::default();
        for row in rows {
            let ctx = ExactContext::with_resolver(&row, resolved);
            let value = eval(&project_exprs[0], &ctx)?;
            map.insert(row.values()[..n_group].to_vec(), value);
        }
        Ok(map)
    }

    /// Generic plan interpreter.
    fn execute_plan(&self, plan: &LogicalPlan, resolved: &Resolved) -> Result<Vec<Row>> {
        match plan {
            LogicalPlan::Scan { table, .. } => {
                let rows = self.catalog.get(table)?.rows();
                if gola_obs::enabled() {
                    exact_rows_scanned().add(rows.len() as u64);
                }
                Ok(rows)
            }
            LogicalPlan::Filter { input, predicate } => {
                let rows = self.execute_plan(input, resolved)?;
                let mut out = Vec::new();
                for row in rows {
                    let ctx = ExactContext::with_resolver(&row, resolved);
                    if eval_predicate(predicate, &ctx)? {
                        out.push(row);
                    }
                }
                Ok(out)
            }
            LogicalPlan::Project { input, exprs, .. } => {
                let rows = self.execute_plan(input, resolved)?;
                let mut out = Vec::with_capacity(rows.len());
                for row in rows {
                    let ctx = ExactContext::with_resolver(&row, resolved);
                    let values: Result<Vec<Value>> = exprs.iter().map(|e| eval(e, &ctx)).collect();
                    out.push(Row::new(values?));
                }
                Ok(out)
            }
            LogicalPlan::Join {
                left, right, on, ..
            } => {
                let left_rows = self.execute_plan(left, resolved)?;
                let right_rows = self.execute_plan(right, resolved)?;
                hash_join(&left_rows, &right_rows, on, resolved)
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
                ..
            } => {
                let rows = self.execute_plan(input, resolved)?;
                hash_aggregate(&rows, group_by, aggs, resolved)
            }
            LogicalPlan::Sort { input, keys } => {
                let mut rows = self.execute_plan(input, resolved)?;
                sort_rows(&mut rows, keys);
                Ok(rows)
            }
            LogicalPlan::Limit { input, n } => {
                let mut rows = self.execute_plan(input, resolved)?;
                rows.truncate(*n);
                Ok(rows)
            }
        }
    }
}

/// Stable multi-key sort honoring per-key descending flags.
pub fn sort_rows(rows: &mut [Row], keys: &[(usize, bool)]) {
    rows.sort_by(|a, b| {
        for &(idx, desc) in keys {
            let ord = a.get(idx).total_cmp(b.get(idx));
            let ord = if desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
}

fn hash_join(
    left_rows: &[Row],
    right_rows: &[Row],
    on: &[(Expr, Expr)],
    resolved: &Resolved,
) -> Result<Vec<Row>> {
    // Build on the right side (dimension side by construction).
    let mut table: FxHashMap<Vec<Value>, Vec<&Row>> = FxHashMap::default();
    for row in right_rows {
        let ctx = ExactContext::with_resolver(row, resolved);
        let key: Result<Vec<Value>> = on.iter().map(|(_, r)| eval(r, &ctx)).collect();
        let key = key?;
        if key.iter().any(Value::is_null) {
            continue; // NULL join keys never match
        }
        table.entry(key).or_default().push(row);
    }
    let mut out = Vec::new();
    for row in left_rows {
        let ctx = ExactContext::with_resolver(row, resolved);
        let key: Result<Vec<Value>> = on.iter().map(|(l, _)| eval(l, &ctx)).collect();
        let key = key?;
        if key.iter().any(Value::is_null) {
            continue;
        }
        if let Some(matches) = table.get(&key) {
            for m in matches {
                out.push(row.concat(m));
            }
        }
    }
    Ok(out)
}

fn hash_aggregate(
    rows: &[Row],
    group_by: &[Expr],
    aggs: &[AggCall],
    resolved: &Resolved,
) -> Result<Vec<Row>> {
    let mut groups: FxHashMap<Vec<Value>, Vec<gola_agg::AggState>> = FxHashMap::default();
    for row in rows {
        let ctx = ExactContext::with_resolver(row, resolved);
        let key: Result<Vec<Value>> = group_by.iter().map(|g| eval(g, &ctx)).collect();
        let key = key?;
        let states = groups
            .entry(key)
            .or_insert_with(|| aggs.iter().map(|a| a.kind.new_state()).collect());
        for (state, call) in states.iter_mut().zip(aggs) {
            let v = eval(&call.arg, &ctx)?;
            state.update(&v, 1.0);
        }
    }
    // A global aggregation over zero rows still yields one (empty) group.
    if groups.is_empty() && group_by.is_empty() {
        groups.insert(
            Vec::new(),
            aggs.iter().map(|a| a.kind.new_state()).collect(),
        );
    }
    // golint: allow(hash-order-leak) -- rows are sorted by group key via
    // sort_rows immediately below, erasing the hash iteration order
    let mut out: Vec<Row> = groups
        .into_iter()
        .map(|(key, states)| {
            let mut values = key;
            values.extend(states.iter().map(|s| s.finalize(1.0)));
            Row::new(values)
        })
        .collect();
    // Deterministic output order: sort by group key.
    let n_keys = group_by.len();
    let keys: Vec<(usize, bool)> = (0..n_keys).map(|i| (i, false)).collect();
    sort_rows(&mut out, &keys);
    Ok(out)
}

/// If `plan` is (filters over) an `Aggregate`, return its group arity.
fn aggregate_group_arity(mut plan: &LogicalPlan) -> Option<usize> {
    loop {
        match plan {
            LogicalPlan::Aggregate { group_by, .. } => return Some(group_by.len()),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => plan = input,
            _ => return None,
        }
    }
}

/// Topological order of subqueries by their cross-references.
fn subquery_topo_order(graph: &QueryGraph) -> Result<Vec<usize>> {
    let n = graph.subqueries.len();
    let mut deps: Vec<Vec<usize>> = Vec::with_capacity(n);
    for sq in &graph.subqueries {
        let mut refs = Vec::new();
        sq.plan.subquery_refs(&mut refs);
        deps.push(refs.into_iter().map(|r| r.0).collect());
    }
    let mut order = Vec::with_capacity(n);
    let mut state = vec![0u8; n]; // 0 = new, 1 = visiting, 2 = done
    fn visit(
        i: usize,
        deps: &[Vec<usize>],
        state: &mut [u8],
        order: &mut Vec<usize>,
    ) -> Result<()> {
        match state[i] {
            2 => return Ok(()),
            1 => return Err(Error::plan("cyclic subquery dependencies".to_string())),
            _ => {}
        }
        state[i] = 1;
        for &d in &deps[i] {
            visit(d, deps, state, order)?;
        }
        state[i] = 2;
        order.push(i);
        Ok(())
    }
    for i in 0..n {
        visit(i, &deps, &mut state, &mut order)?;
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gola_common::{row, DataType, Schema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let schema = Arc::new(Schema::from_pairs(&[
            ("session_id", DataType::Int),
            ("ad_id", DataType::Int),
            ("buffer_time", DataType::Float),
            ("play_time", DataType::Float),
        ]));
        // The paper's Figure 1(b)-style tiny Sessions table.
        let rows = vec![
            row![1i64, 1i64, 36.0f64, 238.0f64],
            row![2i64, 1i64, 58.0f64, 135.0f64],
            row![3i64, 2i64, 17.0f64, 617.0f64],
            row![4i64, 2i64, 56.0f64, 194.0f64],
            row![5i64, 3i64, 19.0f64, 308.0f64],
            row![6i64, 3i64, 26.0f64, 319.0f64],
        ];
        c.register("sessions", Arc::new(Table::try_new(schema, rows).unwrap()))
            .unwrap();
        let ads = Arc::new(Schema::from_pairs(&[
            ("ad_id", DataType::Int),
            ("ad_name", DataType::Str),
        ]));
        c.register(
            "ads",
            Arc::new(Table::try_new(ads, vec![row![1i64, "alpha"], row![2i64, "beta"]]).unwrap()),
        )
        .unwrap();
        c
    }

    fn run(sql: &str) -> Table {
        let cat = catalog();
        let graph = gola_sql::compile(sql, &cat).unwrap();
        BatchEngine::new(&cat).execute(&graph).unwrap()
    }

    #[test]
    fn simple_aggregate() {
        let t = run("SELECT AVG(buffer_time), COUNT(*), SUM(play_time) FROM sessions");
        let r = t.rows()[0].clone();
        assert!((r.get(0).as_f64().unwrap() - 212.0 / 6.0).abs() < 1e-9);
        assert_eq!(r.get(1), &Value::Float(6.0));
        assert_eq!(r.get(2), &Value::Float(1811.0));
    }

    #[test]
    fn sbi_query_exact() {
        // AVG(buffer_time) = 35.333…; sessions above it: 36, 58, 56 →
        // AVG(play_time) over {238, 135, 194}.
        let t = run("SELECT AVG(play_time) FROM sessions \
             WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)");
        let expected = (238.0 + 135.0 + 194.0) / 3.0;
        assert!((t.rows()[0].get(0).as_f64().unwrap() - expected).abs() < 1e-9);
    }

    #[test]
    fn correlated_subquery_exact() {
        // Per-ad average buffer_time: ad1 = 47, ad2 = 36.5, ad3 = 22.5.
        // Rows above their own ad average: s2 (58>47), s4 (56>36.5),
        // s6 (26>22.5) → AVG(play_time) over {135, 194, 319}.
        let t = run("SELECT AVG(play_time) FROM sessions s \
             WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions t \
                                  WHERE t.ad_id = s.ad_id)");
        let expected = (135.0 + 194.0 + 319.0) / 3.0;
        assert!((t.rows()[0].get(0).as_f64().unwrap() - expected).abs() < 1e-9);
    }

    #[test]
    fn group_by_with_having_and_order() {
        let t = run("SELECT ad_id, SUM(play_time) AS total FROM sessions \
             GROUP BY ad_id HAVING SUM(play_time) > 400 ORDER BY total DESC");
        // ad1: 373, ad2: 811, ad3: 627 → having > 400 keeps ad2, ad3.
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.rows()[0].get(0), &Value::Int(2));
        assert_eq!(t.rows()[0].get(1), &Value::Float(811.0));
        assert_eq!(t.rows()[1].get(0), &Value::Int(3));
    }

    #[test]
    fn membership_subquery() {
        let t = run("SELECT AVG(play_time) FROM sessions WHERE ad_id IN \
             (SELECT ad_id FROM sessions GROUP BY ad_id HAVING SUM(play_time) > 400)");
        // ads 2 and 3 qualify → rows 3..6 → AVG(617, 194, 308, 319).
        let expected = (617.0 + 194.0 + 308.0 + 319.0) / 4.0;
        assert!((t.rows()[0].get(0).as_f64().unwrap() - expected).abs() < 1e-9);
    }

    #[test]
    fn join_with_dimension() {
        let t = run("SELECT a.ad_name, COUNT(*) AS n FROM sessions s \
             JOIN ads a ON s.ad_id = a.ad_id GROUP BY a.ad_name ORDER BY a.ad_name");
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.rows()[0].get(0), &Value::str("alpha"));
        assert_eq!(t.rows()[0].get(1), &Value::Float(2.0));
        assert_eq!(t.rows()[1].get(0), &Value::str("beta"));
    }

    #[test]
    fn plain_select_with_limit() {
        let t = run("SELECT session_id FROM sessions WHERE play_time > 200 \
             ORDER BY session_id DESC LIMIT 2");
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.rows()[0].get(0), &Value::Int(6));
        assert_eq!(t.rows()[1].get(0), &Value::Int(5));
    }

    #[test]
    fn empty_result_aggregates() {
        let t = run("SELECT AVG(play_time), COUNT(*) FROM sessions WHERE play_time > 1e9");
        assert!(t.rows()[0].get(0).is_null());
        assert_eq!(t.rows()[0].get(1), &Value::Float(0.0));
    }

    #[test]
    fn two_level_nesting_executes() {
        let t = run("SELECT COUNT(*) FROM sessions WHERE buffer_time > \
             (SELECT AVG(buffer_time) FROM sessions WHERE play_time < \
              (SELECT AVG(play_time) FROM sessions))");
        // Inner: AVG(play_time) = 301.83; middle: AVG(buffer) over rows with
        // play < 301.83 → {36, 58, 56} avg = 50; outer: buffer > 50 → 2 rows.
        assert_eq!(t.rows()[0].get(0), &Value::Float(2.0));
    }

    #[test]
    fn quantile_and_stddev() {
        let t = run("SELECT MEDIAN(play_time), STDDEV(play_time) FROM sessions");
        let med = t.rows()[0].get(0).as_f64().unwrap();
        assert!(med > 194.0 && med < 319.0, "median {med}");
        assert!(t.rows()[0].get(1).as_f64().unwrap() > 0.0);
    }

    #[test]
    fn group_over_expression() {
        let t = run(
            "SELECT floor(buffer_time / 20) AS bucket, COUNT(*) FROM sessions \
             GROUP BY bucket ORDER BY bucket",
        );
        // Buckets: 36→1, 58→2, 17→0, 56→2, 19→0, 26→1.
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.rows()[0].get(1), &Value::Float(2.0));
    }
}
