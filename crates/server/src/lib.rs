//! # gola-server — the multi-tenant online-aggregation query service
//!
//! SQL in, *progressive* answers out: every mini-batch report streams to
//! the client the moment the scheduler produces it, so interactive users
//! see an estimate within one batch and watch its CI tighten — the
//! paper's interaction model lifted onto a network surface. Many clients
//! share one process through `gola_core::sched::QueryService`: fair
//! stride scheduling at batch granularity over one shared worker pool,
//! bounded admission with typed 429s, and per-session obs labels.
//!
//! Zero dependencies: hand-rolled HTTP/1.1 over `std::net` (see
//! [`http`]), deterministic report JSON (see [`json`]).
//!
//! ## Surface
//!
//! | Route | Behaviour |
//! |---|---|
//! | `POST /query` | body = SQL; streams one JSON report per line (NDJSON), or SSE frames with `Accept: text/event-stream` |
//! | `POST /jobs` | body = SQL; `202 {"job":n}`, runs detached |
//! | `GET /jobs/<n>` | poll: status + reports so far |
//! | `DELETE /jobs/<n>` | cancel |
//! | `GET /healthz` | liveness + pool/queue shape |
//! | `GET /metrics` | Prometheus export of the obs registry |
//!
//! Malformed SQL returns `400` with the engine diagnostic; a saturated
//! scheduler returns `429` with the exact admission numbers. Report
//! frames carry no wall-clock fields, so streams are byte-deterministic
//! (`tests/http_surface.rs` pins SSE byte for byte).

pub mod http;
pub mod json;

use std::collections::BTreeMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use gola_core::sched::{AdmissionError, QueryHandle, QueryService, ServiceConfig, SubmitError};
use gola_storage::Catalog;

use http::{read_request, HttpError, Request, Response};

/// Server configuration: the service sizing plus the listen address.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind; port 0 picks a free port (tests).
    pub addr: SocketAddr,
    pub service: ServiceConfig,
    /// Hard cap on concurrently open connections. The accept loop fails
    /// closed at the cap — `503` + `Retry-After` on the accepting thread,
    /// no handler spawned — so a socket flood can no longer exhaust OS
    /// threads before scheduler admission ever sees a request.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            service: ServiceConfig::default(),
            max_connections: 64,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobStatus {
    Running,
    Done,
    Failed,
    Canceled,
}

struct JobState {
    status: JobStatus,
    /// Rendered report frames, in order.
    frames: Vec<String>,
    error: Option<String>,
    handle: Option<QueryHandle>,
}

#[derive(Default)]
struct Jobs {
    next: AtomicU64,
    table: Mutex<BTreeMap<u64, JobState>>,
}

/// A running server. Dropping it stops the accept loop and shuts the
/// scheduler down.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

struct Shared {
    service: QueryService,
    jobs: Jobs,
    threads: usize,
    /// The served catalog (shares `Arc`s — including live streams — with
    /// the scheduler's copy), so `POST /append/<table>` feeds running
    /// growing queries.
    catalog: Catalog,
    /// Open connections, counted by the accept loop.
    active_connections: Arc<AtomicUsize>,
    max_connections: usize,
}

impl Server {
    /// Bind and start serving `catalog` in background threads.
    pub fn start(catalog: Catalog, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(config.addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(Shared {
            threads: config.service.threads,
            service: QueryService::new(catalog.clone(), config.service),
            jobs: Jobs::default(),
            catalog,
            active_connections: Arc::new(AtomicUsize::new(0)),
            max_connections: config.max_connections.max(1),
        });
        let accept_stop = Arc::clone(&stop);
        let accept = std::thread::Builder::new()
            .name("gola-accept".into())
            .spawn(move || accept_loop(listener, shared, accept_stop))
            .ok();
        Ok(Server { addr, stop, accept })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

/// Decrements the live-connection count when a handler thread exits, on
/// every path (including panics inside a handler).
struct ConnGuard(Arc<AtomicUsize>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, stop: Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(mut stream) = stream else { continue };
        // Bounded acceptor: at the cap, fail closed on the accepting
        // thread itself — a 503 with Retry-After and no spawned handler —
        // so connection floods cost this process one write, not a thread.
        let active = Arc::clone(&shared.active_connections);
        if active.fetch_add(1, Ordering::SeqCst) >= shared.max_connections {
            active.fetch_sub(1, Ordering::SeqCst);
            let body = json::error_json(
                "connection limit reached",
                &[("max_connections", shared.max_connections as u64)],
            );
            let _ = Response::new(&mut stream).send_with_headers(
                503,
                "application/json",
                &[("retry-after", "1")],
                body.as_bytes(),
            );
            drain_then_close(&stream);
            continue;
        }
        let shared = Arc::clone(&shared);
        let guard = ConnGuard(active);
        // A refused spawn drops the closure — and with it the guard — so
        // the count comes back down on that path too.
        let _ = std::thread::Builder::new()
            .name("gola-conn".into())
            .spawn(move || {
                let _guard = guard;
                handle_connection(stream, &shared);
            });
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let request = match read_request(&mut stream) {
        Ok(r) => r,
        Err(e) => {
            let status = match e {
                HttpError::TooLarge(_) => 413,
                _ => 400,
            };
            let body = json::error_json(&e.to_string(), &[]);
            let _ = Response::new(&mut stream).send(status, "application/json", body.as_bytes());
            drain_then_close(&stream);
            return;
        }
    };
    if let Err(e) = route(&request, &mut stream, shared) {
        // Best effort: the head may already be on the wire.
        let body = json::error_json(&format!("internal error: {e}"), &[]);
        let _ = Response::new(&mut stream).send(500, "application/json", body.as_bytes());
    }
}

/// Gracefully end a connection whose request was rejected before its body
/// was consumed: closing with unread input would RST the client and eat
/// the diagnostic we just sent. Half-close, then drain (bounded by a read
/// timeout) until the client hangs up.
fn drain_then_close(stream: &TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(2)));
    let mut buf = [0u8; 8192];
    let mut reader = stream;
    while let Ok(n) = std::io::Read::read(&mut reader, &mut buf) {
        if n == 0 {
            return;
        }
    }
}

fn route(req: &Request, stream: &mut TcpStream, shared: &Shared) -> std::io::Result<()> {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/query") => query(req, stream, shared),
        ("POST", "/jobs") => submit_job(req, stream, shared),
        ("GET", "/healthz") => healthz(stream, shared),
        ("GET", "/metrics") => metrics(stream),
        ("GET", path) if path.starts_with("/jobs/") => poll_job(path, stream, shared),
        ("DELETE", path) if path.starts_with("/jobs/") => cancel_job(path, stream, shared),
        ("POST", path) if path.starts_with("/append/") => append_rows(req, path, stream, shared),
        (_, "/query" | "/jobs" | "/healthz" | "/metrics") => {
            let body = json::error_json("method not allowed", &[]);
            Response::new(stream).send(405, "application/json", body.as_bytes())
        }
        _ => {
            let body = json::error_json("no such route", &[]);
            Response::new(stream).send(404, "application/json", body.as_bytes())
        }
    }
}

/// Map a submit failure to its HTTP response.
fn submit_failure(e: SubmitError, stream: &mut TcpStream) -> std::io::Result<()> {
    match e {
        SubmitError::Compile(diag) => {
            let body = json::error_json(&diag.to_string(), &[]);
            Response::new(stream).send(400, "application/json", body.as_bytes())
        }
        SubmitError::Admission(a) => {
            let extra: Vec<(&str, u64)> = match &a {
                AdmissionError::Saturated {
                    active,
                    queued,
                    max_active,
                    queue_capacity,
                } => vec![
                    ("active", *active as u64),
                    ("queued", *queued as u64),
                    ("max_active", *max_active as u64),
                    ("queue_capacity", *queue_capacity as u64),
                ],
                AdmissionError::DuplicateSession { id } => vec![("session", *id)],
            };
            let body = json::error_json(&a.to_string(), &extra);
            Response::new(stream).send(429, "application/json", body.as_bytes())
        }
        SubmitError::Shutdown => {
            let body = json::error_json("service is shutting down", &[]);
            Response::new(stream).send(500, "application/json", body.as_bytes())
        }
    }
}

/// `POST /query` — submit and stream every report progressively.
fn query(req: &Request, stream: &mut TcpStream, shared: &Shared) -> std::io::Result<()> {
    let sql = match req.body_utf8() {
        Ok(s) if !s.trim().is_empty() => s.trim().to_string(),
        Ok(_) => {
            let body = json::error_json("empty query body", &[]);
            return Response::new(stream).send(400, "application/json", body.as_bytes());
        }
        Err(e) => {
            let body = json::error_json(&e.to_string(), &[]);
            return Response::new(stream).send(400, "application/json", body.as_bytes());
        }
    };
    let handle = match shared.service.submit(&sql) {
        Ok(h) => h,
        Err(e) => return submit_failure(e, stream),
    };
    let sse = req.wants_sse();
    let content_type = if sse {
        "text/event-stream"
    } else {
        "application/x-ndjson"
    };
    let mut body = Response::new(stream).stream(200, content_type)?;
    let mut batches = 0usize;
    for report in handle {
        let frame = match report {
            Ok(report) => {
                batches += 1;
                let line = json::report_json(&report);
                if sse {
                    format!("event: report\ndata: {line}\n\n")
                } else {
                    format!("{line}\n")
                }
            }
            Err(e) => {
                let line = json::error_json(&e.to_string(), &[]);
                if sse {
                    format!("event: error\ndata: {line}\n\n")
                } else {
                    format!("{line}\n")
                }
            }
        };
        if body.chunk(frame.as_bytes()).is_err() {
            // Client hung up; the dropped handle cancels the session.
            return Ok(());
        }
    }
    if sse {
        body.chunk(format!("event: done\ndata: {{\"batches\":{batches}}}\n\n").as_bytes())?;
    }
    body.finish()
}

/// `POST /jobs` — submit detached; a drainer thread accumulates frames.
fn submit_job(req: &Request, stream: &mut TcpStream, shared: &Shared) -> std::io::Result<()> {
    let sql = match req.body_utf8() {
        Ok(s) if !s.trim().is_empty() => s.trim().to_string(),
        _ => {
            let body = json::error_json("empty query body", &[]);
            return Response::new(stream).send(400, "application/json", body.as_bytes());
        }
    };
    let handle = match shared.service.submit(&sql) {
        Ok(h) => h,
        Err(e) => return submit_failure(e, stream),
    };
    let id = shared.jobs.next.fetch_add(1, Ordering::Relaxed);
    if let Ok(mut table) = shared.jobs.table.lock() {
        table.insert(
            id,
            JobState {
                status: JobStatus::Running,
                frames: Vec::new(),
                error: None,
                handle: Some(handle),
            },
        );
    }
    // No drainer thread: the scheduler pushes reports into the handle's
    // channel on its own; polls pull whatever is ready (`drain_ready`).
    let body = format!("{{\"job\":{id}}}");
    Response::new(stream).send(202, "application/json", body.as_bytes())
}

/// `POST /append/<table>` — append CSV rows (with header) to a
/// stream-backed table and seal them into a segment, so running growing
/// queries pick the new data up as extra mini-batches. Returns the
/// stream's new watermark.
fn append_rows(
    req: &Request,
    path: &str,
    stream: &mut TcpStream,
    shared: &Shared,
) -> std::io::Result<()> {
    let name = path.trim_start_matches("/append/").to_ascii_lowercase();
    let Some(live) = shared.catalog.stream(&name) else {
        let body = json::error_json("no stream-backed table with that name", &[]);
        return Response::new(stream).send(404, "application/json", body.as_bytes());
    };
    let parsed = req
        .body_utf8()
        .map_err(|e| e.to_string())
        .and_then(|text| {
            gola_storage::csv::read_csv(Arc::clone(live.schema()), text.as_bytes())
                .map_err(|e| e.to_string())
        })
        .and_then(|table| {
            live.append_rows(&table.rows())
                .and_then(|()| live.seal())
                .map_err(|e| e.to_string())
        });
    match parsed {
        Ok(sealed) => {
            let body = format!(
                "{{\"table\":{},\"appended\":{sealed},\"watermark\":{},\"segments\":{}}}",
                json::str_lit(&name),
                live.watermark(),
                live.num_segments(),
            );
            Response::new(stream).send(200, "application/json", body.as_bytes())
        }
        Err(e) => {
            let body = json::error_json(&e, &[]);
            Response::new(stream).send(400, "application/json", body.as_bytes())
        }
    }
}

fn healthz(stream: &mut TcpStream, shared: &Shared) -> std::io::Result<()> {
    let body = format!(
        "{{\"status\":\"ok\",\"pool_threads\":{}}}",
        shared.threads.max(1)
    );
    Response::new(stream).send(200, "application/json", body.as_bytes())
}

fn metrics(stream: &mut TcpStream) -> std::io::Result<()> {
    let body = if gola_obs::enabled() {
        gola_obs::prometheus(false)
    } else {
        "# metrics registry disabled (start with observability enabled)\n".to_string()
    };
    Response::new(stream).send(200, "text/plain; version=0.0.4", body.as_bytes())
}

fn job_id(path: &str) -> Option<u64> {
    path.strip_prefix("/jobs/")?.parse().ok()
}

fn poll_job(path: &str, stream: &mut TcpStream, shared: &Shared) -> std::io::Result<()> {
    let Some(id) = job_id(path) else {
        let body = json::error_json("bad job id", &[]);
        return Response::new(stream).send(400, "application/json", body.as_bytes());
    };
    let Ok(mut table) = shared.jobs.table.lock() else {
        let body = json::error_json("job table poisoned", &[]);
        return Response::new(stream).send(500, "application/json", body.as_bytes());
    };
    let Some(job) = table.get_mut(&id) else {
        let body = json::error_json("no such job", &[]);
        return Response::new(stream).send(404, "application/json", body.as_bytes());
    };
    drain_ready(job);
    let status = match job.status {
        JobStatus::Running => "running",
        JobStatus::Done => "done",
        JobStatus::Failed => "failed",
        JobStatus::Canceled => "canceled",
    };
    let mut body = format!("{{\"job\":{id},\"status\":\"{status}\",\"reports\":[");
    for (i, frame) in job.frames.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(frame);
    }
    body.push(']');
    if let Some(e) = &job.error {
        body.push_str(",\"error\":");
        body.push_str(&json::str_lit(e));
    }
    body.push('}');
    Response::new(stream).send(200, "application/json", body.as_bytes())
}

/// Pull every report the scheduler has already produced (non-blocking) so
/// polls observe progressive refinement without a drainer thread.
fn drain_ready(job: &mut JobState) {
    let Some(handle) = &job.handle else { return };
    loop {
        match handle.try_recv() {
            Ok(Ok(report)) => job.frames.push(json::report_json(&report)),
            Ok(Err(e)) => {
                job.error = Some(e.to_string());
                job.status = JobStatus::Failed;
                job.handle = None;
                return;
            }
            Err(std::sync::mpsc::TryRecvError::Empty) => return,
            Err(std::sync::mpsc::TryRecvError::Disconnected) => {
                if job.status == JobStatus::Running {
                    job.status = JobStatus::Done;
                }
                job.handle = None;
                return;
            }
        }
    }
}

fn cancel_job(path: &str, stream: &mut TcpStream, shared: &Shared) -> std::io::Result<()> {
    let Some(id) = job_id(path) else {
        let body = json::error_json("bad job id", &[]);
        return Response::new(stream).send(400, "application/json", body.as_bytes());
    };
    let Ok(mut table) = shared.jobs.table.lock() else {
        let body = json::error_json("job table poisoned", &[]);
        return Response::new(stream).send(500, "application/json", body.as_bytes());
    };
    let Some(job) = table.get_mut(&id) else {
        let body = json::error_json("no such job", &[]);
        return Response::new(stream).send(404, "application/json", body.as_bytes());
    };
    drain_ready(job);
    if let Some(handle) = job.handle.take() {
        handle.cancel();
        job.status = JobStatus::Canceled;
    }
    let body = format!("{{\"job\":{id},\"status\":\"canceled\"}}");
    Response::new(stream).send(200, "application/json", body.as_bytes())
}

/// Blocking helper for clients/tests: POST `sql` to a running server and
/// collect the raw response (head + body) as bytes.
pub fn raw_request(addr: SocketAddr, request: &[u8]) -> std::io::Result<Vec<u8>> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(request)?;
    let mut out = Vec::new();
    std::io::Read::read_to_end(&mut stream, &mut out)?;
    Ok(out)
}
