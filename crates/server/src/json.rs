//! Deterministic JSON rendering of [`BatchReport`]s.
//!
//! The wire format deliberately carries **no wall-clock fields** — no
//! batch/cumulative times, no stage timings. Everything serialized here is
//! bit-deterministic under the engine's threads=1/N contract, so two runs
//! of the same query produce byte-identical frames: the HTTP golden tests
//! pin SSE streams byte for byte, and the conformance service leg can
//! diff whole streams textually. Clients that want timings read
//! `/metrics` (explicitly nondeterministic) instead.
//!
//! Floats use Rust's shortest-roundtrip `Display`; non-finite values
//! (possible in degenerate estimates) render as `null` to stay valid
//! JSON.

use gola_common::Value;
use gola_core::{BatchReport, ContractStop};

/// Append a JSON string literal.
fn push_str_lit(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a float, `null` when non-finite.
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Shortest roundtrip repr, but keep it recognizably a float.
        let s = format!("{v}");
        out.push_str(&s);
        if !s.contains('.') && !s.contains('e') {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn push_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => push_f64(out, *f),
        Value::Str(s) => push_str_lit(out, s),
    }
}

/// One report as a single-line JSON object (the NDJSON frame; SSE wraps
/// the same line in an event envelope).
pub fn report_json(report: &BatchReport) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("{\"batch\":");
    out.push_str(&report.batch_index.to_string());
    out.push_str(",\"num_batches\":");
    out.push_str(&report.num_batches.to_string());
    out.push_str(",\"rows_seen\":");
    out.push_str(&report.rows_seen.to_string());
    out.push_str(",\"total_rows\":");
    out.push_str(&report.total_rows.to_string());
    out.push_str(",\"columns\":[");
    for (i, field) in report.table.schema().fields().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str_lit(&mut out, &field.name);
    }
    out.push_str("],\"rows\":[");
    for (i, row) in report.table.rows().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, value) in row.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            push_value(&mut out, value);
        }
        out.push(']');
    }
    out.push_str("],\"row_certain\":[");
    for (i, certain) in report.row_certain.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(if *certain { "true" } else { "false" });
    }
    out.push_str("],\"estimates\":[");
    for (i, cell) in report.estimates.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"row\":");
        out.push_str(&cell.row.to_string());
        out.push_str(",\"col\":");
        out.push_str(&cell.col.to_string());
        out.push_str(",\"value\":");
        push_f64(&mut out, cell.estimate.value);
        match cell.estimate.ci_percentile(report.ci_level) {
            Some(ci) => {
                out.push_str(",\"ci\":{\"lo\":");
                push_f64(&mut out, ci.lo);
                out.push_str(",\"hi\":");
                push_f64(&mut out, ci.hi);
                out.push_str(",\"level\":");
                push_f64(&mut out, ci.level);
                out.push('}');
            }
            None => out.push_str(",\"ci\":null"),
        }
        out.push('}');
    }
    out.push_str("],\"uncertain_tuples\":");
    out.push_str(&report.uncertain_tuples.to_string());
    out.push_str(",\"recomputations\":");
    out.push_str(&report.recomputations.to_string());
    out.push_str(",\"contract\":");
    match &report.contract {
        None => out.push_str("null"),
        Some(progress) => {
            match progress.contract {
                gola_core::QueryContract::Error { target, confidence } => {
                    out.push_str("{\"type\":\"error\",\"target\":");
                    push_f64(&mut out, target);
                    out.push_str(",\"confidence\":");
                    push_f64(&mut out, confidence);
                }
                gola_core::QueryContract::Within { seconds } => {
                    out.push_str("{\"type\":\"within\",\"seconds\":");
                    push_f64(&mut out, seconds);
                }
            }
            out.push_str(",\"achieved_rel_error\":");
            match progress.achieved_rel_error {
                Some(a) => push_f64(&mut out, a),
                None => out.push_str("null"),
            }
            out.push_str(",\"stop\":");
            match progress.stop {
                None => out.push_str("null"),
                Some(ContractStop::ErrorTargetMet) => out.push_str("\"error_target_met\""),
                Some(ContractStop::DeadlineReached) => out.push_str("\"deadline_reached\""),
                Some(ContractStop::Exhausted) => out.push_str("\"exhausted\""),
            }
            out.push('}');
        }
    }
    out.push('}');
    out
}

/// A standalone JSON string literal (escaped and quoted).
pub fn str_lit(s: &str) -> String {
    let mut out = String::new();
    push_str_lit(&mut out, s);
    out
}

/// A diagnostic payload: `{"error": "..."}` plus optional extra numeric
/// fields (admission telemetry).
pub fn error_json(message: &str, extra: &[(&str, u64)]) -> String {
    let mut out = String::from("{\"error\":");
    push_str_lit(&mut out, message);
    for (key, value) in extra {
        out.push(',');
        push_str_lit(&mut out, key);
        out.push(':');
        out.push_str(&value.to_string());
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_escaping() {
        let mut out = String::new();
        push_str_lit(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn floats_render_roundtrip_and_nonfinite_as_null() {
        let mut out = String::new();
        push_f64(&mut out, 1.5);
        out.push(',');
        push_f64(&mut out, 3.0);
        out.push(',');
        push_f64(&mut out, f64::NAN);
        assert_eq!(out, "1.5,3.0,null");
    }

    #[test]
    fn error_json_shape() {
        assert_eq!(
            error_json("nope", &[("active", 2)]),
            "{\"error\":\"nope\",\"active\":2}"
        );
    }
}
