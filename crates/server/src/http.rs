//! A minimal HTTP/1.1 layer over `std::net` — just enough surface for the
//! query service, with zero dependencies.
//!
//! Scope (deliberate):
//! * one request per connection (`Connection: close` on every response),
//! * `Content-Length` bodies only (no inbound chunked decoding),
//! * hard size limits on head and body (the server fails closed on
//!   oversized or malformed input — it never panics on hostile bytes),
//! * outbound `Transfer-Encoding: chunked` for streaming responses, one
//!   chunk per report so clients see progressive answers as they happen.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request line + headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body (SQL text).
pub const MAX_BODY_BYTES: usize = 256 * 1024;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    /// Header names lowercased; last occurrence wins.
    headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .rev()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// `true` when the client asked for Server-Sent Events.
    pub fn wants_sse(&self) -> bool {
        self.header("accept")
            .is_some_and(|a| a.contains("text/event-stream"))
    }

    pub fn body_utf8(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body).map_err(|_| HttpError::Malformed("body is not UTF-8"))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Protocol violation; carries a static diagnostic.
    Malformed(&'static str),
    /// Head or body over the hard limit.
    TooLarge(&'static str),
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::TooLarge(what) => write!(f, "request too large: {what}"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Read one request off the stream.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    let mut head = Vec::new();
    // Read the head byte-wise up to the blank line, bounded.
    loop {
        let mut line = Vec::new();
        let n = reader
            .by_ref()
            .take((MAX_HEAD_BYTES - head.len()) as u64)
            .read_until(b'\n', &mut line)
            .map_err(HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-head"));
        }
        let blank = line == b"\r\n" || line == b"\n";
        head.extend_from_slice(&line);
        if head.len() >= MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge("head"));
        }
        if blank {
            break;
        }
    }
    let head = std::str::from_utf8(&head).map_err(|_| HttpError::Malformed("head not UTF-8"))?;
    let mut lines = head.lines();
    let request_line = lines.next().ok_or(HttpError::Malformed("empty head"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or(HttpError::Malformed("missing method"))?
        .to_string();
    let path = parts
        .next()
        .ok_or(HttpError::Malformed("missing path"))?
        .to_string();
    let version = parts
        .next()
        .ok_or(HttpError::Malformed("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("unsupported HTTP version"));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed("header without colon"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .rev()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse::<usize>())
        .transpose()
        .map_err(|_| HttpError::Malformed("bad content-length"))?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge("body"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(HttpError::Io)?;

    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// Writes one response. Either a fixed body ([`Response::send`]) or a
/// chunked stream ([`Response::stream`] + [`ChunkedBody`]).
pub struct Response<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> Response<'a> {
    pub fn new(stream: &'a mut TcpStream) -> Response<'a> {
        Response { stream }
    }

    /// Send a complete response with a `Content-Length` body.
    pub fn send(self, status: u16, content_type: &str, body: &[u8]) -> std::io::Result<()> {
        self.send_with_headers(status, content_type, &[], body)
    }

    /// [`Response::send`] plus extra response headers (e.g. `Retry-After`
    /// on a 503). Header names/values must be pre-sanitized; callers pass
    /// literals.
    pub fn send_with_headers(
        self,
        status: u16,
        content_type: &str,
        extra: &[(&str, &str)],
        body: &[u8],
    ) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\n\
             content-length: {}\r\nconnection: close\r\n",
            reason(status),
            body.len(),
        );
        for (name, value) in extra {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.stream.flush()
    }

    /// Start a chunked streaming response; each [`ChunkedBody::chunk`] is
    /// flushed immediately so the client sees answers progressively.
    pub fn stream(self, status: u16, content_type: &str) -> std::io::Result<ChunkedBody<'a>> {
        let head = format!(
            "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\n\
             transfer-encoding: chunked\r\nconnection: close\r\n\r\n",
            reason(status),
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.flush()?;
        Ok(ChunkedBody {
            stream: self.stream,
        })
    }
}

/// An in-flight chunked body.
pub struct ChunkedBody<'a> {
    stream: &'a mut TcpStream,
}

impl ChunkedBody<'_> {
    pub fn chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(()); // an empty chunk would terminate the stream
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminate the stream (the zero-length chunk).
    pub fn finish(self) -> std::io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}
