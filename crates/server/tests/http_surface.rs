//! Golden tests of the HTTP surface, over real loopback sockets.
//!
//! Report frames carry no wall-clock fields and the engine is
//! bit-deterministic, so whole streams are compared **byte for byte**
//! against expectations derived from a solo single-threaded run of the
//! same query — the strongest possible pin on the wire format.

use std::sync::Arc;

use gola_core::sched::ServiceConfig;
use gola_core::{OnlineConfig, OnlineSession};
use gola_server::{json, raw_request, Server, ServerConfig};
use gola_storage::Catalog;
use gola_workloads::{conviva, ConvivaGenerator};

const ROWS: usize = 3000;
const BATCHES: usize = 5;

fn catalog() -> Catalog {
    let mut catalog = Catalog::new();
    catalog
        .register(
            "sessions",
            Arc::new(ConvivaGenerator::default().generate(ROWS)),
        )
        .expect("register table");
    catalog
}

fn base_config() -> OnlineConfig {
    OnlineConfig::for_tests(BATCHES).with_trials(8)
}

fn start_server(max_active: usize, queue: usize, threads: usize) -> Server {
    Server::start(
        catalog(),
        ServerConfig {
            service: ServiceConfig {
                max_active,
                queue_capacity: queue,
                threads,
                base: base_config(),
            },
            ..ServerConfig::default()
        },
    )
    .expect("server binds")
}

/// The solo reference frames for `sql`: one JSON line per report, from a
/// plain single-threaded session.
fn solo_frames(sql: &str) -> Vec<String> {
    let session = OnlineSession::new(catalog(), base_config().with_threads(1));
    session
        .execute_online(sql)
        .expect("query compiles")
        .map(|r| json::report_json(&r.expect("batch succeeds")))
        .collect()
}

/// Issue one request; returns `(status, headers, body)` with any chunked
/// transfer encoding decoded.
fn call(server: &Server, request: String) -> (u16, String, Vec<u8>) {
    let raw = raw_request(server.addr(), request.as_bytes()).expect("request round-trips");
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a head");
    let head = String::from_utf8(raw[..split].to_vec()).expect("head is UTF-8");
    let mut body = raw[split + 4..].to_vec();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    if head
        .to_ascii_lowercase()
        .contains("transfer-encoding: chunked")
    {
        body = dechunk(&body);
    }
    (status, head, body)
}

fn dechunk(mut body: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    loop {
        let line_end = body
            .windows(2)
            .position(|w| w == b"\r\n")
            .expect("chunk size line");
        let size = usize::from_str_radix(
            std::str::from_utf8(&body[..line_end]).expect("chunk size UTF-8"),
            16,
        )
        .expect("chunk size hex");
        body = &body[line_end + 2..];
        if size == 0 {
            return out;
        }
        out.extend_from_slice(&body[..size]);
        body = &body[size + 2..];
    }
}

fn post(path: &str, body: &str, accept: Option<&str>) -> String {
    let accept = accept.map_or(String::new(), |a| format!("accept: {a}\r\n"));
    format!(
        "POST {path} HTTP/1.1\r\nhost: localhost\r\n{accept}content-length: {}\r\n\r\n{body}",
        body.len()
    )
}

fn get(path: &str) -> String {
    format!("GET {path} HTTP/1.1\r\nhost: localhost\r\n\r\n")
}

fn delete(path: &str) -> String {
    format!("DELETE {path} HTTP/1.1\r\nhost: localhost\r\n\r\n")
}

#[test]
fn query_streams_ndjson_identical_to_solo_run() {
    let server = start_server(2, 2, 2);
    let (status, head, body) = call(&server, post("/query", conviva::SBI, None));
    assert_eq!(status, 200, "head: {head}");
    assert!(
        head.to_ascii_lowercase().contains("application/x-ndjson"),
        "head: {head}"
    );
    let body = String::from_utf8(body).expect("NDJSON is UTF-8");
    let got: Vec<&str> = body.lines().collect();
    let want = solo_frames(conviva::SBI);
    assert_eq!(got.len(), want.len(), "stream length\n{body}");
    for (g, w) in got.iter().zip(&want) {
        assert_eq!(*g, w.as_str(), "frame must match solo run byte for byte");
    }
}

#[test]
fn query_streams_sse_pinned_byte_for_byte() {
    let server = start_server(2, 2, 1);
    let (status, head, body) = call(
        &server,
        post("/query", conviva::SBI, Some("text/event-stream")),
    );
    assert_eq!(status, 200, "head: {head}");
    assert!(
        head.to_ascii_lowercase().contains("text/event-stream"),
        "head: {head}"
    );
    // Reconstruct the exact expected SSE payload from the solo run.
    let mut want = String::new();
    let frames = solo_frames(conviva::SBI);
    for frame in &frames {
        want.push_str(&format!("event: report\ndata: {frame}\n\n"));
    }
    want.push_str(&format!("event: done\ndata: {{\"batches\":{BATCHES}}}\n\n"));
    assert_eq!(
        String::from_utf8(body).expect("SSE is UTF-8"),
        want,
        "SSE stream must be byte-identical to the solo-derived golden"
    );
    // And the first frame starts exactly as pinned.
    assert!(frames[0].starts_with("{\"batch\":0,\"num_batches\":5,"));
}

#[test]
fn malformed_sql_returns_diagnostic_payload() {
    let server = start_server(2, 2, 1);
    let (status, _, body) = call(&server, post("/query", "SELEKT wat FROM", None));
    assert_eq!(status, 400);
    let body = String::from_utf8(body).expect("diagnostic is UTF-8");
    assert!(body.starts_with("{\"error\":\""), "body: {body}");
    // The engine diagnostic must survive to the client.
    assert!(body.contains("expected SELECT"), "body: {body}");

    let (status, _, body) = call(&server, post("/query", "", None));
    assert_eq!(status, 400);
    assert!(String::from_utf8(body)
        .expect("UTF-8")
        .contains("empty query body"),);
}

#[test]
fn unknown_routes_and_methods_are_typed() {
    let server = start_server(2, 2, 1);
    let (status, _, _) = call(&server, get("/nope"));
    assert_eq!(status, 404);
    let (status, _, _) = call(&server, get("/query"));
    assert_eq!(status, 405);
    let (status, _, body) = call(&server, get("/healthz"));
    assert_eq!(status, 200);
    assert_eq!(
        String::from_utf8(body).expect("UTF-8"),
        "{\"status\":\"ok\",\"pool_threads\":1}"
    );
}

#[test]
fn job_submit_poll_cancel_lifecycle() {
    let server = start_server(2, 2, 1);
    // Submit: the job id is deterministic (first job on this server).
    let (status, _, body) = call(&server, post("/jobs", conviva::SBI, None));
    assert_eq!(status, 202);
    assert_eq!(String::from_utf8(body).expect("UTF-8"), "{\"job\":0}");

    // Poll until done; frames must equal the solo-run stream.
    let want = solo_frames(conviva::SBI);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let final_body = loop {
        let (status, _, body) = call(&server, get("/jobs/0"));
        assert_eq!(status, 200);
        let body = String::from_utf8(body).expect("UTF-8");
        if body.contains("\"status\":\"done\"") {
            break body;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "job did not finish: {body}"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    };
    let mut expected = String::from("{\"job\":0,\"status\":\"done\",\"reports\":[");
    expected.push_str(&want.join(","));
    expected.push_str("]}");
    assert_eq!(final_body, expected, "poll payload is solo-derived golden");

    // Cancel a fresh job; the slot frees (a follow-up query still runs).
    let (status, _, body) = call(&server, post("/jobs", conviva::C1, None));
    assert_eq!(status, 202);
    assert_eq!(String::from_utf8(body).expect("UTF-8"), "{\"job\":1}");
    let (status, _, body) = call(&server, delete("/jobs/1"));
    assert_eq!(status, 200);
    assert_eq!(
        String::from_utf8(body).expect("UTF-8"),
        "{\"job\":1,\"status\":\"canceled\"}"
    );
    let (status, _, body) = call(&server, get("/jobs/1"));
    assert_eq!(status, 200);
    assert!(String::from_utf8(body)
        .expect("UTF-8")
        .contains("\"status\":\"canceled\""),);

    // Unknown job id.
    let (status, _, _) = call(&server, get("/jobs/999"));
    assert_eq!(status, 404);
}

#[test]
fn saturated_scheduler_returns_typed_429() {
    // Capacity: one active, zero queued. Burst-submit detached jobs; with
    // only one slot, at least one of the three must bounce with the exact
    // admission payload (the first is still streaming batches).
    let server = start_server(1, 0, 1);
    let mut saw_429 = None;
    for _ in 0..3 {
        let (status, _, body) = call(&server, post("/jobs", conviva::SBI, None));
        if status == 429 {
            saw_429 = Some(String::from_utf8(body).expect("UTF-8"));
            break;
        }
        assert_eq!(status, 202);
    }
    let body = saw_429.expect("burst must saturate a 1-slot scheduler");
    assert!(body.contains("\"error\":\"scheduler saturated"), "{body}");
    assert!(
        body.contains("\"active\":1,\"queued\":0,\"max_active\":1,\"queue_capacity\":0"),
        "{body}"
    );
}

#[test]
fn connection_cap_fails_closed_with_503_and_recovers() {
    // Two connection slots. Hold both open with idle sockets (their
    // handlers block reading a request that never arrives), then a real
    // request must bounce on the accept thread: 503 + Retry-After.
    let server = Server::start(
        catalog(),
        ServerConfig {
            service: ServiceConfig {
                max_active: 2,
                queue_capacity: 2,
                threads: 1,
                base: base_config(),
            },
            max_connections: 2,
            ..ServerConfig::default()
        },
    )
    .expect("server binds");
    let holders: Vec<std::net::TcpStream> = (0..2)
        .map(|_| std::net::TcpStream::connect(server.addr()).expect("holder connects"))
        .collect();
    // The holders are accepted asynchronously; poll until the cap bites.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let rejected = loop {
        let (status, head, body) = call(&server, get("/healthz"));
        if status == 503 {
            break (head, String::from_utf8(body).expect("UTF-8"));
        }
        assert_eq!(status, 200, "below the cap the server must still serve");
        assert!(
            std::time::Instant::now() < deadline,
            "cap never engaged with {} held connections",
            holders.len()
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    };
    let (head, body) = rejected;
    assert!(
        head.to_ascii_lowercase().contains("retry-after: 1"),
        "503 must carry Retry-After, head: {head}"
    );
    assert!(
        body.contains("\"error\":\"connection limit reached\""),
        "{body}"
    );
    assert!(body.contains("\"max_connections\":2"), "{body}");
    // Release the slots; the server must recover without restart.
    drop(holders);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let (status, _, _) = call(&server, get("/healthz"));
        if status == 200 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "server did not recover after holders closed"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
}

#[test]
fn append_route_feeds_stream_backed_tables() {
    use gola_common::{DataType, Schema};
    use gola_storage::StreamTable;

    let schema = Arc::new(Schema::from_pairs(&[
        ("city", DataType::Str),
        ("ms", DataType::Int),
    ]));
    let stream = StreamTable::new(Arc::clone(&schema));
    stream
        .append_rows(&[
            gola_common::row!["sfo", 10i64],
            gola_common::row!["nyc", 20i64],
        ])
        .expect("seed rows");
    stream.seal().expect("seed segment");

    let mut catalog = Catalog::new();
    catalog
        .register_stream("events", Arc::clone(&stream))
        .expect("register stream");
    let server = Server::start(
        catalog,
        ServerConfig {
            service: ServiceConfig {
                max_active: 2,
                queue_capacity: 2,
                threads: 1,
                base: base_config(),
            },
            ..ServerConfig::default()
        },
    )
    .expect("server binds");

    // A CSV append lands as one sealed segment; the response reports the
    // moved watermark, and the served stream (shared Arc) sees it too.
    let csv = "city,ms\nlhr,30\ncdg,40\nfra,\n";
    let (status, _, body) = call(&server, post("/append/events", csv, None));
    assert_eq!(status, 200);
    assert_eq!(
        String::from_utf8(body).expect("UTF-8"),
        "{\"table\":\"events\",\"appended\":3,\"watermark\":5,\"segments\":2}"
    );
    assert_eq!(stream.watermark(), 5);
    assert_eq!(stream.num_segments(), 2);

    // Unknown stream → 404; a static table is not appendable either.
    let (status, _, _) = call(&server, post("/append/nope", csv, None));
    assert_eq!(status, 404);

    // Schema-violating CSV → 400 and nothing is sealed.
    let (status, _, body) = call(
        &server,
        post("/append/events", "city\nonly-one-col\n", None),
    );
    assert_eq!(status, 400);
    assert!(
        String::from_utf8(body)
            .expect("UTF-8")
            .starts_with("{\"error\":"),
        "bad CSV must surface a typed diagnostic"
    );
    assert_eq!(
        stream.watermark(),
        5,
        "failed append must not move the watermark"
    );
}

#[test]
fn oversized_and_garbage_requests_fail_closed() {
    let server = start_server(1, 0, 1);
    // Body over MAX_BODY_BYTES → 413 before any execution.
    let huge = "x".repeat(300 * 1024);
    let (status, _, _) = call(&server, post("/query", &huge, None));
    assert_eq!(status, 413);
    // Not HTTP at all → 400, connection closed, server stays up.
    let raw = raw_request(server.addr(), b"\x00\x01\x02 garbage\r\n\r\n").expect("round-trips");
    let head = String::from_utf8_lossy(&raw);
    assert!(head.starts_with("HTTP/1.1 400"), "head: {head}");
    let (status, _, _) = call(&server, get("/healthz"));
    assert_eq!(status, 200, "server must survive hostile bytes");
}
