//! `gola` — an interactive online-SQL console (the demo's "web-based query
//! console", paper §6, as a terminal program).
//!
//! Start it, load a synthetic workload, and type SQL: answers stream in
//! with error bars, refining batch by batch. `\demo` runs the scripted
//! dashboard scenario (ad revenue, A/B retention, slowdown hotspots).
//!
//! ```text
//! $ cargo run --release -p gola-cli
//! gola> \load conviva 100000
//! gola> SELECT AVG(play_time) FROM sessions
//!       WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions);
//! ```
//!
//! Flags: `--threads N`, `--demo`, `--progress` (live single-line batch
//! status), `--metrics-out <path>` (enable the observability registry and
//! write a JSON snapshot plus `<path>.prom` Prometheus text after each
//! query), `--timings` (include wall-clock values in those exports),
//! `--error P [--confidence C]` (session-default `ERROR P% CONFIDENCE C%`
//! contract), `--deadline SECS` (session-default `WITHIN SECS SECONDS`
//! contract), `--stratify COLUMN` (stratified mini-batch partitioning),
//! `--append NAME=DIR` (open the durable stream at DIR and register it as
//! table NAME; repeatable). A contract clause written in the SQL statement
//! overrides the session-level flag for that query.
//!
//! Subcommands: `gola serve` (HTTP query service), `gola ingest` (write a
//! generated workload into a durable segment directory).

use std::io::{BufRead, Write};
use std::sync::Arc;

use gola_core::{OnlineConfig, OnlineSession};
use gola_plan::QueryContract;
use gola_storage::{Catalog, StreamTable};
use gola_workloads::{ConvivaGenerator, MyTubeGenerator, TpchGenerator};

struct Console {
    catalog: Catalog,
    config: OnlineConfig,
    /// `--progress`: redraw one live status line per batch instead of
    /// printing every report.
    progress: bool,
    /// `--timings`: include wall-clock-derived values in metric exports.
    timings: bool,
    /// `--metrics-out <path>`: after each query, write the registry
    /// snapshot as JSON to `<path>` and Prometheus text to `<path>.prom`.
    /// Metrics accumulate over the whole session.
    metrics_out: Option<std::path::PathBuf>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("serve") {
        serve(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("ingest") {
        ingest(&args[1..]);
        return;
    }
    let mut console = Console {
        catalog: Catalog::new(),
        config: OnlineConfig::default().with_batches(40),
        progress: args.iter().any(|a| a == "--progress"),
        timings: args.iter().any(|a| a == "--timings"),
        metrics_out: flag_str(&args, "--metrics-out").map(std::path::PathBuf::from),
    };
    if let Some(threads) = flag_value(&args, "--threads") {
        console.config = console.config.clone().with_threads(threads);
    }
    let error_pct = flag_float(&args, "--error");
    let deadline = flag_float(&args, "--deadline");
    if error_pct.is_some() && deadline.is_some() {
        eprintln!("gola: --error and --deadline are mutually exclusive");
        std::process::exit(2);
    }
    if let Some(p) = error_pct {
        let c = flag_float(&args, "--confidence").unwrap_or(95.0);
        if !p.is_finite() || p <= 0.0 || p >= 100.0 || !c.is_finite() || c <= 0.0 || c >= 100.0 {
            eprintln!("gola: --error/--confidence expect percentages in (0, 100)");
            std::process::exit(2);
        }
        console.config = console.config.clone().with_contract(QueryContract::Error {
            target: p / 100.0,
            confidence: c / 100.0,
        });
    }
    if let Some(seconds) = deadline {
        if !seconds.is_finite() || seconds <= 0.0 {
            eprintln!("gola: --deadline expects a positive number of seconds");
            std::process::exit(2);
        }
        console.config = console
            .config
            .clone()
            .with_contract(QueryContract::Within { seconds });
    }
    if let Some(column) = flag_str(&args, "--stratify") {
        console.config = console.config.clone().with_stratify_column(column);
    }
    if console.metrics_out.is_some() {
        gola_obs::set_enabled(true);
    }
    attach_streams(&mut console.catalog, &args);
    if args.iter().any(|a| a == "--demo") {
        console.load("mytube", 100_000);
        console.demo();
        return;
    }
    println!("G-OLA interactive console — type \\help for commands.");
    console.load("conviva", 50_000);
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("gola> ");
        } else {
            print!("  ...> ");
        }
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim_end();
        if buffer.is_empty() && line.starts_with('\\') {
            if !console.command(line) {
                break;
            }
            continue;
        }
        buffer.push_str(line);
        buffer.push(' ');
        // Execute once the statement ends with `;` or on a blank line.
        if line.trim_end().ends_with(';') || (line.trim().is_empty() && !buffer.trim().is_empty()) {
            let sql = buffer.trim().trim_end_matches(';').to_string();
            buffer.clear();
            if !sql.is_empty() {
                console.run_sql(&sql);
            }
        }
    }
}

/// `gola serve` — run the multi-tenant HTTP query service in the
/// foreground until killed.
///
/// Flags: `--addr HOST:PORT` (default 127.0.0.1:8642), `--workload
/// conviva|tpch` (default conviva), `--rows N` (default 100000),
/// `--threads N` (shared worker-pool width), `--max-active N` / `--queue
/// N` (admission window), `--batches N`, `--metrics` (enable the
/// observability registry; scrape `GET /metrics`), `--max-connections N`
/// (fail-closed accept cap, default 64), `--append NAME=DIR` (serve the
/// durable stream at DIR as table NAME; `POST /append/NAME` then feeds
/// it, and appended segments persist across restarts).
fn serve(args: &[String]) {
    let workload = flag_str(args, "--workload").unwrap_or_else(|| "conviva".into());
    let rows = flag_value(args, "--rows").unwrap_or(100_000);
    let mut catalog = Catalog::new();
    match workload.as_str() {
        "conviva" => catalog.register_or_replace(
            "sessions",
            Arc::new(ConvivaGenerator::default().generate(rows)),
        ),
        "tpch" => catalog.register_or_replace(
            "lineitem_denorm",
            Arc::new(TpchGenerator::default().generate(rows)),
        ),
        other => {
            eprintln!("gola serve: unknown workload '{other}' (conviva | tpch)");
            std::process::exit(2);
        }
    }
    attach_streams(&mut catalog, args);
    if args.iter().any(|a| a == "--metrics") {
        gola_obs::set_enabled(true);
    }
    let addr = flag_str(args, "--addr").unwrap_or_else(|| "127.0.0.1:8642".into());
    let addr: std::net::SocketAddr = match addr.parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("gola serve: bad --addr '{addr}': {e}");
            std::process::exit(2);
        }
    };
    let service = gola_core::sched::ServiceConfig {
        threads: flag_value(args, "--threads").unwrap_or(2),
        max_active: flag_value(args, "--max-active").unwrap_or(4),
        queue_capacity: flag_value(args, "--queue").unwrap_or(16),
        base: OnlineConfig::default().with_batches(flag_value(args, "--batches").unwrap_or(40)),
    };
    let config = gola_server::ServerConfig {
        addr,
        service,
        max_connections: flag_value(args, "--max-connections").unwrap_or(64).max(1),
    };
    let server = match gola_server::Server::start(catalog, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("gola serve: bind {addr} failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "gola serve: '{workload}' ({rows} rows) on http://{}",
        server.addr()
    );
    println!(
        "  POST /query   SQL body -> NDJSON report stream (SSE with accept: text/event-stream)"
    );
    println!("  POST /jobs    SQL body -> job id; GET /jobs/<id> to poll, DELETE to cancel");
    println!("  POST /append/<table>  CSV body (with header) -> sealed segment on a stream");
    println!("  GET  /healthz, GET /metrics");
    // Serve until killed: the accept loop runs in background threads.
    loop {
        std::thread::park();
    }
}

/// `gola ingest` — write a generated workload into a durable stream
/// directory as write-once columnar segments (DESIGN.md §3.12).
///
/// Creates `--dir` if it has no manifest, otherwise reopens it and
/// appends. Rows are appended and sealed every `--seal-rows`, so the run
/// adds ⌈rows/seal-rows⌉ segments. The stream is closed afterwards —
/// queries over it drain to an exact final answer — unless `--keep-open`
/// leaves it appendable for `gola serve --append` or a later ingest.
///
/// Flags: `--dir PATH` (required), `--workload conviva|tpch` (default
/// conviva), `--rows N` (default 10000), `--seal-rows K` (default ⌈N/4⌉),
/// `--seed S` (decimal), `--keep-open`.
fn ingest(args: &[String]) {
    let Some(dir) = flag_str(args, "--dir") else {
        eprintln!("gola ingest: --dir is required");
        std::process::exit(2);
    };
    let workload = flag_str(args, "--workload").unwrap_or_else(|| "conviva".into());
    let rows = flag_value(args, "--rows").unwrap_or(10_000);
    let seed = match flag_str(args, "--seed").map(|s| s.parse::<u64>()) {
        None => None,
        Some(Ok(s)) => Some(s),
        Some(Err(e)) => {
            eprintln!("gola ingest: bad --seed: {e}");
            std::process::exit(2);
        }
    };
    let data = match workload.as_str() {
        "conviva" => {
            let mut g = ConvivaGenerator::default();
            if let Some(s) = seed {
                g.seed = s;
            }
            g.generate(rows)
        }
        "tpch" => {
            let mut g = TpchGenerator::default();
            if let Some(s) = seed {
                g.seed = s;
            }
            g.generate(rows)
        }
        other => {
            eprintln!("gola ingest: unknown workload '{other}' (conviva | tpch)");
            std::process::exit(2);
        }
    };
    let seal_rows = flag_value(args, "--seal-rows")
        .unwrap_or_else(|| data.num_rows().div_ceil(4))
        .max(1);
    let path = std::path::Path::new(&dir);
    let result = (|| {
        let stream = if path.join(gola_storage::stream::MANIFEST_FILE).is_file() {
            StreamTable::open_dir(path)?
        } else {
            StreamTable::create_dir(Arc::clone(data.schema()), path)?
        };
        for chunk in data.rows().chunks(seal_rows) {
            stream.append_rows(chunk)?;
            stream.seal()?;
        }
        if !args.iter().any(|a| a == "--keep-open") {
            stream.close()?;
        }
        Ok::<_, gola_common::Error>(stream)
    })();
    match result {
        Ok(stream) => println!(
            "gola ingest: '{workload}' +{} rows -> {dir} ({} segments, watermark {}{})",
            data.num_rows(),
            stream.num_segments(),
            stream.watermark(),
            if stream.is_closed() { ", closed" } else { "" },
        ),
        Err(e) => {
            eprintln!("gola ingest: {e}");
            std::process::exit(1);
        }
    }
}

/// Open each `--append NAME=DIR` durable stream and register it in the
/// catalog. Failures are fatal up front — a missing manifest or a name
/// collision would otherwise surface later as a confusing query error.
fn attach_streams(catalog: &mut Catalog, args: &[String]) {
    for (i, a) in args.iter().enumerate() {
        let spec = if a == "--append" {
            args.get(i + 1).cloned()
        } else {
            a.strip_prefix("--append=").map(str::to_string)
        };
        let Some(spec) = spec else { continue };
        let Some((name, dir)) = spec.split_once('=') else {
            eprintln!("gola: --append expects NAME=DIR, got '{spec}'");
            std::process::exit(2);
        };
        let stream = match StreamTable::open_dir(std::path::Path::new(dir)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("gola: --append {name}: cannot open '{dir}': {e}");
                std::process::exit(2);
            }
        };
        let (segments, watermark, closed) = (
            stream.num_segments(),
            stream.watermark(),
            stream.is_closed(),
        );
        if let Err(e) = catalog.register_stream(name, stream) {
            eprintln!("gola: --append: {e}");
            std::process::exit(2);
        }
        println!(
            "  attached stream '{name}' from {dir} ({segments} segments, watermark {watermark}{})",
            if closed { ", closed" } else { "" },
        );
    }
}

/// Parse `--flag N` or `--flag=N` from the argument list.
fn flag_value(args: &[String], flag: &str) -> Option<usize> {
    flag_str(args, flag).and_then(|v| v.parse().ok())
}

/// Parse `--flag X.Y` or `--flag=X.Y` from the argument list.
fn flag_float(args: &[String], flag: &str) -> Option<f64> {
    flag_str(args, flag).and_then(|v| v.parse().ok())
}

/// Parse `--flag VALUE` or `--flag=VALUE` from the argument list.
fn flag_str(args: &[String], flag: &str) -> Option<String> {
    for (i, a) in args.iter().enumerate() {
        if a == flag {
            return args.get(i + 1).cloned();
        }
        if let Some(v) = a.strip_prefix(&format!("{flag}=")) {
            return Some(v.to_string());
        }
    }
    None
}

impl Console {
    /// Handle a `\`-command; returns `false` to quit.
    fn command(&mut self, line: &str) -> bool {
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts[0] {
            "\\q" | "\\quit" | "\\exit" => return false,
            "\\help" => {
                println!("  \\load <conviva|tpch|mytube> [rows]   generate + register tables");
                println!("  \\tables                              list tables");
                println!("  \\explain <sql>                       show lineage blocks");
                println!("  \\exact <sql>                         run on the batch engine");
                println!("  \\batches <k>                         set mini-batch count");
                println!("  \\trials <B>                          set bootstrap replicas");
                println!("  \\threads <n>                         set worker threads");
                println!("  \\demo                                scripted dashboard demo");
                println!("  \\q                                   quit");
                println!("  <sql>;                               run online (finish with ;)");
                println!();
                println!("  SQL contracts: append ERROR p% [CONFIDENCE c%] or WITHIN n SECONDS");
                println!("  to an aggregate query; flags --error/--confidence/--deadline set a");
                println!("  session default and --stratify <col> stratifies the mini-batches.");
            }
            "\\tables" => {
                for name in self.catalog.names() {
                    let t = self.catalog.get(&name).expect("listed table");
                    println!("  {name} ({} rows) {}", t.num_rows(), t.schema());
                }
            }
            "\\load" => {
                let kind = parts.get(1).copied().unwrap_or("conviva");
                let rows: usize = parts.get(2).and_then(|s| s.parse().ok()).unwrap_or(50_000);
                self.load(kind, rows);
            }
            "\\batches" => {
                if let Some(k) = parts.get(1).and_then(|s| s.parse().ok()) {
                    self.config.num_batches = k;
                    println!("  mini-batches = {k}");
                }
            }
            "\\trials" => {
                if let Some(b) = parts.get(1).and_then(|s| s.parse().ok()) {
                    self.config.bootstrap.trials = b;
                    println!("  bootstrap trials = {b}");
                }
            }
            "\\threads" => {
                if let Some(t) = parts.get(1).and_then(|s| s.parse::<usize>().ok()) {
                    self.config = self.config.clone().with_threads(t);
                    println!("  worker threads = {}", self.config.threads);
                }
            }
            "\\explain" => {
                let sql = line.trim_start_matches("\\explain").trim();
                let session = OnlineSession::new(self.catalog.clone(), self.config.clone());
                match session.prepare(sql) {
                    Ok(p) => {
                        println!("streamed table: {}", p.stream_table);
                        print!("{}", p.meta.explain());
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
            "\\exact" => {
                let sql = line.trim_start_matches("\\exact").trim();
                let session = OnlineSession::new(self.catalog.clone(), self.config.clone());
                let t0 = gola_common::timing::Stopwatch::start();
                match session.execute_exact(sql) {
                    Ok(table) => {
                        print!("{}", table.display_limit(20));
                        println!("({:?})", t0.elapsed());
                    }
                    Err(e) => println!("error: {e}"),
                }
                self.dump_metrics();
            }
            "\\demo" => self.demo(),
            other => println!("unknown command {other}; try \\help"),
        }
        true
    }

    fn load(&mut self, kind: &str, rows: usize) {
        match kind {
            "conviva" => {
                self.catalog.register_or_replace(
                    "sessions",
                    Arc::new(ConvivaGenerator::default().generate(rows)),
                );
                println!("  registered 'sessions' ({rows} rows). try:");
                println!("    SELECT AVG(play_time) FROM sessions WHERE buffer_time >");
                println!("      (SELECT AVG(buffer_time) FROM sessions);");
            }
            "tpch" => {
                self.catalog.register_or_replace(
                    "lineitem_denorm",
                    Arc::new(TpchGenerator::default().generate(rows)),
                );
                println!("  registered 'lineitem_denorm' (~{rows} rows); see Q11/Q17/Q18/Q20");
            }
            "mytube" => {
                let g = MyTubeGenerator::default();
                self.catalog
                    .register_or_replace("mytube_sessions", Arc::new(g.sessions(rows)));
                self.catalog.register_or_replace("ads", Arc::new(g.ads()));
                println!("  registered 'mytube_sessions' ({rows} rows) and 'ads'");
            }
            other => println!("unknown workload '{other}' (conviva | tpch | mytube)"),
        }
    }

    fn run_sql(&self, sql: &str) {
        let session = OnlineSession::new(self.catalog.clone(), self.config.clone());
        let exec = match session.execute_online(sql) {
            Ok(e) => e,
            Err(e) => {
                println!("error: {e}");
                return;
            }
        };
        let mut last = None;
        for report in exec {
            match report {
                Ok(r) => {
                    if self.progress {
                        print!("\r\x1b[2K  {r}");
                        std::io::stdout().flush().ok();
                    } else {
                        println!("  {r}");
                    }
                    last = Some(r);
                }
                Err(e) => {
                    if self.progress {
                        println!();
                    }
                    println!("execution error: {e}");
                    return;
                }
            }
        }
        if self.progress {
            println!();
        }
        if let Some(r) = last {
            println!("\nfinal answer ({} rows):", r.table.num_rows());
            print!("{}", r.table.display_limit(20));
        }
        self.dump_metrics();
    }

    /// Write the metric registry to `--metrics-out` (JSON) and its `.prom`
    /// sibling (Prometheus text). No-op unless the flag was given.
    fn dump_metrics(&self) {
        let Some(path) = &self.metrics_out else {
            return;
        };
        if let Err(e) = std::fs::write(path, gola_obs::snapshot_json(self.timings)) {
            eprintln!("metrics-out: failed to write {}: {e}", path.display());
        }
        let mut prom = path.as_os_str().to_owned();
        prom.push(".prom");
        if let Err(e) = std::fs::write(&prom, gola_obs::prometheus(self.timings)) {
            eprintln!(
                "metrics-out: failed to write {}: {e}",
                prom.to_string_lossy()
            );
        }
    }

    /// Scripted dashboard: cycles the demo metrics like the paper's booth
    /// dashboard, printing refreshed estimates as they refine.
    fn demo(&mut self) {
        if !self.catalog.contains("mytube_sessions") {
            self.load("mytube", 100_000);
        }
        let metrics = [
            (
                "ad revenue by category (troubled sessions only)",
                "SELECT a.category, SUM(s.ad_revenue) AS revenue FROM mytube_sessions s \
                 JOIN ads a ON s.ad_id = a.ad_id \
                 WHERE s.buffer_time > (SELECT AVG(buffer_time) FROM mytube_sessions) \
                 GROUP BY a.category ORDER BY revenue DESC",
            ),
            (
                "A/B retention",
                "SELECT experiment, AVG(play_time) AS engagement, COUNT(*) AS n \
                 FROM mytube_sessions GROUP BY experiment ORDER BY experiment",
            ),
            (
                "evening slowdown",
                "SELECT hour_of_day, AVG(buffer_time) AS buffering \
                 FROM mytube_sessions GROUP BY hour_of_day ORDER BY buffering DESC LIMIT 5",
            ),
        ];
        for (title, sql) in metrics {
            println!("\n━━ {title} ━━");
            let session = OnlineSession::new(self.catalog.clone(), self.config.clone());
            let exec = match session.execute_online(sql) {
                Ok(e) => e,
                Err(e) => {
                    println!("error: {e}");
                    continue;
                }
            };
            for report in exec {
                let Ok(r) = report else { break };
                if r.batch_index % 10 == 0 || r.is_final() {
                    println!("  {r}");
                }
                if r.is_final() {
                    print!("{}", r.table.display_limit(8));
                }
            }
        }
    }
}
