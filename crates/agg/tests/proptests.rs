//! Property tests for aggregate states: weighted updates equal repetition,
//! merge is order-insensitive and matches single-pass accumulation, scaling
//! laws hold, and monotone lower bounds actually bound.

use gola_agg::{AggKind, AggState};
use gola_common::Value;
use proptest::prelude::*;

fn numeric_kinds() -> Vec<AggKind> {
    vec![
        AggKind::Count,
        AggKind::Sum,
        AggKind::Avg,
        AggKind::Min,
        AggKind::Max,
        AggKind::VarPop,
        AggKind::StdDev,
    ]
}

fn feed(kind: &AggKind, xs: &[(f64, u8)]) -> AggState {
    let mut s = kind.new_state();
    for &(x, w) in xs {
        s.update(&Value::Float(x), w as f64);
    }
    s
}

fn close(a: &Value, b: &Value, tol: f64) -> bool {
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => (x - y).abs() <= tol * (1.0 + y.abs()),
        _ => a == b,
    }
}

proptest! {
    #[test]
    fn weighted_update_equals_repetition(
        xs in prop::collection::vec((-1e3f64..1e3, 0u8..4), 0..60),
    ) {
        for kind in numeric_kinds() {
            let weighted = feed(&kind, &xs);
            let mut repeated = kind.new_state();
            for &(x, w) in &xs {
                for _ in 0..w {
                    repeated.update(&Value::Float(x), 1.0);
                }
            }
            // SUM/AVG/VAR accumulate through exact expansions, so a
            // weighted update and its unit-weight repetition agree to the
            // last bit; 1e-9 is pure slack.
            let tol = 1e-9;
            prop_assert!(
                close(&weighted.finalize(1.0), &repeated.finalize(1.0), tol),
                "{kind}: {} vs {}",
                weighted.finalize(1.0),
                repeated.finalize(1.0)
            );
        }
    }

    #[test]
    fn merge_matches_single_pass(
        xs in prop::collection::vec((-1e3f64..1e3, 1u8..3), 1..60),
        split in 0usize..60,
    ) {
        let split = split.min(xs.len());
        for kind in numeric_kinds() {
            let whole = feed(&kind, &xs);
            let mut a = feed(&kind, &xs[..split]);
            let b = feed(&kind, &xs[split..]);
            a.merge(&b);
            prop_assert!(
                close(&a.finalize(1.0), &whole.finalize(1.0), 1e-6),
                "{kind} merge mismatch"
            );
        }
    }

    #[test]
    fn merge_is_commutative(
        xs in prop::collection::vec((-1e3f64..1e3, 1u8..3), 1..30),
        ys in prop::collection::vec((-1e3f64..1e3, 1u8..3), 1..30),
    ) {
        for kind in numeric_kinds() {
            let mut ab = feed(&kind, &xs);
            ab.merge(&feed(&kind, &ys));
            let mut ba = feed(&kind, &ys);
            ba.merge(&feed(&kind, &xs));
            prop_assert!(close(&ab.finalize(1.0), &ba.finalize(1.0), 1e-6), "{kind}");
        }
    }

    #[test]
    fn scale_laws(
        xs in prop::collection::vec((-1e3f64..1e3, 1u8..3), 1..40),
        m in 1.0f64..50.0,
    ) {
        // COUNT and SUM scale linearly in the multiplicity; AVG/MIN/MAX/
        // STDDEV are scale-free.
        let count = feed(&AggKind::Count, &xs);
        let c1 = count.finalize(1.0).as_f64().unwrap();
        let cm = count.finalize(m).as_f64().unwrap();
        prop_assert!((cm - m * c1).abs() < 1e-9 * (1.0 + cm.abs()));
        let sum = feed(&AggKind::Sum, &xs);
        let s1 = sum.finalize(1.0).as_f64().unwrap();
        let sm = sum.finalize(m).as_f64().unwrap();
        prop_assert!((sm - m * s1).abs() < 1e-6 * (1.0 + sm.abs()));
        for kind in [AggKind::Avg, AggKind::Min, AggKind::Max, AggKind::StdDev] {
            let s = feed(&kind, &xs);
            prop_assert!(close(&s.finalize(1.0), &s.finalize(m), 1e-12), "{kind}");
        }
    }

    #[test]
    fn monotone_lower_bound_bounds_future(
        xs in prop::collection::vec(0.0f64..1e6, 1..40),
        more in prop::collection::vec(0.0f64..1e6, 0..40),
    ) {
        // For non-negative data, the bound after a prefix holds for every
        // extension of the stream.
        for kind in [AggKind::Count, AggKind::Sum] {
            let mut s = kind.new_state();
            for &x in &xs {
                s.update(&Value::Float(x), 1.0);
            }
            let bound = s.monotone_lower_bound().unwrap();
            for &x in &more {
                s.update(&Value::Float(x), 1.0);
            }
            let final_value = s.finalize(1.0).as_f64().unwrap();
            prop_assert!(final_value >= bound - 1e-9);
        }
    }

    #[test]
    fn negative_sums_have_no_bound(x in -1e6f64..-1e-6) {
        let mut s = AggKind::Sum.new_state();
        s.update(&Value::Float(1.0), 1.0);
        s.update(&Value::Float(x), 1.0);
        prop_assert!(s.monotone_lower_bound().is_none());
    }

    #[test]
    fn finalize_f64_matches_finalize(
        xs in prop::collection::vec((-1e3f64..1e3, 1u8..3), 0..40),
        m in 1.0f64..20.0,
    ) {
        for kind in numeric_kinds() {
            let s = feed(&kind, &xs);
            let boxed = s.finalize(m).as_f64();
            let raw = s.finalize_f64(m);
            match (boxed, raw) {
                (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-12),
                (None, None) => {}
                other => prop_assert!(false, "{kind}: {other:?}"),
            }
        }
    }
}

/// Equivalence of the fused per-lane fold kernels against the row-major
/// reference path. `update_with_weights`/`fold_*` are documented
/// bit-identical to updating main + each replica in ascending trial order
/// through `AggState::update`; these tests hold them to it — to the last
/// bit, across every aggregate kind, null/non-numeric arguments, zero
/// weights, and replica counts (including zero).
mod fold_kernel_equivalence {
    use gola_agg::{AggKind, ReplicatedStates};
    use gola_common::Value;
    use proptest::prelude::*;

    /// One lane per aggregate kind so the strided replica walk crosses a
    /// non-trivial stride.
    fn kinds() -> Vec<AggKind> {
        vec![
            AggKind::Count,
            AggKind::Sum,
            AggKind::Avg,
            AggKind::Min,
            AggKind::Max,
            AggKind::VarPop,
            AggKind::StdDev,
        ]
    }

    /// Lane arguments: small float lattice (Min/Max tie-breaks), signed
    /// zero and NaN edges, ints, strings (non-numeric: SUM ignores, MIN
    /// orders), and NULLs (whole-lane no-op).
    fn lane_val() -> BoxedStrategy<Value> {
        prop_oneof![
            (-8i32..8).prop_map(|i| Value::Float(i as f64 * 0.25)),
            (-8i32..8).prop_map(|i| Value::Float(i as f64 * 0.25)),
            (-100i64..100).prop_map(Value::Int),
            Just(Value::Float(-0.0)),
            Just(Value::Float(f64::NAN)),
            Just(Value::str("s")),
            Just(Value::str("t")),
            Just(Value::Null),
        ]
        .boxed()
    }

    /// Rows of (per-lane argument values, per-replica weights). Weights are
    /// generated at the maximum trial count and truncated to `trials` by
    /// the test, since strategies cannot depend on another generated value.
    fn rows() -> BoxedStrategy<Vec<(Vec<Value>, Vec<u32>)>> {
        prop::collection::vec(
            (
                prop::collection::vec(lane_val(), 7),
                prop::collection::vec(0u32..4, 8),
            ),
            0..40,
        )
        .boxed()
    }

    fn bits_eq(a: &Value, b: &Value) -> bool {
        match (a, b) {
            (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
            _ => a == b,
        }
    }

    /// Row-major reference: main with weight 1, then each replica in
    /// ascending order through the scalar `AggState::update` path.
    fn reference_update(rs: &mut ReplicatedStates, values: &[Value], weights: &[u32]) {
        rs.update_main(values);
        for (b, &w) in weights.iter().enumerate() {
            if w != 0 {
                rs.update_replica(b as u32, values, w as f64);
            }
        }
    }

    fn assert_states_match(
        kernel: &ReplicatedStates,
        reference: &ReplicatedStates,
        trials: u32,
        what: &str,
    ) -> Result<(), TestCaseError> {
        for scale in [1.0, 1.5] {
            for j in 0..kernel.num_aggs() {
                prop_assert!(
                    bits_eq(&kernel.value(j, scale), &reference.value(j, scale)),
                    "{what}: main lane {j} scale {scale}: {:?} vs {:?}",
                    kernel.value(j, scale),
                    reference.value(j, scale)
                );
                for b in 0..trials {
                    prop_assert!(
                        bits_eq(
                            &kernel.trial_value(j, b, scale),
                            &reference.trial_value(j, b, scale)
                        ),
                        "{what}: lane {j} trial {b} scale {scale}: {:?} vs {:?}",
                        kernel.trial_value(j, b, scale),
                        reference.trial_value(j, b, scale)
                    );
                }
            }
        }
        Ok(())
    }

    proptest! {
        /// Full fold (main + replicas): `update_with_weights` and direct
        /// `fold_numeric`/`fold_value` calls, bit for bit against the
        /// row-major reference.
        #[test]
        fn fused_fold_matches_row_major(data in rows(), trials in 0u32..8) {
            let ks = kinds();
            let mut via_tuple = ReplicatedStates::new(&ks, trials);
            let mut via_lane = ReplicatedStates::new(&ks, trials);
            let mut reference = ReplicatedStates::new(&ks, trials);
            for (values, wfull) in &data {
                let weights = &wfull[..trials as usize];
                via_tuple.update_with_weights(values, weights);
                for (j, v) in values.iter().enumerate() {
                    // Exercise the numeric entry point directly where its
                    // contract (non-null, x == as_f64) is satisfiable.
                    match v.as_f64() {
                        Some(x) if !v.is_null() => via_lane.fold_numeric(j, v, x, weights),
                        _ => via_lane.fold_value(j, v, weights),
                    }
                }
                reference_update(&mut reference, values, weights);
            }
            assert_states_match(&via_tuple, &reference, trials, "update_with_weights")?;
            assert_states_match(&via_lane, &reference, trials, "fold_numeric/fold_value")?;
        }

        /// Replica-only fold: `fold_numeric_replicas`/`fold_value_replicas`
        /// leave main untouched and match ascending `update_replica` calls.
        #[test]
        fn replica_only_fold_matches_row_major(data in rows(), trials in 0u32..8) {
            let ks = kinds();
            let mut kernel = ReplicatedStates::new(&ks, trials);
            let mut reference = ReplicatedStates::new(&ks, trials);
            for (values, wfull) in &data {
                let weights = &wfull[..trials as usize];
                for (j, v) in values.iter().enumerate() {
                    match v.as_f64() {
                        Some(x) if !v.is_null() => kernel.fold_numeric_replicas(j, v, x, weights),
                        _ => kernel.fold_value_replicas(j, v, weights),
                    }
                }
                for (b, &w) in weights.iter().enumerate() {
                    if w != 0 {
                        reference.update_replica(b as u32, values, w as f64);
                    }
                }
            }
            assert_states_match(&kernel, &reference, trials, "fold_*_replicas")?;
            // Main states never touched: still empty.
            prop_assert!(kernel.is_empty());
        }
    }
}
