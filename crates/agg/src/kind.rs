//! Aggregate function kinds.

use std::fmt;
use std::sync::Arc;

use gola_common::{DataType, Error, Result};

use crate::state::AggState;
use crate::udaf::Udaf;

/// The aggregate functions the engine supports (paper §2: COUNT, SUM, AVG,
/// STDEV, QUANTILES plus user-defined aggregates).
#[derive(Debug, Clone)]
pub enum AggKind {
    /// `COUNT(expr)` — counts non-null values. The binder lowers
    /// `COUNT(*)` to `COUNT(1)`.
    Count,
    Sum,
    Avg,
    Min,
    Max,
    /// Population variance.
    VarPop,
    /// Population standard deviation.
    StdDev,
    /// `QUANTILE(expr, q)` with `q ∈ [0, 1]`, streaming (P²).
    Quantile(f64),
    /// A registered user-defined aggregate.
    Udaf(Arc<dyn Udaf>),
}

impl AggKind {
    /// SQL name of the aggregate.
    pub fn name(&self) -> String {
        match self {
            AggKind::Count => "COUNT".into(),
            AggKind::Sum => "SUM".into(),
            AggKind::Avg => "AVG".into(),
            AggKind::Min => "MIN".into(),
            AggKind::Max => "MAX".into(),
            AggKind::VarPop => "VAR_POP".into(),
            AggKind::StdDev => "STDDEV".into(),
            AggKind::Quantile(q) => format!("QUANTILE[{q}]"),
            AggKind::Udaf(u) => u.name().to_uppercase(),
        }
    }

    /// Result type given the argument type.
    pub fn return_type(&self, arg: DataType) -> Result<DataType> {
        match self {
            AggKind::Count => Ok(DataType::Float),
            AggKind::Min | AggKind::Max => Ok(arg),
            AggKind::Udaf(u) => u.return_type(arg),
            _ => {
                if arg.is_numeric() || arg == DataType::Null {
                    Ok(DataType::Float)
                } else {
                    Err(Error::bind(format!(
                        "{} expects a numeric argument, got {arg}",
                        self.name()
                    )))
                }
            }
        }
    }

    /// `true` if the estimate must be multiplied by the multiplicity
    /// `m = k/i` under multiset semantics (extensive aggregates).
    pub fn is_scale_sensitive(&self) -> bool {
        matches!(self, AggKind::Count | AggKind::Sum)
    }

    /// `true` if two partial states of this kind can be merged
    /// ([`AggState::merge`]); quantile sketches and UDAFs cannot.
    pub fn is_mergeable(&self) -> bool {
        !matches!(self, AggKind::Quantile(_) | AggKind::Udaf(_))
    }

    /// Fresh accumulator.
    pub fn new_state(&self) -> AggState {
        AggState::new(self)
    }

    /// Resolve a built-in aggregate by SQL name. `quantile_arg` carries the
    /// second argument of `QUANTILE(expr, q)` when present. Returns `None`
    /// for names that are not built-in aggregates (the binder then tries
    /// scalar functions and UDAFs).
    pub fn from_name(name: &str, quantile_arg: Option<f64>) -> Result<Option<AggKind>> {
        let kind = match name.to_ascii_lowercase().as_str() {
            "count" => AggKind::Count,
            "sum" => AggKind::Sum,
            "avg" | "mean" => AggKind::Avg,
            "min" => AggKind::Min,
            "max" => AggKind::Max,
            "var_pop" | "variance" => AggKind::VarPop,
            "stddev" | "stdev" | "stddev_pop" => AggKind::StdDev,
            "median" => AggKind::Quantile(0.5),
            "quantile" | "percentile" => {
                let q = quantile_arg
                    .ok_or_else(|| Error::bind("QUANTILE requires a literal quantile argument"))?;
                if !(0.0..=1.0).contains(&q) {
                    return Err(Error::bind(format!("quantile {q} outside [0, 1]")));
                }
                AggKind::Quantile(q)
            }
            _ => return Ok(None),
        };
        Ok(Some(kind))
    }
}

impl fmt::Display for AggKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_name_builtins() {
        assert!(matches!(
            AggKind::from_name("SUM", None).unwrap(),
            Some(AggKind::Sum)
        ));
        assert!(matches!(
            AggKind::from_name("stdev", None).unwrap(),
            Some(AggKind::StdDev)
        ));
        assert!(matches!(
            AggKind::from_name("median", None).unwrap(),
            Some(AggKind::Quantile(q)) if q == 0.5
        ));
        assert!(AggKind::from_name("quantile", Some(0.9)).unwrap().is_some());
        assert!(AggKind::from_name("quantile", None).is_err());
        assert!(AggKind::from_name("quantile", Some(1.5)).is_err());
        assert!(AggKind::from_name("not_an_agg", None).unwrap().is_none());
    }

    #[test]
    fn return_types() {
        assert_eq!(
            AggKind::Count.return_type(DataType::Str).unwrap(),
            DataType::Float
        );
        assert_eq!(
            AggKind::Min.return_type(DataType::Str).unwrap(),
            DataType::Str
        );
        assert_eq!(
            AggKind::Avg.return_type(DataType::Int).unwrap(),
            DataType::Float
        );
        assert!(AggKind::Sum.return_type(DataType::Str).is_err());
    }

    #[test]
    fn scale_sensitivity() {
        assert!(AggKind::Count.is_scale_sensitive());
        assert!(AggKind::Sum.is_scale_sensitive());
        assert!(!AggKind::Avg.is_scale_sensitive());
        assert!(!AggKind::Quantile(0.5).is_scale_sensitive());
        assert!(!AggKind::StdDev.is_scale_sensitive());
    }
}
