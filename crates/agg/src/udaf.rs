//! User-defined aggregate functions (UDAFs).
//!
//! G-OLA explicitly supports user-defined aggregates (paper §2). A UDAF
//! supplies a factory ([`Udaf`]) producing per-group states
//! ([`UdafState`]). States receive *weighted* updates so UDAFs participate
//! in multiset semantics and poissonized bootstrap exactly like built-ins —
//! a UDAF automatically gets confidence intervals and variation ranges.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use gola_common::{DataType, Error, Result, Value};

/// Factory for a user-defined aggregate.
pub trait Udaf: Send + Sync {
    /// SQL-visible name.
    fn name(&self) -> &str;

    /// Return type given the argument type; also validates the argument.
    fn return_type(&self, arg: DataType) -> Result<DataType>;

    /// Fresh accumulator state.
    fn new_state(&self) -> Box<dyn UdafState>;
}

/// Per-group accumulator of a UDAF.
///
/// `Sync` is required because the online executor shares read-only access
/// to runtime state across worker threads; mutation always happens through
/// `&mut self`.
pub trait UdafState: Send + Sync {
    /// Fold in one (non-null) value with a weight. Weights arise from
    /// bootstrap replicas (small integers) — multiset multiplicity is
    /// applied via `scale` at finalize time instead.
    fn update(&mut self, value: &Value, weight: f64);

    /// Current aggregate value. `scale` is the multiplicity `m = k/i`; a
    /// scale-sensitive UDAF (like a weighted total) multiplies by it, a
    /// scale-free one (like a mean) ignores it.
    fn finalize(&self, scale: f64) -> Value;

    /// Clone into a box (states are snapshotted when combining the
    /// deterministic state with uncertain-set contributions).
    fn clone_box(&self) -> Box<dyn UdafState>;
}

impl Clone for Box<dyn UdafState> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

impl fmt::Debug for dyn UdafState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("<udaf-state>")
    }
}

impl fmt::Debug for dyn Udaf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<udaf {}>", self.name())
    }
}

/// Name → UDAF registry (case-insensitive).
#[derive(Debug, Clone, Default)]
pub struct UdafRegistry {
    fns: BTreeMap<String, Arc<dyn Udaf>>,
}

impl UdafRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registry with the bundled example UDAF ([`GeometricMean`]).
    pub fn with_builtins() -> Self {
        let mut r = Self::new();
        r.register(Arc::new(GeometricMean)).expect("fresh registry");
        r
    }

    pub fn register(&mut self, udaf: Arc<dyn Udaf>) -> Result<()> {
        let key = udaf.name().to_ascii_lowercase();
        if self.fns.contains_key(&key) {
            return Err(Error::bind(format!("UDAF '{key}' already registered")));
        }
        self.fns.insert(key, udaf);
        Ok(())
    }

    pub fn get(&self, name: &str) -> Option<Arc<dyn Udaf>> {
        self.fns.get(&name.to_ascii_lowercase()).cloned()
    }

    pub fn contains(&self, name: &str) -> bool {
        self.fns.contains_key(&name.to_ascii_lowercase())
    }
}

/// Example UDAF: weighted geometric mean (scale-free).
pub struct GeometricMean;

#[derive(Clone, Default)]
struct GeoMeanState {
    log_sum: f64,
    weight: f64,
}

impl Udaf for GeometricMean {
    fn name(&self) -> &str {
        "geo_mean"
    }

    fn return_type(&self, arg: DataType) -> Result<DataType> {
        if arg.is_numeric() || arg == DataType::Null {
            Ok(DataType::Float)
        } else {
            Err(Error::bind(format!(
                "geo_mean expects a numeric argument, got {arg}"
            )))
        }
    }

    fn new_state(&self) -> Box<dyn UdafState> {
        Box::new(GeoMeanState::default())
    }
}

impl UdafState for GeoMeanState {
    fn update(&mut self, value: &Value, weight: f64) {
        if let Some(x) = value.as_f64() {
            if x > 0.0 && weight > 0.0 {
                self.log_sum += x.ln() * weight;
                self.weight += weight;
            }
        }
    }

    fn finalize(&self, _scale: f64) -> Value {
        if self.weight == 0.0 {
            Value::Null
        } else {
            Value::Float((self.log_sum / self.weight).exp())
        }
    }

    fn clone_box(&self) -> Box<dyn UdafState> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geo_mean_basics() {
        let f = GeometricMean;
        let mut s = f.new_state();
        s.update(&Value::Float(2.0), 1.0);
        s.update(&Value::Float(8.0), 1.0);
        let v = s.finalize(1.0).as_f64().unwrap();
        assert!((v - 4.0).abs() < 1e-12);
        // Scale-free: multiplicity has no effect.
        assert_eq!(s.finalize(10.0), s.finalize(1.0));
    }

    #[test]
    fn geo_mean_weighted() {
        let f = GeometricMean;
        let mut s = f.new_state();
        s.update(&Value::Float(2.0), 3.0);
        s.update(&Value::Float(16.0), 1.0);
        // (2^3 * 16)^(1/4) = (128)^(1/4)
        let v = s.finalize(1.0).as_f64().unwrap();
        assert!((v - 128f64.powf(0.25)).abs() < 1e-12);
    }

    #[test]
    fn geo_mean_empty_is_null() {
        let s = GeometricMean.new_state();
        assert!(s.finalize(1.0).is_null());
    }

    #[test]
    fn clone_box_snapshots() {
        let f = GeometricMean;
        let mut s = f.new_state();
        s.update(&Value::Float(3.0), 1.0);
        let snap = s.clone_box();
        s.update(&Value::Float(300.0), 1.0);
        assert_ne!(snap.finalize(1.0), s.finalize(1.0));
    }

    #[test]
    fn registry() {
        let r = UdafRegistry::with_builtins();
        assert!(r.contains("GEO_MEAN"));
        assert!(r.get("geo_mean").is_some());
        assert!(r.get("missing").is_none());
        let mut r2 = UdafRegistry::with_builtins();
        assert!(r2.register(Arc::new(GeometricMean)).is_err());
    }

    #[test]
    fn return_type_validation() {
        assert_eq!(
            GeometricMean.return_type(DataType::Int).unwrap(),
            DataType::Float
        );
        assert!(GeometricMean.return_type(DataType::Str).is_err());
    }
}
