//! Bootstrap-replicated aggregate states.
//!
//! A [`ReplicatedStates`] bundles, for a list of aggregate specs, one
//! *main* state (updated with weight 1; the true estimate) and `B`
//! *replica* states (updated with each tuple's deterministic `Poisson(1)`
//! weights). This is the per-group incremental unit inside every lineage
//! block: a mini-batch folds each tuple in once, and at any point the
//! states finalize into an [`Estimate`] carrying a value plus its bootstrap
//! distribution — from which confidence intervals *and* variation ranges
//! are derived.

use gola_bootstrap::{BootstrapSpec, Estimate};
use gola_common::Value;

use crate::kind::AggKind;
use crate::state::AggState;

/// Main + replica accumulators for a list of aggregates over one group.
#[derive(Debug, Clone)]
pub struct ReplicatedStates {
    /// Flat, replica-major storage: row `0` holds the main state of each
    /// aggregate, row `1 + b` holds replica `b`; row stride is `num_aggs`.
    /// A single allocation keeps the per-tuple replica update loop walking
    /// one contiguous region.
    states: Vec<AggState>,
    num_aggs: usize,
}

impl ReplicatedStates {
    /// Fresh states for `kinds` with `trials` bootstrap replicas.
    pub fn new(kinds: &[AggKind], trials: u32) -> Self {
        let rows = 1 + trials as usize;
        let mut states = Vec::with_capacity(rows * kinds.len());
        for _ in 0..rows {
            states.extend(kinds.iter().map(AggKind::new_state));
        }
        ReplicatedStates {
            states,
            num_aggs: kinds.len(),
        }
    }

    #[inline]
    fn row(&self, r: usize) -> &[AggState] {
        &self.states[r * self.num_aggs..(r + 1) * self.num_aggs]
    }

    #[inline]
    fn row_mut(&mut self, r: usize) -> &mut [AggState] {
        let stride = self.num_aggs;
        &mut self.states[r * stride..(r + 1) * stride]
    }

    /// Number of bootstrap replicas.
    pub fn trials(&self) -> u32 {
        match self.states.len().checked_div(self.num_aggs) {
            // `rows == 0` (empty state table) must not underflow, and a
            // replica count that overflows `u32` is a construction bug —
            // fail loudly instead of truncating.
            Some(rows) if rows > 0 => u32::try_from(rows - 1).expect("replica count exceeds u32"),
            _ => 0,
        }
    }

    /// Number of aggregates per state.
    pub fn num_aggs(&self) -> usize {
        self.num_aggs
    }

    /// Fold one tuple in: `values[j]` is the j-th aggregate's argument
    /// evaluated on the tuple. The main state updates with weight 1; each
    /// replica with the tuple's hash-derived Poisson weight.
    pub fn update(&mut self, values: &[Value], tuple_id: u64, bootstrap: &BootstrapSpec) {
        debug_assert_eq!(values.len(), self.num_aggs());
        for (s, v) in self.row_mut(0).iter_mut().zip(values) {
            s.update(v, 1.0);
        }
        for b in 0..self.trials() {
            let w = bootstrap.weight(tuple_id, b);
            if w == 0 {
                continue;
            }
            for (s, v) in self.row_mut(1 + b as usize).iter_mut().zip(values) {
                s.update(v, w as f64);
            }
        }
    }

    /// Fold one tuple in with precomputed replica weights (`weights[b]` is
    /// the tuple's `Poisson(1)` weight in replica `b`, e.g. one row of
    /// [`BootstrapSpec::weights_batch`]). Bit-identical to
    /// [`ReplicatedStates::update`]: each accumulator sees the same update
    /// sequence, but the loop runs aggregate-major so the argument's null
    /// check and numeric conversion are hoisted out of the replica loop.
    pub fn update_with_weights(&mut self, values: &[Value], weights: &[u32]) {
        debug_assert_eq!(values.len(), self.num_aggs());
        debug_assert_eq!(weights.len(), self.trials() as usize);
        for (j, v) in values.iter().enumerate() {
            self.fold_value(j, v, weights);
        }
    }

    /// Fused weight × value fold of one aggregate lane: the main state of
    /// aggregate `j` updates with weight 1, each replica with the tuple's
    /// `Poisson(1)` weight scaled in. `x` must equal `v.as_f64().unwrap()`
    /// and `v` must be non-null — the columnar executor reads `x` straight
    /// from a typed column vector, so the null check and numeric conversion
    /// happen once per tuple *column slot* instead of once per replica.
    /// Bit-identical to lane `j` of [`ReplicatedStates::update_with_weights`].
    #[inline]
    pub fn fold_numeric(&mut self, j: usize, v: &Value, x: f64, weights: &[u32]) {
        let stride = self.num_aggs;
        self.states[j].update_numeric(v, x, 1.0);
        // `get_mut(..)`, not `[..]`: with zero replicas the slice start
        // lies past the main-row-only allocation.
        for (st, &w) in (self.states.get_mut(stride + j..).unwrap_or_default())
            .iter_mut()
            .step_by(stride)
            .zip(weights)
        {
            if w != 0 {
                st.update_numeric(v, x, w as f64);
            }
        }
    }

    /// Fused fold of one aggregate lane for an arbitrary value (null or
    /// non-numeric arguments take this path). Bit-identical to lane `j` of
    /// [`ReplicatedStates::update_with_weights`].
    #[inline]
    pub fn fold_value(&mut self, j: usize, v: &Value, weights: &[u32]) {
        if v.is_null() {
            // `AggState::update` ignores nulls, so the whole lane is a no-op.
            return;
        }
        if let Some(x) = v.as_f64() {
            self.fold_numeric(j, v, x, weights);
        } else {
            let stride = self.num_aggs;
            self.states[j].update(v, 1.0);
            // `get_mut(..)`, not `[..]`: with zero replicas the slice start
            // lies past the main-row-only allocation.
            for (st, &w) in (self.states.get_mut(stride + j..).unwrap_or_default())
                .iter_mut()
                .step_by(stride)
                .zip(weights)
            {
                if w != 0 {
                    st.update(v, w as f64);
                }
            }
        }
    }

    /// Fused fold of one aggregate lane into the *replica* states only: the
    /// main state is untouched, replica `b` updates with `weights[b]`
    /// (zeros are no-ops). `x`/`v` contract as in
    /// [`ReplicatedStates::fold_numeric`]. Callers that decide per-trial
    /// inclusion separately (uncertain-set evaluation) mask excluded trials
    /// to weight 0 — bit-identical to calling
    /// [`ReplicatedStates::update_replica`] for each included trial in
    /// ascending order.
    #[inline]
    pub fn fold_numeric_replicas(&mut self, j: usize, v: &Value, x: f64, weights: &[u32]) {
        let stride = self.num_aggs;
        // `get_mut(..)`, not `[..]`: with zero replicas the slice start
        // lies past the main-row-only allocation.
        for (st, &w) in (self.states.get_mut(stride + j..).unwrap_or_default())
            .iter_mut()
            .step_by(stride)
            .zip(weights)
        {
            if w != 0 {
                st.update_numeric(v, x, w as f64);
            }
        }
    }

    /// Replica-only fold of one aggregate lane for an arbitrary value; see
    /// [`ReplicatedStates::fold_numeric_replicas`].
    #[inline]
    pub fn fold_value_replicas(&mut self, j: usize, v: &Value, weights: &[u32]) {
        if v.is_null() {
            return;
        }
        if let Some(x) = v.as_f64() {
            self.fold_numeric_replicas(j, v, x, weights);
        } else {
            let stride = self.num_aggs;
            // `get_mut(..)`, not `[..]`: with zero replicas the slice start
            // lies past the main-row-only allocation.
            for (st, &w) in (self.states.get_mut(stride + j..).unwrap_or_default())
                .iter_mut()
                .step_by(stride)
                .zip(weights)
            {
                if w != 0 {
                    st.update(v, w as f64);
                }
            }
        }
    }

    /// Merge another group's states (same kinds/trials; used when combining
    /// partial aggregations).
    pub fn merge(&mut self, other: &ReplicatedStates) {
        assert_eq!(self.states.len(), other.states.len());
        for (a, b) in self.states.iter_mut().zip(&other.states) {
            a.merge(b);
        }
    }

    /// Merge only the main states (selective combination: per-trial
    /// inclusion of the other partition is decided separately).
    pub fn merge_main(&mut self, other: &ReplicatedStates) {
        let stride = self.num_aggs;
        for (a, b) in self.states[..stride]
            .iter_mut()
            .zip(&other.states[..stride])
        {
            a.merge(b);
        }
    }

    /// Merge only replica `b`'s states.
    pub fn merge_replica(&mut self, b: u32, other: &ReplicatedStates) {
        let idx = 1 + b as usize;
        for (a, o) in self.row_mut(idx).iter_mut().zip(other.row(idx)) {
            a.merge(o);
        }
    }

    /// Fold one tuple into the main state only (weight 1). Used when the
    /// per-trial inclusion of a tuple is decided separately (uncertain-set
    /// evaluation at answer time).
    pub fn update_main(&mut self, values: &[Value]) {
        for (s, v) in self.row_mut(0).iter_mut().zip(values) {
            s.update(v, 1.0);
        }
    }

    /// Fold one tuple into replica `b` only, with an explicit weight.
    pub fn update_replica(&mut self, b: u32, values: &[Value], weight: f64) {
        for (s, v) in self.row_mut(1 + b as usize).iter_mut().zip(values) {
            s.update(v, weight);
        }
    }

    /// Current value of aggregate `j` from the main state.
    pub fn value(&self, j: usize, scale: f64) -> Value {
        self.states[j].finalize(scale)
    }

    /// Value of aggregate `j` in bootstrap replica `b`.
    pub fn trial_value(&self, j: usize, b: u32, scale: f64) -> Value {
        self.states[(1 + b as usize) * self.num_aggs + j].finalize(scale)
    }

    /// Numeric value of aggregate `j` in replica `b`, without boxing —
    /// the hot path of per-trial membership tests.
    #[inline]
    pub fn trial_value_f64(&self, j: usize, b: u32, scale: f64) -> Option<f64> {
        self.states[(1 + b as usize) * self.num_aggs + j].finalize_f64(scale)
    }

    /// Monotone lower bound on aggregate `j`'s final value (see
    /// [`AggState::monotone_lower_bound`]).
    pub fn lower_bound(&self, j: usize) -> Option<f64> {
        self.states[j].monotone_lower_bound()
    }

    /// Observation count of aggregate `j`'s main state, if tracked.
    pub fn observations(&self, j: usize) -> Option<f64> {
        self.states[j].observations()
    }

    /// Replica values of aggregate `j` (numeric replicas only; non-numeric
    /// and null replica outcomes are dropped from the distribution).
    pub fn replica_values(&self, j: usize, scale: f64) -> Vec<f64> {
        (0..self.trials())
            .filter_map(|b| self.trial_value_f64(j, b, scale))
            .collect()
    }

    /// Full [`Estimate`] (value + bootstrap distribution) of aggregate `j`.
    /// Returns `None` when the main value is non-numeric (e.g. MIN over
    /// strings, or an empty SUM) — such results carry no error model.
    pub fn estimate(&self, j: usize, scale: f64) -> Option<Estimate> {
        let v = self.value(j, scale).as_f64()?;
        Some(Estimate::new(v, self.replica_values(j, scale)))
    }

    /// `true` if the main states saw no data.
    pub fn is_empty(&self) -> bool {
        self.row(0).iter().all(AggState::is_empty)
    }

    /// Snapshot the states (cheap for the numeric aggregates; quantile and
    /// UDAF states deep-clone).
    pub fn snapshot(&self) -> ReplicatedStates {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gola_common::stats::mean;

    fn spec() -> BootstrapSpec {
        BootstrapSpec::new(64, 42)
    }

    #[test]
    fn main_state_is_exact() {
        let kinds = [AggKind::Sum, AggKind::Avg, AggKind::Count];
        let mut rs = ReplicatedStates::new(&kinds, 8);
        for t in 0..100u64 {
            let x = Value::Float(t as f64);
            rs.update(&[x.clone(), x.clone(), x], t, &spec());
        }
        assert_eq!(rs.value(0, 1.0), Value::Float(4950.0));
        assert_eq!(rs.value(1, 1.0), Value::Float(49.5));
        assert_eq!(rs.value(2, 1.0), Value::Float(100.0));
        // Multiplicity scales SUM and COUNT but not AVG.
        assert_eq!(rs.value(0, 2.0), Value::Float(9900.0));
        assert_eq!(rs.value(1, 2.0), Value::Float(49.5));
    }

    #[test]
    fn replica_distribution_centers_on_estimate() {
        let kinds = [AggKind::Avg];
        let mut rs = ReplicatedStates::new(&kinds, 100);
        for t in 0..5000u64 {
            rs.update(&[Value::Float((t % 100) as f64)], t, &spec());
        }
        let est = rs.estimate(0, 1.0).unwrap();
        let m = mean(&est.replicas).unwrap();
        assert!(
            (m - est.value).abs() < 1.0,
            "replica mean {m} vs {}",
            est.value
        );
        assert!(est.std_error().unwrap() > 0.0);
        assert_eq!(est.replicas.len(), 100);
    }

    #[test]
    fn update_is_replayable() {
        // Feeding the same tuples twice in different order produces the
        // same replica values for SUM (weights are per-tuple-id).
        let kinds = [AggKind::Sum];
        let mut a = ReplicatedStates::new(&kinds, 16);
        let mut b = ReplicatedStates::new(&kinds, 16);
        let s = spec();
        for t in 0..50u64 {
            a.update(&[Value::Float(t as f64)], t, &s);
        }
        for t in (0..50u64).rev() {
            b.update(&[Value::Float(t as f64)], t, &s);
        }
        assert_eq!(a.replica_values(0, 1.0), b.replica_values(0, 1.0));
    }

    #[test]
    fn update_with_weights_matches_update() {
        let kinds = [AggKind::Sum, AggKind::Count, AggKind::Avg, AggKind::Min];
        let s = spec();
        let mut a = ReplicatedStates::new(&kinds, 64);
        let mut b = ReplicatedStates::new(&kinds, 64);
        let mut wbuf = Vec::new();
        for t in 0..200u64 {
            let v = [
                Value::Float(t as f64 - 50.0),
                Value::Int(1),
                Value::Float((t % 13) as f64),
                Value::str(if t % 2 == 0 { "even" } else { "odd" }),
            ];
            a.update(&v, t, &s);
            s.weights_into(t, &mut wbuf);
            b.update_with_weights(&v, &wbuf);
        }
        for j in 0..kinds.len() {
            assert_eq!(a.value(j, 1.5), b.value(j, 1.5), "agg {j}");
            for tr in 0..64u32 {
                assert_eq!(a.trial_value(j, tr, 1.5), b.trial_value(j, tr, 1.5));
            }
        }
    }

    #[test]
    fn zero_trials_disables_error_estimation() {
        let kinds = [AggKind::Avg];
        let mut rs = ReplicatedStates::new(&kinds, 0);
        rs.update(&[Value::Float(5.0)], 1, &BootstrapSpec::new(0, 1));
        let est = rs.estimate(0, 1.0).unwrap();
        assert_eq!(est.value, 5.0);
        assert!(est.replicas.is_empty());
        assert_eq!(est.std_error(), None);
    }

    #[test]
    fn non_numeric_estimate_is_none() {
        let kinds = [AggKind::Min];
        let mut rs = ReplicatedStates::new(&kinds, 4);
        rs.update(&[Value::str("abc")], 1, &spec());
        assert!(rs.estimate(0, 1.0).is_none());
        assert_eq!(rs.value(0, 1.0), Value::str("abc"));
    }

    #[test]
    fn merge_combines_partials() {
        let kinds = [AggKind::Sum];
        let s = spec();
        let mut a = ReplicatedStates::new(&kinds, 16);
        let mut b = ReplicatedStates::new(&kinds, 16);
        let mut whole = ReplicatedStates::new(&kinds, 16);
        for t in 0..40u64 {
            let v = [Value::Float(t as f64)];
            whole.update(&v, t, &s);
            if t % 2 == 0 {
                a.update(&v, t, &s);
            } else {
                b.update(&v, t, &s);
            }
        }
        a.merge(&b);
        assert_eq!(a.value(0, 1.0), whole.value(0, 1.0));
        assert_eq!(a.replica_values(0, 1.0), whole.replica_values(0, 1.0));
    }

    #[test]
    fn snapshot_isolates() {
        let kinds = [AggKind::Count];
        let mut rs = ReplicatedStates::new(&kinds, 2);
        rs.update(&[Value::Int(1)], 0, &spec());
        let snap = rs.snapshot();
        rs.update(&[Value::Int(1)], 1, &spec());
        assert_eq!(snap.value(0, 1.0), Value::Float(1.0));
        assert_eq!(rs.value(0, 1.0), Value::Float(2.0));
    }

    #[test]
    fn empty_detection() {
        let rs = ReplicatedStates::new(&[AggKind::Sum], 2);
        assert!(rs.is_empty());
    }
}
