//! Weighted aggregate accumulators.

use gola_common::fsum::{ExactSum, ExactVariance};
use gola_common::Value;

use crate::kind::AggKind;
use crate::quantile::P2Quantile;
use crate::udaf::UdafState;

/// A single aggregate accumulator. Updates are weighted (bootstrap Poisson
/// weights); multiset multiplicity is applied at [`AggState::finalize`].
///
/// SUM/AVG/VAR accumulate through [`ExactSum`], so every finalized value is
/// a function of the folded multiset alone — the online executor (which
/// folds in shuffled mini-batch order) and the batch engine (table order)
/// produce bit-identical answers. Weight sums stay plain `f64`: engine
/// weights are small integers, whose sums are exact anyway. QUANTILE (P²)
/// is inherently order-sensitive and is excluded from that contract.
#[derive(Debug, Clone)]
pub enum AggState {
    Count {
        weight_sum: f64,
    },
    Sum {
        sum: ExactSum,
        weight_sum: f64,
        saw_negative: bool,
    },
    Avg {
        sum: ExactSum,
        weight_sum: f64,
    },
    Min {
        best: Option<Value>,
    },
    Max {
        best: Option<Value>,
    },
    Var {
        acc: ExactVariance,
        stddev: bool,
    },
    Quantile(P2Quantile),
    Udaf(Box<dyn UdafState>),
}

impl AggState {
    pub fn new(kind: &AggKind) -> AggState {
        match kind {
            AggKind::Count => AggState::Count { weight_sum: 0.0 },
            AggKind::Sum => AggState::Sum {
                sum: ExactSum::new(),
                weight_sum: 0.0,
                saw_negative: false,
            },
            AggKind::Avg => AggState::Avg {
                sum: ExactSum::new(),
                weight_sum: 0.0,
            },
            AggKind::Min => AggState::Min { best: None },
            AggKind::Max => AggState::Max { best: None },
            AggKind::VarPop => AggState::Var {
                acc: ExactVariance::new(),
                stddev: false,
            },
            AggKind::StdDev => AggState::Var {
                acc: ExactVariance::new(),
                stddev: true,
            },
            AggKind::Quantile(q) => AggState::Quantile(P2Quantile::new(*q)),
            AggKind::Udaf(u) => AggState::Udaf(u.new_state()),
        }
    }

    /// Fold in one value. SQL semantics: nulls are skipped by every
    /// aggregate; zero/negative weights are no-ops.
    pub fn update(&mut self, value: &Value, weight: f64) {
        if value.is_null() || weight <= 0.0 {
            return;
        }
        match self {
            AggState::Count { weight_sum } => *weight_sum += weight,
            AggState::Sum {
                sum,
                weight_sum,
                saw_negative,
            } => {
                if let Some(x) = value.as_f64() {
                    // Uniform `add_product` for every weight: for finite x,
                    // `add_product(x, 1.0)` is bit-identical to `add(x)`
                    // (the product is exact and its fma error term is +0.0,
                    // which `ExactSum::add` drops), and skipping the
                    // data-dependent `weight == 1` branch keeps the
                    // per-replica fold pipeline predictable.
                    sum.add_product(x, weight);
                    *weight_sum += weight;
                    if x < 0.0 {
                        *saw_negative = true;
                    }
                }
            }
            AggState::Avg { sum, weight_sum } => {
                if let Some(x) = value.as_f64() {
                    sum.add_product(x, weight);
                    *weight_sum += weight;
                }
            }
            AggState::Min { best } => {
                let replace = match best {
                    None => true,
                    Some(b) => value.total_cmp(b) == std::cmp::Ordering::Less,
                };
                if replace {
                    *best = Some(value.clone());
                }
            }
            AggState::Max { best } => {
                let replace = match best {
                    None => true,
                    Some(b) => value.total_cmp(b) == std::cmp::Ordering::Greater,
                };
                if replace {
                    *best = Some(value.clone());
                }
            }
            AggState::Var { acc, .. } => {
                if let Some(x) = value.as_f64() {
                    acc.add_weighted(x, weight);
                }
            }
            AggState::Quantile(p2) => {
                if let Some(x) = value.as_f64() {
                    p2.add_weighted(x, weight);
                }
            }
            AggState::Udaf(state) => state.update(value, weight),
        }
    }

    /// [`AggState::update`] with the value's numeric conversion hoisted out:
    /// `x` must be `value.as_f64().unwrap()` and `value` must be non-null.
    /// Bit-identical to `update` — callers fold the *same* tuple into many
    /// bootstrap replicas and must not pay the `Value` match per replica.
    #[inline]
    pub fn update_numeric(&mut self, value: &Value, x: f64, weight: f64) {
        // Bit comparison, not `==`: NaN arguments are legitimate and must
        // not trip the contract check.
        debug_assert!(!value.is_null() && value.as_f64().map(f64::to_bits) == Some(x.to_bits()));
        if weight <= 0.0 {
            return;
        }
        match self {
            AggState::Count { weight_sum } => *weight_sum += weight,
            AggState::Sum {
                sum,
                weight_sum,
                saw_negative,
            } => {
                // See `update`: `add_product(x, 1.0)` ≡ `add(x)` bit-for-bit
                // for finite x, and the uniform call avoids a data-dependent
                // branch per (tuple, replica) cell.
                sum.add_product(x, weight);
                *weight_sum += weight;
                if x < 0.0 {
                    *saw_negative = true;
                }
            }
            AggState::Avg { sum, weight_sum } => {
                sum.add_product(x, weight);
                *weight_sum += weight;
            }
            AggState::Min { best } => {
                let replace = match best {
                    None => true,
                    Some(b) => value.total_cmp(b) == std::cmp::Ordering::Less,
                };
                if replace {
                    *best = Some(value.clone());
                }
            }
            AggState::Max { best } => {
                let replace = match best {
                    None => true,
                    Some(b) => value.total_cmp(b) == std::cmp::Ordering::Greater,
                };
                if replace {
                    *best = Some(value.clone());
                }
            }
            AggState::Var { acc, .. } => acc.add_weighted(x, weight),
            AggState::Quantile(p2) => p2.add_weighted(x, weight),
            AggState::Udaf(state) => state.update(value, weight),
        }
    }

    /// Merge another state of the same kind (parallel partial aggregation;
    /// panics on kind mismatch — states are paired by construction).
    /// Quantile and UDAF states do not support merging and must be
    /// maintained sequentially.
    pub fn merge(&mut self, other: &AggState) {
        match (self, other) {
            // golint: allow(merge-commutativity) -- Poisson bootstrap weights are small exact integers carried in f64; addition is exact below 2^53, hence order-free (multiset-exact)
            (AggState::Count { weight_sum: a }, AggState::Count { weight_sum: b }) => *a += b,
            (
                AggState::Sum {
                    sum: s1,
                    weight_sum: w1,
                    saw_negative: n1,
                },
                AggState::Sum {
                    sum: s2,
                    weight_sum: w2,
                    saw_negative: n2,
                },
            ) => {
                s1.merge(s2);
                // golint: allow(merge-commutativity) -- Poisson bootstrap weights are small exact integers carried in f64; addition is exact below 2^53, hence order-free (multiset-exact)
                *w1 += w2;
                *n1 |= n2;
            }
            (
                AggState::Avg {
                    sum: s1,
                    weight_sum: w1,
                },
                AggState::Avg {
                    sum: s2,
                    weight_sum: w2,
                },
            ) => {
                s1.merge(s2);
                // golint: allow(merge-commutativity) -- Poisson bootstrap weights are small exact integers carried in f64; addition is exact below 2^53, hence order-free (multiset-exact)
                *w1 += w2;
            }
            (AggState::Min { best: a }, AggState::Min { best: b }) => {
                if let Some(bv) = b {
                    let replace = match a {
                        None => true,
                        Some(av) => bv.total_cmp(av) == std::cmp::Ordering::Less,
                    };
                    if replace {
                        *a = Some(bv.clone());
                    }
                }
            }
            (AggState::Max { best: a }, AggState::Max { best: b }) => {
                if let Some(bv) = b {
                    let replace = match a {
                        None => true,
                        Some(av) => bv.total_cmp(av) == std::cmp::Ordering::Greater,
                    };
                    if replace {
                        *a = Some(bv.clone());
                    }
                }
            }
            (AggState::Var { acc: a, .. }, AggState::Var { acc: b, .. }) => a.merge(b),
            (a, b) => panic!(
                "cannot merge aggregate states of different or unmergeable kinds: {a:?} / {b:?}"
            ),
        }
    }

    /// Current aggregate value under multiplicity `scale` (`m = k/i`).
    pub fn finalize(&self, scale: f64) -> Value {
        match self {
            AggState::Count { weight_sum } => Value::Float(weight_sum * scale),
            AggState::Sum {
                sum, weight_sum, ..
            } => {
                if *weight_sum == 0.0 {
                    Value::Null
                } else {
                    Value::Float(sum.value() * scale)
                }
            }
            AggState::Avg { sum, weight_sum } => {
                if *weight_sum == 0.0 {
                    Value::Null
                } else {
                    Value::Float(sum.value() / weight_sum)
                }
            }
            AggState::Min { best } | AggState::Max { best } => best.clone().unwrap_or(Value::Null),
            AggState::Var { acc, stddev } => match acc.variance_pop() {
                Some(v) => Value::Float(if *stddev { v.sqrt() } else { v }),
                None => Value::Null,
            },
            AggState::Quantile(p2) => match p2.estimate() {
                Some(v) => Value::Float(v),
                None => Value::Null,
            },
            AggState::Udaf(state) => state.finalize(scale),
        }
    }

    /// Numeric finalize without constructing a [`Value`] — `None` when the
    /// result is null or non-numeric (MIN/MAX over strings, UDAFs).
    #[inline]
    pub fn finalize_f64(&self, scale: f64) -> Option<f64> {
        match self {
            AggState::Count { weight_sum } => Some(weight_sum * scale),
            AggState::Sum {
                sum, weight_sum, ..
            } => {
                if *weight_sum == 0.0 {
                    None
                } else {
                    Some(sum.value() * scale)
                }
            }
            AggState::Avg { sum, weight_sum } => {
                if *weight_sum == 0.0 {
                    None
                } else {
                    Some(sum.value() / weight_sum)
                }
            }
            AggState::Var { acc, stddev } => {
                acc.variance_pop()
                    .map(|v| if *stddev { v.sqrt() } else { v })
            }
            AggState::Quantile(p2) => p2.estimate(),
            AggState::Min { best } | AggState::Max { best } => {
                best.as_ref().and_then(Value::as_f64)
            }
            AggState::Udaf(state) => state.finalize(scale).as_f64(),
        }
    }

    /// A lower bound on the aggregate's *final* (full-data) value that holds
    /// regardless of the tuples still to arrive: the raw running total for
    /// COUNT and for SUM over non-negative contributions (both can only
    /// grow). `None` when no monotone bound exists.
    pub fn monotone_lower_bound(&self) -> Option<f64> {
        match self {
            AggState::Count { weight_sum } => Some(*weight_sum),
            AggState::Sum {
                sum,
                weight_sum,
                saw_negative,
            } => {
                if *saw_negative || *weight_sum == 0.0 {
                    None
                } else {
                    Some(sum.value())
                }
            }
            _ => None,
        }
    }

    /// Number of (weighted) observations folded in, where the state tracks
    /// it. Used by the executor's small-sample guards: bootstrap variation
    /// ranges over a handful of observations are not trustworthy.
    pub fn observations(&self) -> Option<f64> {
        match self {
            AggState::Count { weight_sum }
            | AggState::Sum { weight_sum, .. }
            | AggState::Avg { weight_sum, .. } => Some(*weight_sum),
            AggState::Var { acc, .. } => Some(acc.count),
            AggState::Quantile(p2) => Some(p2.count() as f64),
            AggState::Min { .. } | AggState::Max { .. } | AggState::Udaf(_) => None,
        }
    }

    /// `true` if no (positive-weight, non-null) value has been folded in.
    pub fn is_empty(&self) -> bool {
        match self {
            AggState::Count { weight_sum } => *weight_sum == 0.0,
            AggState::Sum { weight_sum, .. } | AggState::Avg { weight_sum, .. } => {
                *weight_sum == 0.0
            }
            AggState::Min { best } | AggState::Max { best } => best.is_none(),
            AggState::Var { acc, .. } => acc.count == 0.0,
            AggState::Quantile(p2) => p2.count() == 0,
            AggState::Udaf(state) => state.finalize(1.0).is_null(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(kind: &AggKind, values: &[(f64, f64)]) -> AggState {
        let mut s = kind.new_state();
        for &(v, w) in values {
            s.update(&Value::Float(v), w);
        }
        s
    }

    #[test]
    fn count_scales() {
        let s = feed(&AggKind::Count, &[(1.0, 1.0), (2.0, 1.0), (3.0, 2.0)]);
        assert_eq!(s.finalize(1.0), Value::Float(4.0));
        assert_eq!(s.finalize(2.5), Value::Float(10.0));
    }

    #[test]
    fn count_skips_nulls() {
        let mut s = AggKind::Count.new_state();
        s.update(&Value::Null, 1.0);
        s.update(&Value::Int(1), 1.0);
        assert_eq!(s.finalize(1.0), Value::Float(1.0));
    }

    #[test]
    fn sum_scales_avg_does_not() {
        let sum = feed(&AggKind::Sum, &[(10.0, 1.0), (20.0, 3.0)]);
        assert_eq!(sum.finalize(2.0), Value::Float(140.0));
        let avg = feed(&AggKind::Avg, &[(10.0, 1.0), (20.0, 3.0)]);
        assert_eq!(avg.finalize(1.0), Value::Float(17.5));
        assert_eq!(avg.finalize(99.0), Value::Float(17.5));
    }

    #[test]
    fn empty_aggregates_are_null_except_count() {
        assert_eq!(AggKind::Count.new_state().finalize(1.0), Value::Float(0.0));
        assert!(AggKind::Sum.new_state().finalize(1.0).is_null());
        assert!(AggKind::Avg.new_state().finalize(1.0).is_null());
        assert!(AggKind::Min.new_state().finalize(1.0).is_null());
        assert!(AggKind::StdDev.new_state().finalize(1.0).is_null());
        assert!(AggKind::Quantile(0.5).new_state().finalize(1.0).is_null());
    }

    #[test]
    fn min_max_over_strings() {
        let mut min = AggKind::Min.new_state();
        let mut max = AggKind::Max.new_state();
        for s in ["pear", "apple", "mango"] {
            min.update(&Value::str(s), 1.0);
            max.update(&Value::str(s), 1.0);
        }
        assert_eq!(min.finalize(1.0), Value::str("apple"));
        assert_eq!(max.finalize(1.0), Value::str("pear"));
    }

    #[test]
    fn variance_and_stddev() {
        let var = feed(&AggKind::VarPop, &[(2.0, 1.0), (4.0, 1.0), (6.0, 1.0)]);
        let v = var.finalize(1.0).as_f64().unwrap();
        assert!((v - 8.0 / 3.0).abs() < 1e-12);
        let sd = feed(&AggKind::StdDev, &[(2.0, 1.0), (4.0, 1.0), (6.0, 1.0)]);
        assert!((sd.finalize(1.0).as_f64().unwrap() - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn weighted_equals_repetition() {
        let weighted = feed(&AggKind::Avg, &[(3.0, 4.0), (9.0, 2.0)]);
        let repeated = feed(
            &AggKind::Avg,
            &[
                (3.0, 1.0),
                (3.0, 1.0),
                (3.0, 1.0),
                (3.0, 1.0),
                (9.0, 1.0),
                (9.0, 1.0),
            ],
        );
        assert_eq!(weighted.finalize(1.0), repeated.finalize(1.0));
    }

    #[test]
    fn zero_weight_is_noop() {
        let mut s = AggKind::Sum.new_state();
        s.update(&Value::Float(100.0), 0.0);
        assert!(s.finalize(1.0).is_null());
        assert!(s.is_empty());
    }

    #[test]
    fn merge_partials() {
        let mut a = feed(&AggKind::Sum, &[(1.0, 1.0), (2.0, 1.0)]);
        let b = feed(&AggKind::Sum, &[(3.0, 2.0)]);
        a.merge(&b);
        assert_eq!(a.finalize(1.0), Value::Float(9.0));

        let mut v1 = feed(&AggKind::VarPop, &[(1.0, 1.0), (2.0, 1.0)]);
        let v2 = feed(&AggKind::VarPop, &[(3.0, 1.0), (4.0, 1.0)]);
        v1.merge(&v2);
        let direct = feed(
            &AggKind::VarPop,
            &[(1.0, 1.0), (2.0, 1.0), (3.0, 1.0), (4.0, 1.0)],
        );
        assert!(
            (v1.finalize(1.0).as_f64().unwrap() - direct.finalize(1.0).as_f64().unwrap()).abs()
                < 1e-12
        );

        let mut m1 = AggKind::Min.new_state();
        m1.update(&Value::Int(5), 1.0);
        let mut m2 = AggKind::Min.new_state();
        m2.update(&Value::Int(3), 1.0);
        m1.merge(&m2);
        assert_eq!(m1.finalize(1.0), Value::Int(3));
    }

    #[test]
    #[should_panic(expected = "cannot merge")]
    fn merge_kind_mismatch_panics() {
        let mut a = AggKind::Count.new_state();
        let b = AggKind::Sum.new_state();
        a.merge(&b);
    }
}
