//! Aggregate functions for G-OLA.
//!
//! Aggregates here are **weighted**: every update carries a weight so the
//! same state type serves
//!
//! * exact batch execution (weight 1),
//! * G-OLA's multiset semantics `Q(Dᵢ, k/i)` — tuples update with weight 1
//!   and scale-sensitive aggregates (SUM/COUNT) multiply by the multiplicity
//!   `m = k/i` at *finalize* time, and
//! * poissonized bootstrap replicas — tuple `t` updates replica `b` with its
//!   deterministic `Poisson(1)` weight.
//!
//! [`replicated::ReplicatedStates`] bundles one main state plus `B` replica
//! states per aggregate and is the unit of incremental maintenance inside
//! every lineage block.

pub mod kind;
pub mod quantile;
pub mod replicated;
pub mod state;
pub mod udaf;

pub use kind::AggKind;
pub use replicated::ReplicatedStates;
pub use state::AggState;
pub use udaf::{Udaf, UdafRegistry, UdafState};
