//! Constant-space streaming quantile estimation (the P² algorithm).
//!
//! Quantile aggregates must be maintainable incrementally across hundreds of
//! bootstrap replicas, so storing all observations is out of the question.
//! P² (Jain & Chlamtac, 1985) tracks five markers whose positions follow a
//! piecewise-parabolic interpolation of the empirical CDF — O(1) space,
//! O(1) update, typically within a fraction of a percent of the exact
//! quantile for unimodal data.
//!
//! Weighted updates repeat the observation `weight` times (bootstrap
//! weights are small non-negative integers; multiplicity scaling never
//! touches quantiles because they are scale-free).

/// P² estimator of a single quantile `q`.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (estimated quantile values).
    heights: [f64; 5],
    /// Actual marker positions (1-based ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    /// Observations seen so far (before the 5 needed to initialize, they
    /// are buffered in `heights[..count]`).
    count: usize,
}

impl P2Quantile {
    pub fn new(q: f64) -> Self {
        let q = q.clamp(0.0, 1.0);
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// The quantile this estimator tracks.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Number of observations (counting weight repetitions).
    pub fn count(&self) -> usize {
        self.count
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        if self.count < 5 {
            self.heights[self.count] = x;
            self.count += 1;
            if self.count == 5 {
                self.heights.sort_by(|a, b| a.total_cmp(b));
            }
            return;
        }

        // Locate the cell containing x and update extreme markers.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut cell = 0;
            for i in 0..4 {
                if x >= self.heights[i] && x < self.heights[i + 1] {
                    cell = i;
                    break;
                }
            }
            cell
        };

        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }
        self.count += 1;

        // Adjust interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let d = d.signum();
                let parabolic = self.parabolic(i, d);
                if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
                    self.heights[i] = parabolic;
                } else {
                    self.heights[i] = self.linear(i, d);
                }
                self.positions[i] += d;
            }
        }
    }

    /// Add an observation with an integer weight (repeat semantics).
    pub fn add_weighted(&mut self, x: f64, weight: f64) {
        let w = weight.round().max(0.0) as u32;
        for _ in 0..w {
            self.add(x);
        }
    }

    /// Current estimate of the quantile. `None` before any observation.
    pub fn estimate(&self) -> Option<f64> {
        match self.count {
            0 => None,
            n if n < 5 => {
                // Small-sample: exact interpolated quantile over the buffer.
                let mut v = self.heights[..n].to_vec();
                v.sort_by(|a, b| a.total_cmp(b));
                Some(gola_common::stats::percentile_sorted(&v, self.q))
            }
            _ => Some(self.heights[2]),
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let p = &self.positions;
        let h = &self.heights;
        h[i] + d / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = (i as f64 + d) as usize;
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gola_common::rng::SplitMix64;

    fn exact_quantile(xs: &mut [f64], q: f64) -> f64 {
        xs.sort_by(|a, b| a.total_cmp(b));
        gola_common::stats::percentile_sorted(xs, q)
    }

    #[test]
    fn empty_and_small_samples() {
        let mut p = P2Quantile::new(0.5);
        assert_eq!(p.estimate(), None);
        p.add(3.0);
        assert_eq!(p.estimate(), Some(3.0));
        p.add(1.0);
        assert_eq!(p.estimate(), Some(2.0));
        p.add(2.0);
        assert_eq!(p.estimate(), Some(2.0));
    }

    #[test]
    fn uniform_median_accuracy() {
        let mut p = P2Quantile::new(0.5);
        let mut rng = SplitMix64::new(1);
        let mut xs = Vec::new();
        for _ in 0..50_000 {
            let x = rng.next_f64() * 100.0;
            p.add(x);
            xs.push(x);
        }
        let exact = exact_quantile(&mut xs, 0.5);
        let est = p.estimate().unwrap();
        assert!((est - exact).abs() < 1.0, "est {est} exact {exact}");
    }

    #[test]
    fn skewed_p95_accuracy() {
        let mut p = P2Quantile::new(0.95);
        let mut rng = SplitMix64::new(2);
        let mut xs = Vec::new();
        for _ in 0..50_000 {
            // Exponential-ish skew.
            let x = -(1.0 - rng.next_f64()).ln() * 10.0;
            p.add(x);
            xs.push(x);
        }
        let exact = exact_quantile(&mut xs, 0.95);
        let est = p.estimate().unwrap();
        assert!(
            (est - exact).abs() / exact < 0.05,
            "est {est} exact {exact}"
        );
    }

    #[test]
    fn extreme_quantiles_track_min_max() {
        let mut p0 = P2Quantile::new(0.0);
        let mut p1 = P2Quantile::new(1.0);
        let mut rng = SplitMix64::new(3);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for _ in 0..10_000 {
            let x = rng.next_f64() * 50.0 - 25.0;
            p0.add(x);
            p1.add(x);
            lo = lo.min(x);
            hi = hi.max(x);
        }
        // The extreme markers track the exact min/max.
        assert!((p0.estimate().unwrap() - lo).abs() < 1.0);
        assert!((p1.estimate().unwrap() - hi).abs() < 1.0);
    }

    #[test]
    fn weighted_updates_repeat() {
        let mut a = P2Quantile::new(0.5);
        let mut b = P2Quantile::new(0.5);
        for i in 0..100 {
            let x = i as f64;
            a.add_weighted(x, 3.0);
            for _ in 0..3 {
                b.add(x);
            }
        }
        assert_eq!(a.estimate(), b.estimate());
        assert_eq!(a.count(), 300);
        // Zero weight is a no-op.
        let (est, n) = (a.estimate(), a.count());
        a.add_weighted(1e9, 0.0);
        assert_eq!(a.estimate(), est);
        assert_eq!(a.count(), n);
    }

    #[test]
    fn constant_stream() {
        let mut p = P2Quantile::new(0.5);
        for _ in 0..1000 {
            p.add(7.0);
        }
        assert_eq!(p.estimate(), Some(7.0));
    }
}
