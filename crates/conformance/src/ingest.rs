//! The streaming-ingest leg of the conformance harness (DESIGN.md §3.12).
//!
//! Growing queries extend the bit-identity contract to mini-batches that
//! did not exist when the query started: with a **deterministic** ingest
//! schedule — appends and seals driven between iterator steps — the full
//! report stream must be identical bit for bit at `threads = 1` vs
//! `threads = N`, across same-seed reruns, and between an in-memory stream
//! and a durable one persisting every segment to disk. This leg proves it
//! generatively: for each schema class it generates M queries, derives a
//! per-case append schedule from the seed (seed fraction sealed up front,
//! one segment sealed mid-run, one tail sealed at close), runs all four
//! variants, and additionally demands that
//!
//! * the **final** report of the drained stream equals the batch engine's
//!   exact answer over the full data (order-insensitive bit equality), and
//! * a durable stream **reopened from its manifest** is closed, at the
//!   right watermark, and snapshots to the full data bit for bit.

use std::fmt;
use std::path::Path;
use std::sync::Arc;

use gola_bootstrap::BootstrapSpec;
use gola_core::{BatchReport, OnlineConfig, OnlineSession};
use gola_storage::{Catalog, StreamTable, Table};

use crate::gen::{QueryGen, SchemaClass};
use crate::oracle::{reports_identical, tables_bit_equal};

/// Execution parameters of one ingest-leg run (per schema class).
#[derive(Debug, Clone)]
pub struct IngestLegConfig {
    /// Distinct generated queries, each with its own append schedule.
    pub cases: usize,
    /// Total fact-table rows (sealed up front + appended mid-run).
    pub rows: usize,
    /// Base mini-batches over the query-start snapshot.
    pub num_batches: usize,
    /// Bootstrap trials per estimate.
    pub trials: u32,
    /// Worker threads for the `threads = N` variant.
    pub pool_threads: usize,
    /// Mini-batch partition seed (shared by every variant).
    pub partition_seed: u64,
}

impl Default for IngestLegConfig {
    fn default() -> IngestLegConfig {
        IngestLegConfig {
            cases: 12,
            rows: 360,
            num_batches: 4,
            trials: 16,
            pool_threads: 3,
            partition_seed: 0xF1_00_DB,
        }
    }
}

/// What one green ingest-leg run covered.
#[derive(Debug, Clone, Copy, Default)]
pub struct IngestLegStats {
    /// Distinct queries compared.
    pub cases: usize,
    /// Post-start segments consumed as extra mini-batches, summed.
    pub extra_batches: usize,
    /// Rows that arrived after query start, summed.
    pub appended_rows: usize,
    /// Durable streams replayed bit-exactly from their manifests.
    pub durable_replays: usize,
}

/// An ingest-leg failure, with the query and schedule attached so the
/// case is replayable by hand.
#[derive(Debug, Clone)]
pub enum IngestLegFailure {
    /// The query failed to compile.
    Compile { sql: String, detail: String },
    /// One variant failed at execution time.
    Run {
        leg: &'static str,
        sql: String,
        detail: String,
    },
    /// A variant's stream diverged from the reference stream.
    Mismatch {
        leg: &'static str,
        sql: String,
        batch: usize,
        detail: String,
    },
    /// The drained stream's final answer disagreed with the batch engine.
    Exact { sql: String, detail: String },
    /// The durable stream failed to reopen to the expected state.
    Durable { sql: String, detail: String },
}

impl IngestLegFailure {
    pub fn kind(&self) -> &'static str {
        match self {
            IngestLegFailure::Compile { .. } => "compile",
            IngestLegFailure::Run { .. } => "run",
            IngestLegFailure::Mismatch { .. } => "mismatch",
            IngestLegFailure::Exact { .. } => "exact",
            IngestLegFailure::Durable { .. } => "durable",
        }
    }
}

impl fmt::Display for IngestLegFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestLegFailure::Compile { sql, detail } => {
                write!(f, "compile failed: {detail}\n  sql: {sql}")
            }
            IngestLegFailure::Run { leg, sql, detail } => {
                write!(f, "{leg} run failed: {detail}\n  sql: {sql}")
            }
            IngestLegFailure::Mismatch {
                leg,
                sql,
                batch,
                detail,
            } => write!(
                f,
                "{leg} stream diverged from reference at batch {batch}: \
                 {detail}\n  sql: {sql}"
            ),
            IngestLegFailure::Exact { sql, detail } => write!(
                f,
                "drained stream's final answer is not exact: {detail}\n  sql: {sql}"
            ),
            IngestLegFailure::Durable { sql, detail } => {
                write!(f, "durable replay failed: {detail}\n  sql: {sql}")
            }
        }
    }
}

/// A per-case ingest schedule, derived deterministically from the seed:
/// `upfront` rows are sealed before the query starts, `mid` rows are
/// sealed as one segment after report `append_after`, and `tail` rows are
/// appended unsealed (they count toward the live N immediately) and seal
/// when the stream closes.
#[derive(Debug, Clone, Copy)]
struct Schedule {
    upfront: usize,
    mid: usize,
    tail: usize,
    append_after: usize,
}

impl Schedule {
    fn derive(rows: usize, num_batches: usize, seed: u64) -> Schedule {
        let mut s = seed;
        let mut next = move || {
            // splitmix64: cheap, well-mixed, and self-contained.
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        // 40–70% of the data exists at query start; the rest arrives live.
        let upfront = (rows * (40 + (next() % 31) as usize) / 100).max(num_batches);
        let rest = rows - upfront;
        let mid = (rest / 2).max(1);
        let tail = (rest - mid).max(1);
        // The mid-run segment lands after some base report (never the 0th:
        // an append before any report is just a bigger snapshot).
        let append_after = 1 + (next() as usize) % num_batches.max(2).saturating_sub(1);
        Schedule {
            upfront,
            mid,
            tail,
            append_after,
        }
    }
}

/// Run one query over one ingest schedule. `dir` selects the durable
/// variant. Returns the full report stream.
fn run_schedule(
    data: &Arc<Table>,
    table_name: &str,
    sql: &str,
    sch: Schedule,
    threads: usize,
    cfg: &IngestLegConfig,
    dir: Option<&Path>,
) -> Result<Vec<BatchReport>, IngestLegFailure> {
    let rows = data.rows();
    let run_err = |leg: &'static str| {
        let sql = sql.to_string();
        move |e: gola_common::Error| IngestLegFailure::Run {
            leg,
            sql,
            detail: e.to_string(),
        }
    };
    let leg = if dir.is_some() { "durable" } else { "memory" };
    let stream = match dir {
        Some(dir) => {
            StreamTable::create_dir(Arc::clone(data.schema()), dir).map_err(run_err(leg))?
        }
        None => StreamTable::new(Arc::clone(data.schema())),
    };
    stream
        .append_rows(&rows[..sch.upfront])
        .and_then(|()| stream.seal().map(|_| ()))
        .map_err(run_err(leg))?;

    let mut catalog = Catalog::new();
    catalog
        .register_stream(table_name, Arc::clone(&stream))
        .map_err(run_err(leg))?;
    let session = OnlineSession::new(
        catalog,
        OnlineConfig {
            num_batches: cfg.num_batches,
            bootstrap: BootstrapSpec::new(cfg.trials, 0x60_1A),
            partition_seed: cfg.partition_seed,
            threads,
            ..OnlineConfig::default()
        },
    );
    let mut exec = session
        .execute_online(sql)
        .map_err(|e| IngestLegFailure::Compile {
            sql: sql.to_string(),
            detail: e.to_string(),
        })?;

    let base_k = cfg.num_batches.min(sch.upfront).max(1);
    let mut reports = Vec::new();
    let step = |exec: &mut gola_core::OnlineExecution,
                reports: &mut Vec<BatchReport>|
     -> Result<(), IngestLegFailure> {
        let report = exec.next().ok_or_else(|| IngestLegFailure::Run {
            leg,
            sql: sql.to_string(),
            detail: "stream ended before the schedule drained".to_string(),
        })?;
        reports.push(report.map_err(run_err(leg))?);
        Ok(())
    };
    for i in 0..base_k {
        if i == sch.append_after {
            // One segment seals mid-run (a future extra batch); the tail
            // stays buffered — visible to the live N, not yet queryable.
            let mid_end = sch.upfront + sch.mid;
            stream
                .append_rows(&rows[sch.upfront..mid_end])
                .and_then(|()| stream.seal().map(|_| ()))
                .and_then(|()| stream.append_rows(&rows[mid_end..]))
                .map_err(run_err(leg))?;
        }
        step(&mut exec, &mut reports)?;
    }
    // The mid-run segment surfaces as an extra batch; closing seals the
    // buffered tail into the final one.
    step(&mut exec, &mut reports)?;
    stream.close().map_err(run_err(leg))?;
    for r in exec {
        reports.push(r.map_err(run_err(leg))?);
    }
    Ok(reports)
}

/// Run the ingest leg for one schema class under `seed`.
pub fn run_ingest_leg(
    class: SchemaClass,
    seed: u64,
    cfg: &IngestLegConfig,
) -> Result<IngestLegStats, IngestLegFailure> {
    let data = Arc::new(class.generate(cfg.rows, seed ^ 0xDA7A));
    // Generators may round the row count up (e.g. whole orders); the
    // schedule and watermark checks go by what was actually generated.
    let total_rows = data.num_rows();
    let name = class.table_name();

    // The exact oracle: the full data as a plain static table.
    let mut exact_catalog = Catalog::new();
    exact_catalog
        .register(name, Arc::clone(&data))
        .map_err(|e| IngestLegFailure::Compile {
            sql: String::new(),
            detail: e.to_string(),
        })?;
    let exact_session = OnlineSession::new(exact_catalog, OnlineConfig::default());

    let mut gen = QueryGen::new(class, &data, seed);
    let mut seen = std::collections::BTreeSet::new();
    let mut stats = IngestLegStats::default();
    let scratch = std::env::temp_dir().join(format!(
        "gola-ingest-leg-{class}-{seed:x}-{}",
        std::process::id()
    ));

    while stats.cases < cfg.cases {
        let sql = gen.next_query().sql(name);
        if !seen.insert(sql.clone()) {
            continue;
        }
        let case = stats.cases as u64;
        let sch = Schedule::derive(total_rows, cfg.num_batches, seed ^ (case << 32) ^ case);

        // Reference: threads = 1, in-memory.
        let reference = run_schedule(&data, name, &sql, sch, 1, cfg, None)?;
        let base_k = cfg.num_batches.min(sch.upfront).max(1);
        stats.extra_batches += reference.len() - base_k;
        stats.appended_rows += sch.mid + sch.tail;

        // Same-seed rerun and threads = N: bit-identical streams.
        for (leg, threads) in [("rerun", 1), ("threads", cfg.pool_threads)] {
            let got = run_schedule(&data, name, &sql, sch, threads, cfg, None)?;
            reports_identical(&reference, &got).map_err(|(batch, detail)| {
                IngestLegFailure::Mismatch {
                    leg,
                    sql: sql.clone(),
                    batch,
                    detail,
                }
            })?;
        }

        // Durable variant: the same schedule through segment files.
        let dir = scratch.join(format!("case-{case}"));
        let _ = std::fs::remove_dir_all(&dir);
        let durable = run_schedule(&data, name, &sql, sch, 1, cfg, Some(&dir))?;
        reports_identical(&reference, &durable).map_err(|(batch, detail)| {
            IngestLegFailure::Mismatch {
                leg: "durable",
                sql: sql.clone(),
                batch,
                detail,
            }
        })?;
        // Reopen from the manifest: closed, full watermark, lossless rows.
        let reopened = StreamTable::open_dir(&dir).map_err(|e| IngestLegFailure::Durable {
            sql: sql.clone(),
            detail: e.to_string(),
        })?;
        let durable_err = |detail: String| IngestLegFailure::Durable {
            sql: sql.clone(),
            detail,
        };
        if !reopened.is_closed() {
            return Err(durable_err("reopened stream is not closed".to_string()));
        }
        if reopened.watermark() != total_rows as u64 {
            return Err(durable_err(format!(
                "reopened watermark {} != {} rows",
                reopened.watermark(),
                total_rows
            )));
        }
        let snapshot = reopened
            .snapshot()
            .map_err(|e| durable_err(e.to_string()))?;
        tables_bit_equal(&snapshot, &data).map_err(durable_err)?;
        let _ = std::fs::remove_dir_all(&dir);
        stats.durable_replays += 1;

        // The drained stream's final report must be the exact answer.
        let exact = exact_session
            .execute_exact(&sql)
            .map_err(|e| IngestLegFailure::Exact {
                sql: sql.clone(),
                detail: e.to_string(),
            })?;
        let last = reference.last().expect("schedule yields reports");
        tables_bit_equal(&last.table, &exact).map_err(|detail| IngestLegFailure::Exact {
            sql: sql.clone(),
            detail,
        })?;

        stats.cases += 1;
    }
    let _ = std::fs::remove_dir_all(&scratch);
    Ok(stats)
}
