//! Failure minimization: shrink a failing case to the smallest query AST
//! and row prefix that still fails with the same failure kind, and package
//! it as a replayable artifact.
//!
//! Shrinking is greedy and two-phase:
//!
//! 1. **AST pruning** — repeatedly try structural reductions (drop an
//!    aggregate, drop a filter, strip HAVING/ORDER BY/GROUP BY, simplify a
//!    subquery filter to a plain comparison) until no reduction preserves
//!    the failure.
//! 2. **Row reduction** — binary-search the shortest data *prefix* that
//!    still fails. Prefixes (rather than arbitrary subsets) keep the
//!    artifact replayable from `(schema, data_seed, rows)` alone: the
//!    deterministic generator regenerates the exact table.
//!
//! The whole search is capped by [`ShrinkConfig::budget`] oracle runs, so a
//! pathological case can't stall a soak run.

use std::fmt;
use std::sync::Arc;

use gola_storage::Table;

use crate::calib::{calibrate, CalibClass, CalibConfig, CalibReport};
use crate::gen::{Filter, Query, SchemaClass};
use crate::oracle::{run_case, Failure, Fault, OracleConfig};

/// Shrinker limits.
#[derive(Debug, Clone)]
pub struct ShrinkConfig {
    /// Maximum oracle invocations across both phases.
    pub budget: usize,
    /// Row floor: don't shrink the table below this many rows (the online
    /// executor needs at least one tuple per batch).
    pub min_rows: usize,
}

impl Default for ShrinkConfig {
    fn default() -> Self {
        ShrinkConfig {
            budget: 200,
            min_rows: 16,
        }
    }
}

/// A minimized, replayable failing case. Everything needed to reproduce:
/// the deterministic data recipe (`schema`, `data_seed`, `rows`), the exact
/// SQL, and the oracle parameters.
#[derive(Debug, Clone)]
pub struct Artifact {
    pub schema: SchemaClass,
    pub data_seed: u64,
    pub rows: usize,
    pub sql: String,
    pub key_cols: usize,
    pub oracle: OracleConfig,
    pub fault: Fault,
    pub failure: Failure,
    /// Oracle runs spent shrinking.
    pub runs_used: usize,
}

impl Artifact {
    /// Re-run the minimized case and return its failure, if it still fails
    /// (replay check for tests and for humans pasting from a soak log).
    pub fn replay(&self) -> Option<Failure> {
        let data = Arc::new(self.schema.generate(self.rows, self.data_seed));
        run_case(
            self.schema,
            &data,
            &self.sql,
            self.key_cols,
            &self.oracle,
            self.fault,
        )
        .err()
    }
}

impl fmt::Display for Artifact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "--- conformance failure artifact ---")?;
        writeln!(f, "schema:         {}", self.schema)?;
        writeln!(f, "data_seed:      {:#x}", self.data_seed)?;
        writeln!(f, "rows:           {}", self.rows)?;
        writeln!(f, "partition_seed: {:#x}", self.oracle.partition_seed)?;
        writeln!(
            f,
            "batches/trials: {}/{}",
            self.oracle.num_batches, self.oracle.trials
        )?;
        writeln!(f, "failure:        {}", self.failure)?;
        writeln!(f, "sql:            {}", self.sql)?;
        write!(f, "------------------------------------")
    }
}

/// Shrink a failing `(query, data)` case. `data_seed`/`rows` must be the
/// recipe that produced `data`. Returns the minimized artifact; if nothing
/// shrinks, the artifact is the original case.
#[allow(clippy::too_many_arguments)] // a replay recipe simply has this many parts
pub fn shrink(
    class: SchemaClass,
    data_seed: u64,
    rows: usize,
    query: &Query,
    oracle: &OracleConfig,
    fault: Fault,
    failure: &Failure,
    cfg: &ShrinkConfig,
) -> Artifact {
    let kind = failure.kind();
    let mut runs_used = 0;
    let table = class.table_name();

    // One oracle probe: does `(q, n)` still fail the same way?
    let probe = |q: &Query, n: usize, runs_used: &mut usize| -> Option<Failure> {
        if *runs_used >= cfg.budget {
            return None;
        }
        *runs_used += 1;
        let data = Arc::new(class.generate(n, data_seed));
        match run_case(class, &data, &q.sql(table), q.key_cols(), oracle, fault) {
            Err(f) if f.kind() == kind => Some(f),
            _ => None,
        }
    };

    // Phase 1: greedy AST pruning to a fixpoint.
    let mut best = query.clone();
    let mut best_failure = failure.clone();
    loop {
        let mut reduced = false;
        for candidate in reductions(&best) {
            if let Some(f) = probe(&candidate, rows, &mut runs_used) {
                best = candidate;
                best_failure = f;
                reduced = true;
                break;
            }
        }
        if !reduced || runs_used >= cfg.budget {
            break;
        }
    }

    // Phase 2: binary-search the shortest failing row prefix.
    let mut n_fail = rows; // known to fail
    let mut n_pass = cfg.min_rows.saturating_sub(1); // assumed (not probed) to pass
    while n_fail - n_pass > 1 && runs_used < cfg.budget {
        let mid = n_pass + (n_fail - n_pass) / 2;
        if mid < cfg.min_rows {
            break;
        }
        match probe(&best, mid, &mut runs_used) {
            Some(f) => {
                n_fail = mid;
                best_failure = f;
            }
            None => n_pass = mid,
        }
    }

    Artifact {
        schema: class,
        data_seed,
        rows: n_fail,
        sql: best.sql(table),
        key_cols: best.key_cols(),
        oracle: oracle.clone(),
        fault,
        failure: best_failure,
        runs_used,
    }
}

/// All single-step structural reductions of a query, roughly largest
/// simplification first (so the greedy loop takes big steps early).
fn reductions(q: &Query) -> Vec<Query> {
    let mut out = Vec::new();
    // Drop whole clauses.
    if q.order_by.is_some() {
        let mut c = q.clone();
        c.order_by = None;
        out.push(c);
    }
    if q.having.is_some() {
        let mut c = q.clone();
        c.having = None;
        out.push(c);
    }
    if q.group_by.is_some() && q.having.is_none() {
        let mut c = q.clone();
        c.group_by = None;
        // An ORDER BY on the group alias would dangle.
        c.order_by = None;
        out.push(c);
    }
    // Drop one filter at a time.
    for i in 0..q.filters.len() {
        let mut c = q.clone();
        c.filters.remove(i);
        if c.filters.len() < 2 {
            c.filters_or = false;
        }
        out.push(c);
    }
    // Simplify a subquery filter to a plain comparison against a constant
    // (keeps selectivity pressure while removing the nested aggregate).
    for (i, f) in q.filters.iter().enumerate() {
        let simpler = match f {
            &Filter::ScalarSub {
                ref col,
                op,
                factor,
                ..
            }
            | &Filter::CorrSub {
                ref col,
                op,
                factor,
                ..
            } => Some(Filter::Cmp {
                col: col.clone(),
                op,
                rhs: factor,
            }),
            _ => None,
        };
        if let Some(s) = simpler {
            let mut c = q.clone();
            c.filters[i] = s;
            out.push(c);
        }
        // A guarded scalar subquery also shrinks by dropping its guard.
        if let Filter::ScalarSub { guard: Some(_), .. } = f {
            let mut c = q.clone();
            if let Filter::ScalarSub { guard, .. } = &mut c.filters[i] {
                *guard = None;
            }
            out.push(c);
        }
    }
    // Drop one aggregate at a time (keep at least one).
    if q.aggs.len() > 1 {
        for i in 0..q.aggs.len() {
            let mut c = q.clone();
            c.aggs.remove(i);
            // Output aliases renumber, so an ORDER BY on an agg alias may
            // dangle; drop it for safety.
            c.order_by = None;
            out.push(c);
        }
    }
    out
}

/// A minimized, replayable *calibration* failure: the smallest seed count
/// and dataset size at which a query class still fails its binomial band.
/// A calibration failure has no single failing input to shrink — the
/// evidence is a coverage count — so minimization shrinks the experiment
/// itself instead, down to the cheapest replay that still demonstrates the
/// miscalibration.
#[derive(Debug, Clone)]
pub struct CalibArtifact {
    pub class: CalibClass,
    pub cfg: CalibConfig,
    pub fault: Fault,
    pub report: CalibReport,
    /// Calibration runs spent shrinking (including the initial full run).
    pub runs_used: usize,
}

impl CalibArtifact {
    /// Re-run the minimized experiment (replay check).
    pub fn replay(&self) -> CalibReport {
        calibrate(&self.class, &self.cfg, self.fault)
    }
}

impl fmt::Display for CalibArtifact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "--- calibration failure artifact ---")?;
        writeln!(
            f,
            "class:       {} ({})",
            self.class.kind, self.class.schema
        )?;
        writeln!(f, "sql:         {}", self.class.sql)?;
        writeln!(
            f,
            "recipe:      seeds={} rows={} k={} trials={} batch={}",
            self.cfg.seeds,
            self.cfg.rows,
            self.cfg.num_batches,
            self.cfg.trials,
            self.cfg.report_batch
        )?;
        writeln!(f, "result:      {}", self.report)?;
        write!(f, "------------------------------------")
    }
}

/// Shrink a failing calibration class to the smallest `(seeds, rows)` that
/// still fails the band. Returns `None` if the class passes at `base` (a
/// passing experiment has nothing to minimize).
pub fn shrink_calibration(
    class: &CalibClass,
    base: &CalibConfig,
    fault: Fault,
) -> Option<CalibArtifact> {
    const MIN_SEEDS: usize = 20;
    let full = calibrate(class, base, fault);
    if full.pass {
        return None;
    }
    let mut runs_used = 1;
    let mut cfg = base.clone();
    let mut report = full;

    // Probe: does the experiment still fail at this size? (Each probe is a
    // complete calibration run; shrinking seeds first makes the later row
    // probes cheap.)
    let probe = |cfg: &CalibConfig, runs_used: &mut usize| -> Option<CalibReport> {
        *runs_used += 1;
        let r = calibrate(class, cfg, fault);
        (!r.pass).then_some(r)
    };

    // Phase 1: binary-search the smallest failing seed count.
    let mut fail_n = cfg.seeds;
    let mut pass_n = MIN_SEEDS - 1; // assumed (not probed) floor
    while fail_n - pass_n > 1 {
        let mid = pass_n + (fail_n - pass_n) / 2;
        if mid < MIN_SEEDS {
            break;
        }
        let c = CalibConfig {
            seeds: mid,
            ..cfg.clone()
        };
        match probe(&c, &mut runs_used) {
            Some(r) => {
                fail_n = mid;
                report = r;
            }
            None => pass_n = mid,
        }
    }
    cfg.seeds = fail_n;

    // Phase 2: binary-search the smallest failing dataset.
    let min_rows = (cfg.num_batches * 8).max(16);
    let mut fail_rows = cfg.rows;
    let mut pass_rows = min_rows - 1;
    while fail_rows - pass_rows > 1 {
        let mid = pass_rows + (fail_rows - pass_rows) / 2;
        if mid < min_rows {
            break;
        }
        let c = CalibConfig {
            rows: mid,
            ..cfg.clone()
        };
        match probe(&c, &mut runs_used) {
            Some(r) => {
                fail_rows = mid;
                report = r;
            }
            None => pass_rows = mid,
        }
    }
    cfg.rows = fail_rows;

    Some(CalibArtifact {
        class: class.clone(),
        cfg,
        fault,
        report,
        runs_used,
    })
}

/// Convenience: shrink against an already generated table (regenerating it
/// from the recipe each probe). Used by the soak binary.
pub fn shrink_case(
    class: SchemaClass,
    data_seed: u64,
    data: &Arc<Table>,
    query: &Query,
    oracle: &OracleConfig,
    fault: Fault,
    failure: &Failure,
) -> Artifact {
    shrink(
        class,
        data_seed,
        data.num_rows(),
        query,
        oracle,
        fault,
        failure,
        &ShrinkConfig::default(),
    )
}
