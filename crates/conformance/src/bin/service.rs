//! `gola-service` — the release-mode multi-tenant conformance runner
//! (`scripts/check.sh --service`).
//!
//! Runs the service leg ([`gola_conformance::run_service_leg`]) at volume:
//! M generated queries per schema, interleaved through one fair scheduler
//! on a shared worker pool under a deliberately tight admission window,
//! every session's stream compared bit-for-bit against its solo
//! single-threaded reference. Exit status is non-zero iff any leg fails.
//!
//! ```text
//! gola-service [--cases N] [--seed S] [--rows R] [--pool-threads T]
//!              [--max-active A] [--queue Q] [--quick]
//! ```

use std::process::ExitCode;

use gola_conformance::{run_service_leg, SchemaClass, ServiceLegConfig};

struct Args {
    cases: usize,
    seed: u64,
    rows: usize,
    pool_threads: usize,
    max_active: usize,
    queue_capacity: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cases: 60,
        seed: 0x05E4_A1CE,
        rows: 800,
        pool_threads: 2,
        max_active: 3,
        queue_capacity: 2,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut grab = |what: &str| it.next().ok_or_else(|| format!("{what} needs a value"));
        match flag.as_str() {
            "--cases" => args.cases = grab("--cases")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = grab("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--rows" => args.rows = grab("--rows")?.parse().map_err(|e| format!("{e}"))?,
            "--pool-threads" => {
                args.pool_threads = grab("--pool-threads")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--max-active" => {
                args.max_active = grab("--max-active")?.parse().map_err(|e| format!("{e}"))?
            }
            "--queue" => {
                args.queue_capacity = grab("--queue")?.parse().map_err(|e| format!("{e}"))?
            }
            "--quick" => {
                args.cases = 16;
                args.rows = 360;
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("gola-service: {e}");
            return ExitCode::from(2);
        }
    };

    let cfg = ServiceLegConfig {
        cases: args.cases,
        rows: args.rows,
        pool_threads: args.pool_threads,
        max_active: args.max_active,
        queue_capacity: args.queue_capacity,
        ..ServiceLegConfig::default()
    };

    let mut failed = false;
    for class in [SchemaClass::Conviva, SchemaClass::Tpch] {
        match run_service_leg(class, args.seed, &cfg) {
            Ok(stats) => {
                println!(
                    "service {class}: {} cases bit-identical interleaved vs solo \
                     ({} rounds, {} queued admissions, {} saturation stalls)",
                    stats.cases, stats.rounds, stats.queued_admissions, stats.saturation_stalls
                );
                // A run that never queued proves nothing about admission;
                // fail loudly rather than report hollow coverage.
                if stats.queued_admissions == 0 {
                    eprintln!(
                        "service {class}: admission queue never exercised — \
                         tighten --max-active/--queue or raise --cases"
                    );
                    failed = true;
                }
            }
            Err(f) => {
                eprintln!("service {class}: FAILED [{}]\n  {f}", f.kind());
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
