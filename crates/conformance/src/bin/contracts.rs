//! `gola-contracts` — the release-mode contract-conformance runner
//! (`scripts/check.sh --contracts`).
//!
//! Four legs, exit status non-zero iff any fails:
//!
//! 1. **Contract oracle, clean** — every default `ERROR p% CONFIDENCE c%`
//!    class over ≥ 200 seeded datasets: zero promise violations, coverage
//!    inside the exact binomial band. Failures shrink to a replayable
//!    artifact.
//! 2. **Planted bug** — the absolute-instead-of-relative stopping rule
//!    ([`Fault::AbsoluteStop`]) must be *caught* on the small-magnitude
//!    `rate` class and shrunk; a green run here would mean the oracle lost
//!    its teeth.
//! 3. **Generated contract queries** — the conformance generator's
//!    `ERROR`/`WITHIN` emissions compile, run online, and annotate every
//!    report with contract progress and a final stop reason; `WITHIN` runs
//!    respect their deadline (with scheduling slack).
//! 4. **Stratified rare-group convergence** — on a geo-skewed dataset, the
//!    stratified partitioner must reach a grouped error target in fewer
//!    batches than the uniform partitioner (EXPERIMENTS.md table; `csv,`
//!    lines for scraping).

use std::process::ExitCode;
use std::sync::Arc;

use gola_conformance::{
    check_contract, default_contract_classes, shrink_contract, ContractConfig, Fault, QueryGen,
    SchemaClass,
};
use gola_core::{ContractStop, OnlineConfig, OnlineSession};
use gola_plan::QueryContract;
use gola_storage::Catalog;
use gola_workloads::ConvivaGenerator;

struct Args {
    seeds: usize,
    gen_cases: usize,
    convergence_seeds: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: 200,
        gen_cases: 40,
        convergence_seeds: 5,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut grab = |what: &str| it.next().ok_or_else(|| format!("{what} needs a value"));
        match flag.as_str() {
            "--seeds" => args.seeds = grab("--seeds")?.parse().map_err(|e| format!("{e}"))?,
            "--gen-cases" => {
                args.gen_cases = grab("--gen-cases")?.parse().map_err(|e| format!("{e}"))?
            }
            "--quick" => {
                args.seeds = 60;
                args.gen_cases = 15;
                args.convergence_seeds = 3;
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

/// Leg 3: generated contract queries run end-to-end with progress attached.
fn generated_contracts_leg(cases: usize) -> usize {
    let mut failures = 0;
    for class in [SchemaClass::Conviva, SchemaClass::Tpch] {
        let data = Arc::new(class.generate(600, 0xC0_47AC7));
        let mut catalog = Catalog::new();
        catalog
            .register(class.table_name(), Arc::clone(&data))
            .unwrap();
        let mut gen = QueryGen::new(class, &data, 0x9E_27AC);
        let mut seen = std::collections::BTreeSet::new();
        let (mut errors, mut withins) = (0usize, 0usize);
        while seen.len() < cases {
            let q = gen.next_contract_query();
            let sql = q.sql(class.table_name());
            if !seen.insert(sql.clone()) {
                continue;
            }
            let config = OnlineConfig::for_tests(6).with_trials(24);
            let session = OnlineSession::new(catalog.clone(), config);
            let started = gola_common::timing::Stopwatch::start();
            let run: Result<Vec<_>, _> = match session.execute_online(&sql) {
                Ok(exec) => exec.collect(),
                Err(e) => {
                    eprintln!("FAIL [{class}] contract query rejected: {e}\n  sql: {sql}");
                    failures += 1;
                    continue;
                }
            };
            let reports = match run {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("FAIL [{class}] contract run errored: {e}\n  sql: {sql}");
                    failures += 1;
                    continue;
                }
            };
            let elapsed = started.elapsed().as_secs_f64();
            if reports.iter().any(|r| r.contract.is_none()) {
                eprintln!("FAIL [{class}] report without contract progress\n  sql: {sql}");
                failures += 1;
                continue;
            }
            let stop = reports.last().and_then(|r| r.contract.as_ref()?.stop);
            match q.contract.expect("contracted query") {
                QueryContract::Error { .. } => {
                    errors += 1;
                    if !matches!(
                        stop,
                        Some(ContractStop::ErrorTargetMet | ContractStop::Exhausted)
                    ) {
                        eprintln!("FAIL [{class}] ERROR run stopped with {stop:?}\n  sql: {sql}");
                        failures += 1;
                    }
                }
                QueryContract::Within { seconds } => {
                    withins += 1;
                    if !matches!(
                        stop,
                        Some(ContractStop::DeadlineReached | ContractStop::Exhausted)
                    ) {
                        eprintln!("FAIL [{class}] WITHIN run stopped with {stop:?}\n  sql: {sql}");
                        failures += 1;
                    }
                    // Generous slack: the run may overshoot by one batch
                    // (plus scheduling noise), never by the whole table.
                    if elapsed > seconds * 4.0 + 1.0 {
                        eprintln!(
                            "FAIL [{class}] WITHIN {seconds}s ran {elapsed:.2}s\n  sql: {sql}"
                        );
                        failures += 1;
                    }
                }
            }
        }
        println!(
            "[generated] {class}: {} contract queries ok ({errors} ERROR, {withins} WITHIN)",
            seen.len()
        );
    }
    failures
}

/// Leg 4: batches-to-target for a rare group, uniform vs stratified.
fn convergence_leg(seeds: u64) -> usize {
    const SQL: &str =
        "SELECT geo, AVG(play_time) FROM sessions GROUP BY geo ERROR 10% CONFIDENCE 95%";
    const ROWS: usize = 4000;
    const K: usize = 16;
    let mut failures = 0;
    let mut rows_out = Vec::new();
    println!("[convergence] rare-group (~1%) batches-to-10%-error, k = {K}, n = {ROWS}:");
    for seed in 0..seeds {
        let table = Arc::new(
            ConvivaGenerator {
                seed: 0xF_EED5 + seed * 7919,
                geo_skew: true,
                ..Default::default()
            }
            .generate(ROWS),
        );
        let mut catalog = Catalog::new();
        catalog.register("sessions", table).unwrap();
        let stop_batch = |stratify: bool| -> usize {
            let mut config = OnlineConfig::for_tests(K).with_trials(64);
            config.partition_seed = 0x9A_27 ^ seed;
            if stratify {
                config = config.with_stratify_column("geo");
            }
            let session = OnlineSession::new(catalog.clone(), config);
            let reports: Vec<_> = session
                .execute_online(SQL)
                .expect("query compiles")
                .collect::<Result<Vec<_>, _>>()
                .expect("batches succeed");
            reports.last().expect("at least one report").batch_index + 1
        };
        let uniform = stop_batch(false);
        let stratified = stop_batch(true);
        println!("  seed {seed}: uniform {uniform:>2} batches, stratified {stratified:>2} batches");
        println!("csv,convergence,{seed},{uniform},{stratified}");
        rows_out.push((uniform, stratified));
    }
    let mean = |xs: &[usize]| xs.iter().sum::<usize>() as f64 / xs.len() as f64;
    let u: Vec<usize> = rows_out.iter().map(|r| r.0).collect();
    let s: Vec<usize> = rows_out.iter().map(|r| r.1).collect();
    println!(
        "  mean: uniform {:.1}, stratified {:.1}",
        mean(&u),
        mean(&s)
    );
    if mean(&s) >= mean(&u) {
        eprintln!("FAIL [convergence] stratified did not converge faster");
        failures += 1;
    }
    failures
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("gola-contracts: {e}");
            return ExitCode::from(2);
        }
    };
    let cfg = ContractConfig {
        seeds: args.seeds,
        ..ContractConfig::default()
    };
    let mut failures = 0usize;

    // Leg 1: clean oracle.
    for class in default_contract_classes() {
        let report = check_contract(&class, &cfg, Fault::None);
        println!("[contract] {report}");
        if !report.pass {
            failures += 1;
            if let Some(artifact) = shrink_contract(&class, &cfg, Fault::None) {
                eprintln!("{artifact}");
            }
        }
    }

    // Leg 2: the planted absolute-stopping bug must be caught and shrunk.
    let rate = default_contract_classes()
        .into_iter()
        .find(|c| c.kind == "rate")
        .expect("rate class present");
    match shrink_contract(&rate, &cfg, Fault::AbsoluteStop) {
        Some(artifact) => {
            println!(
                "[planted] absolute stopping rule caught on '{}' ({} violations at seeds={} rows={})",
                rate.kind, artifact.report.violations, artifact.cfg.seeds, artifact.cfg.rows
            );
            println!("{artifact}");
        }
        None => {
            eprintln!("FAIL [planted] AbsoluteStop fault was NOT caught — oracle has no teeth");
            failures += 1;
        }
    }

    // Leg 3 + 4.
    failures += generated_contracts_leg(args.gen_cases);
    failures += convergence_leg(args.convergence_seeds);

    println!(
        "contracts: {} classes + planted bug + generated queries + convergence, {failures} failure(s)",
        default_contract_classes().len()
    );
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
