//! `gola-soak` — the release-mode conformance soak runner.
//!
//! Runs a much larger generated corpus than the `cargo test` smoke tier,
//! plus full-size calibration, and prints a replayable artifact for every
//! failure. Exit status is non-zero iff anything failed.
//!
//! ```text
//! gola-soak [--cases N] [--seed S] [--rows R] [--calib-seeds N] [--quick]
//!           [--metrics-out PATH]
//! ```
//!
//! `--metrics-out` enables the observability registry for the whole soak and
//! writes its JSON snapshot (plus `PATH.prom` Prometheus text) at the end.

use std::process::ExitCode;
use std::sync::Arc;

use gola_conformance::{
    calibrate, default_classes, shrink, CalibConfig, Fault, OracleConfig, QueryGen, SchemaClass,
    ShrinkConfig,
};

struct Args {
    cases: usize,
    seed: u64,
    rows: usize,
    calib_seeds: usize,
    metrics_out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cases: 400,
        seed: 0x50AC,
        rows: 1200,
        calib_seeds: 300,
        metrics_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut grab = |what: &str| it.next().ok_or_else(|| format!("{what} needs a value"));
        match flag.as_str() {
            "--cases" => args.cases = grab("--cases")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = grab("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--rows" => args.rows = grab("--rows")?.parse().map_err(|e| format!("{e}"))?,
            "--calib-seeds" => {
                args.calib_seeds = grab("--calib-seeds")?.parse().map_err(|e| format!("{e}"))?
            }
            "--quick" => {
                args.cases = 60;
                args.rows = 400;
                args.calib_seeds = 200;
            }
            "--metrics-out" => args.metrics_out = Some(grab("--metrics-out")?),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("gola-soak: {e}");
            return ExitCode::from(2);
        }
    };

    if args.metrics_out.is_some() {
        gola_obs::set_enabled(true);
    }

    let oracle = OracleConfig {
        num_batches: 8,
        trials: 32,
        threads: 4,
        partition_seed: args.seed ^ 0xF1_00_DB,
    };
    let mut failures = 0usize;
    let mut total = 0usize;

    for class in [SchemaClass::Conviva, SchemaClass::Tpch] {
        let data_seed = args.seed ^ 0xDA7A;
        let data = Arc::new(class.generate(args.rows, data_seed));
        let rows = data.num_rows();
        let mut gen = QueryGen::new(class, &data, args.seed);
        let mut seen = std::collections::BTreeSet::new();
        let mut stats_recomputes = 0usize;
        while seen.len() < args.cases {
            let query = gen.next_query();
            let sql = query.sql(class.table_name());
            if !seen.insert(sql.clone()) {
                continue;
            }
            total += 1;
            match gola_conformance::run_case(
                class,
                &data,
                &sql,
                query.key_cols(),
                &oracle,
                Fault::None,
            ) {
                Ok(stats) => stats_recomputes += stats.recomputations,
                Err(failure) => {
                    failures += 1;
                    eprintln!("FAIL [{class}] {failure}\n  sql: {sql}");
                    let artifact = shrink(
                        class,
                        data_seed,
                        rows,
                        &query,
                        &oracle,
                        Fault::None,
                        &failure,
                        &ShrinkConfig::default(),
                    );
                    eprintln!("{artifact}");
                }
            }
        }
        println!(
            "[{class}] {} cases ok ({} recomputations observed)",
            args.cases, stats_recomputes
        );
    }

    let calib_cfg = CalibConfig {
        seeds: args.calib_seeds,
        ..CalibConfig::default()
    };
    for class in default_classes() {
        let report = calibrate(&class, &calib_cfg, Fault::None);
        println!("[calibration] {report}");
        if !report.pass {
            failures += 1;
        }
    }

    println!(
        "soak: {total} differential cases + {} calibration classes, {failures} failure(s)",
        default_classes().len()
    );
    if let Some(path) = &args.metrics_out {
        if let Err(e) = std::fs::write(path, gola_obs::snapshot_json(false))
            .and_then(|()| std::fs::write(format!("{path}.prom"), gola_obs::prometheus(false)))
        {
            eprintln!("gola-soak: writing metrics to {path}: {e}");
            return ExitCode::from(2);
        }
        println!("wrote metrics snapshot to {path} (and {path}.prom)");
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
