//! `gola-ingest` — the release-mode streaming-ingest conformance runner
//! (`scripts/check.sh --ingest`).
//!
//! Runs the ingest leg ([`gola_conformance::run_ingest_leg`]) at volume:
//! M generated queries per schema, each over a stream that grows under the
//! query via a seed-derived append schedule, with four variants per case
//! (reference, same-seed rerun, `threads = N`, durable segments) compared
//! bit for bit, the drained final answer checked against the batch
//! engine, and every durable stream replayed from its manifest. Exit
//! status is non-zero iff any leg fails.
//!
//! ```text
//! gola-ingest [--cases N] [--seed S] [--rows R] [--pool-threads T]
//!             [--quick]
//! ```

use std::process::ExitCode;

use gola_conformance::{run_ingest_leg, IngestLegConfig, SchemaClass};

struct Args {
    cases: usize,
    seed: u64,
    rows: usize,
    pool_threads: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cases: 40,
        seed: 0x16E5_7A11,
        rows: 720,
        pool_threads: 3,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut grab = |what: &str| it.next().ok_or_else(|| format!("{what} needs a value"));
        match flag.as_str() {
            "--cases" => args.cases = grab("--cases")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = grab("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--rows" => args.rows = grab("--rows")?.parse().map_err(|e| format!("{e}"))?,
            "--pool-threads" => {
                args.pool_threads = grab("--pool-threads")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--quick" => {
                args.cases = 10;
                args.rows = 360;
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("gola-ingest: {e}");
            return ExitCode::from(2);
        }
    };

    let cfg = IngestLegConfig {
        cases: args.cases,
        rows: args.rows,
        pool_threads: args.pool_threads,
        ..IngestLegConfig::default()
    };

    let mut failed = false;
    for class in [SchemaClass::Conviva, SchemaClass::Tpch] {
        match run_ingest_leg(class, args.seed, &cfg) {
            Ok(stats) => {
                println!(
                    "ingest {class}: {} cases bit-identical across rerun/threads/durable \
                     ({} extra batches from {} appended rows, {} durable replays)",
                    stats.cases, stats.extra_batches, stats.appended_rows, stats.durable_replays
                );
                // A run whose streams never grew proves nothing about
                // moving N; fail loudly rather than report hollow coverage.
                if stats.extra_batches == 0 {
                    eprintln!(
                        "ingest {class}: no post-start segment ever became a batch — \
                         schedule derivation is broken"
                    );
                    failed = true;
                }
            }
            Err(f) => {
                eprintln!("ingest {class}: FAILED [{}]\n  {f}", f.kind());
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
