//! Seeded, shrinkable query generator over the workload schemas.
//!
//! Queries are held as a small AST ([`Query`]) rather than raw SQL so the
//! shrinker can prune clauses structurally; [`Query::sql`] renders the
//! dialect the `gola-sql` front end accepts. Thresholds are drawn from the
//! actual column distributions (quantiles of the generated data), so
//! predicates land in the selectivity band where classification is
//! interesting instead of trivially-all or trivially-none.
//!
//! The grammar (see DESIGN.md §3.7) covers: 1–3 aggregates over column or
//! product arguments; conjunctive/disjunctive filters mixing constant
//! comparisons, uncorrelated and correlated scalar-aggregate subqueries,
//! grouped `IN` membership subqueries, and predicates whose inner subquery
//! can be *empty* (a NULL threshold — the three-valued-logic path); GROUP
//! BY on keys or `floor` buckets; HAVING against constants or a fraction of
//! a grand total (Q11-style); ORDER BY on output aliases. QUANTILE/MEDIAN
//! aggregates are deliberately excluded: the P² sketch is order-sensitive,
//! so they sit outside the bit-match contract (DESIGN.md §3.7).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

use gola_common::rng::SplitMix64;
use gola_common::Value;
use gola_plan::QueryContract;
use gola_storage::Table;
use gola_workloads::{ConvivaGenerator, TpchGenerator};

/// Which workload schema a case runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemaClass {
    Conviva,
    Tpch,
}

impl SchemaClass {
    pub fn table_name(&self) -> &'static str {
        match self {
            SchemaClass::Conviva => "sessions",
            SchemaClass::Tpch => "lineitem_denorm",
        }
    }

    /// Generate the schema's fact table with `n` rows under `seed`.
    pub fn generate(&self, n: usize, seed: u64) -> Table {
        match self {
            SchemaClass::Conviva => ConvivaGenerator {
                seed,
                ..Default::default()
            }
            .generate(n),
            SchemaClass::Tpch => TpchGenerator {
                seed,
                ..Default::default()
            }
            .generate(n),
        }
    }

    /// Static column metadata the generator draws from.
    pub fn info(&self) -> SchemaInfo {
        match self {
            SchemaClass::Conviva => SchemaInfo {
                numeric: vec!["buffer_time", "play_time", "join_time", "ad_revenue"],
                int_keys: vec![("ad_id", 24), ("content_id", 200), ("join_failed", 2)],
                str_keys: vec![("geo", 12), ("device", 5)],
                corr_keys: vec!["ad_id", "geo"],
            },
            SchemaClass::Tpch => SchemaInfo {
                numeric: vec!["quantity", "extendedprice", "discount", "tax", "availqty"],
                int_keys: vec![("suppkey", 50), ("nationkey", 25), ("partkey", 400)],
                str_keys: vec![("brand", 5), ("container", 4)],
                corr_keys: vec!["suppkey", "nationkey"],
            },
        }
    }
}

impl std::fmt::Display for SchemaClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemaClass::Conviva => write!(f, "conviva"),
            SchemaClass::Tpch => write!(f, "tpch"),
        }
    }
}

/// Column metadata for one schema: numeric columns for aggregation and
/// thresholds, low-cardinality keys for grouping and correlation.
#[derive(Debug, Clone)]
pub struct SchemaInfo {
    pub numeric: Vec<&'static str>,
    /// `(column, approximate cardinality)`.
    pub int_keys: Vec<(&'static str, u64)>,
    pub str_keys: Vec<(&'static str, u64)>,
    /// Keys dense enough for correlated-subquery equality.
    pub corr_keys: Vec<&'static str>,
}

/// Aggregate call in the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// SQL function name (`COUNT`, `SUM`, `AVG`, `MIN`, `MAX`, `STDDEV`,
    /// `VAR_POP`).
    pub func: &'static str,
    pub arg: ArgExpr,
}

/// Aggregate argument expression.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgExpr {
    Star,
    Col(String),
    /// `col1 * col2` (Q11-style revenue products).
    Mul(String, String),
    /// `col * c` with a small constant.
    Scaled(String, f64),
}

impl ArgExpr {
    fn render(&self) -> String {
        match self {
            ArgExpr::Star => "*".into(),
            ArgExpr::Col(c) => c.clone(),
            ArgExpr::Mul(a, b) => format!("{a} * {b}"),
            ArgExpr::Scaled(c, k) => format!("{c} * {k:?}"),
        }
    }
}

/// One WHERE atom.
#[derive(Debug, Clone, PartialEq)]
pub enum Filter {
    /// `col op const`.
    Cmp {
        col: String,
        op: &'static str,
        rhs: f64,
    },
    /// `key = literal` (int or quoted string).
    KeyEq { col: String, lit: String },
    /// `col op factor * (SELECT agg(inner) FROM t [WHERE guard > g])`.
    /// With a high `guard` threshold the inner set can be empty, making the
    /// subquery NULL and the predicate UNKNOWN — the 3VL path.
    ScalarSub {
        col: String,
        op: &'static str,
        factor: f64,
        agg: &'static str,
        inner: String,
        guard: Option<(String, f64)>,
    },
    /// `col op factor * (SELECT agg(inner) FROM t t WHERE t.key = a.key)`.
    CorrSub {
        col: String,
        op: &'static str,
        factor: f64,
        agg: &'static str,
        inner: String,
        key: String,
    },
    /// `key IN (SELECT key FROM t GROUP BY key HAVING agg(inner) op rhs)`.
    Membership {
        key: String,
        agg: &'static str,
        inner: String,
        op: &'static str,
        rhs: f64,
    },
}

impl Filter {
    fn render(&self, table: &str) -> String {
        match self {
            Filter::Cmp { col, op, rhs } => format!("{col} {op} {rhs:?}"),
            Filter::KeyEq { col, lit } => format!("{col} = {lit}"),
            Filter::ScalarSub {
                col,
                op,
                factor,
                agg,
                inner,
                guard,
            } => {
                let guard = match guard {
                    Some((g, c)) => format!(" WHERE {g} > {c:?}"),
                    None => String::new(),
                };
                format!("{col} {op} {factor:?} * (SELECT {agg}({inner}) FROM {table}{guard})")
            }
            Filter::CorrSub {
                col,
                op,
                factor,
                agg,
                inner,
                key,
            } => format!(
                "{col} {op} {factor:?} * (SELECT {agg}({inner}) FROM {table} t WHERE t.{key} = a.{key})"
            ),
            Filter::Membership {
                key,
                agg,
                inner,
                op,
                rhs,
            } => format!(
                "{key} IN (SELECT {key} FROM {table} GROUP BY {key} HAVING {agg}({inner}) {op} {rhs:?})"
            ),
        }
    }
}

/// GROUP BY clause.
#[derive(Debug, Clone, PartialEq)]
pub enum GroupBy {
    /// Group on a key column (selected verbatim).
    Key(String),
    /// `floor(col / width) AS g` (C1-style histogram buckets).
    Bucket { col: String, width: f64 },
}

impl GroupBy {
    /// The alias the key appears under in the output.
    pub fn alias(&self) -> String {
        match self {
            GroupBy::Key(c) => c.clone(),
            GroupBy::Bucket { .. } => "g".into(),
        }
    }
}

/// HAVING right-hand side.
#[derive(Debug, Clone, PartialEq)]
pub enum HavingRhs {
    Const(f64),
    /// `frac * (SELECT agg(col) FROM t)` — Q11's fraction-of-total shape.
    FracOfTotal {
        frac: f64,
        agg: &'static str,
        col: String,
    },
}

/// HAVING clause: `agg(arg) op rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Having {
    pub agg: &'static str,
    pub arg: String,
    pub op: &'static str,
    pub rhs: HavingRhs,
}

/// ORDER BY on an output alias.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderBy {
    pub alias: String,
    pub desc: bool,
}

/// A generated query, structured for shrinking.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub aggs: Vec<AggSpec>,
    pub filters: Vec<Filter>,
    /// When true and two filters are present, join them with OR instead of
    /// AND (disjunctive 3VL).
    pub filters_or: bool,
    pub group_by: Option<GroupBy>,
    pub having: Option<Having>,
    pub order_by: Option<OrderBy>,
    /// Optional trailing `ERROR p% [CONFIDENCE c%]` / `WITHIN n SECONDS`
    /// clause ([`QueryGen::next_contract_query`]); `None` from
    /// [`QueryGen::next_query`], keeping the uncontracted stream and its
    /// rendered SQL byte-stable.
    pub contract: Option<QueryContract>,
}

impl Query {
    /// Number of leading output columns that are group keys.
    pub fn key_cols(&self) -> usize {
        usize::from(self.group_by.is_some())
    }

    /// Render to the SQL dialect `gola-sql` accepts.
    pub fn sql(&self, table: &str) -> String {
        let mut s = String::from("SELECT ");
        match &self.group_by {
            Some(GroupBy::Key(c)) => {
                let _ = write!(s, "{c}, ");
            }
            Some(GroupBy::Bucket { col, width }) => {
                let _ = write!(s, "floor({col} / {width:?}) AS g, ");
            }
            None => {}
        }
        for (i, a) in self.aggs.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "{}({}) AS a{i}", a.func, a.arg.render());
        }
        let _ = write!(s, " FROM {table} a");
        if !self.filters.is_empty() {
            let joiner = if self.filters_or && self.filters.len() > 1 {
                " OR "
            } else {
                " AND "
            };
            let atoms: Vec<String> = self.filters.iter().map(|f| f.render(table)).collect();
            let _ = write!(s, " WHERE {}", atoms.join(joiner));
        }
        if let Some(g) = &self.group_by {
            let _ = write!(s, " GROUP BY {}", g.alias());
        }
        if let Some(h) = &self.having {
            let rhs = match &h.rhs {
                HavingRhs::Const(c) => format!("{c:?}"),
                HavingRhs::FracOfTotal { frac, agg, col } => {
                    format!("{frac:?} * (SELECT {agg}({col}) FROM {table})")
                }
            };
            let _ = write!(s, " HAVING {}({}) {} {}", h.agg, h.arg, h.op, rhs);
        }
        if let Some(o) = &self.order_by {
            let _ = write!(
                s,
                " ORDER BY {}{}",
                o.alias,
                if o.desc { " DESC" } else { "" }
            );
        }
        match self.contract {
            Some(QueryContract::Error { target, confidence }) => {
                let _ = write!(
                    s,
                    " ERROR {:?}% CONFIDENCE {:?}%",
                    target * 100.0,
                    confidence * 100.0
                );
            }
            Some(QueryContract::Within { seconds }) => {
                let _ = write!(s, " WITHIN {seconds:?} SECONDS");
            }
            None => {}
        }
        s
    }
}

const AGG_FUNCS: [&str; 7] = ["COUNT", "SUM", "AVG", "MIN", "MAX", "STDDEV", "VAR_POP"];
const CMP_OPS: [&str; 4] = ["<", "<=", ">", ">="];

/// Seeded query generator for one schema over one concrete table.
pub struct QueryGen {
    info: SchemaInfo,
    table: &'static str,
    /// Sorted values per numeric column, for quantile thresholds.
    stats: BTreeMap<&'static str, Vec<f64>>,
    /// Sample string-key literals, per column.
    str_samples: BTreeMap<&'static str, Vec<String>>,
    /// Sample int-key literals, per column.
    int_samples: BTreeMap<&'static str, Vec<i64>>,
    rng: SplitMix64,
}

impl QueryGen {
    pub fn new(class: SchemaClass, data: &Arc<Table>, seed: u64) -> Self {
        let info = class.info();
        let mut stats = BTreeMap::new();
        for &c in &info.numeric {
            let mut xs: Vec<f64> = data
                .column(c)
                .expect("schema column")
                .iter()
                .filter_map(Value::as_f64)
                .collect();
            xs.sort_by(|a, b| a.total_cmp(b));
            stats.insert(c, xs);
        }
        let mut str_samples = BTreeMap::new();
        for &(c, _) in &info.str_keys {
            let mut seen = Vec::new();
            for v in data.column(c).expect("schema column") {
                if let Value::Str(s) = &v {
                    if !seen.iter().any(|x: &String| x.as_str() == s.as_ref()) {
                        seen.push(s.to_string());
                    }
                }
                if seen.len() >= 8 {
                    break;
                }
            }
            str_samples.insert(c, seen);
        }
        let mut int_samples = BTreeMap::new();
        for &(c, _) in &info.int_keys {
            let mut seen = Vec::new();
            for v in data.column(c).expect("schema column") {
                if let Some(i) = v.as_i64() {
                    if !seen.contains(&i) {
                        seen.push(i);
                    }
                }
                if seen.len() >= 8 {
                    break;
                }
            }
            int_samples.insert(c, seen);
        }
        QueryGen {
            info,
            table: class.table_name(),
            stats,
            str_samples,
            int_samples,
            rng: SplitMix64::new(seed),
        }
    }

    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.rng.next_below(xs.len() as u64) as usize]
    }

    fn numeric_col(&mut self) -> String {
        let cols = self.info.numeric.clone();
        (*self.pick(&cols)).to_string()
    }

    /// Threshold at a uniformly-drawn quantile of `col`, rounded to keep
    /// the rendered SQL short (both executors parse the same literal, so
    /// rounding costs nothing).
    fn quantile(&mut self, col: &str, lo: f64, hi: f64) -> f64 {
        let xs = &self.stats[col as &str];
        if xs.is_empty() {
            return 0.0;
        }
        let q = lo + self.rng.next_f64() * (hi - lo);
        let idx = ((xs.len() - 1) as f64 * q).round() as usize;
        let v = xs[idx.min(xs.len() - 1)];
        (v * 1e4).round() / 1e4
    }

    fn cmp_op(&mut self) -> &'static str {
        CMP_OPS[self.rng.next_below(CMP_OPS.len() as u64) as usize]
    }

    fn agg_spec(&mut self) -> AggSpec {
        // COUNT(*) and SUM/AVG dominate real OLA workloads; keep the long
        // tail (MIN/MAX/variance) present but rarer.
        let func = match self.rng.next_below(10) {
            0 | 1 => "COUNT",
            2..=4 => "SUM",
            5 | 6 => "AVG",
            7 => "MIN",
            8 => "MAX",
            _ => *self.pick(&AGG_FUNCS[5..]),
        };
        let arg = if func == "COUNT" && self.rng.next_below(2) == 0 {
            ArgExpr::Star
        } else {
            match self.rng.next_below(6) {
                0 => {
                    let a = self.numeric_col();
                    let b = self.numeric_col();
                    ArgExpr::Mul(a, b)
                }
                1 => {
                    let c = self.numeric_col();
                    let k = (1 + self.rng.next_below(40)) as f64 / 10.0;
                    ArgExpr::Scaled(c, k)
                }
                _ => ArgExpr::Col(self.numeric_col()),
            }
        };
        AggSpec { func, arg }
    }

    fn filter(&mut self) -> Filter {
        match self.rng.next_below(10) {
            // Plain threshold comparisons are the most common shape.
            0..=3 => {
                let col = self.numeric_col();
                let op = self.cmp_op();
                let rhs = self.quantile(&col, 0.1, 0.9);
                Filter::Cmp { col, op, rhs }
            }
            4 => {
                // Key equality (int or string literal).
                if self.rng.next_below(2) == 0 && !self.info.str_keys.is_empty() {
                    let keys = self.info.str_keys.clone();
                    let (col, _) = *self.pick(&keys);
                    let lits = self.str_samples[col].clone();
                    let lit = self.pick(&lits).clone();
                    Filter::KeyEq {
                        col: col.into(),
                        lit: format!("'{lit}'"),
                    }
                } else {
                    let keys = self.info.int_keys.clone();
                    let (col, _) = *self.pick(&keys);
                    let lits = self.int_samples[col].clone();
                    let lit = *self.pick(&lits);
                    Filter::KeyEq {
                        col: col.into(),
                        lit: lit.to_string(),
                    }
                }
            }
            5 | 6 => {
                // Uncorrelated scalar subquery, sometimes with a guard that
                // can empty the inner set (SBI / C2 shape, plus 3VL).
                let col = self.numeric_col();
                let inner = self.numeric_col();
                let guard = match self.rng.next_below(4) {
                    0 => {
                        // Near-max guard: inner set small; occasionally
                        // empty, which makes the subquery NULL.
                        let g = self.numeric_col();
                        let c = self.quantile(&g, 0.95, 1.0);
                        let c = if self.rng.next_below(3) == 0 {
                            c.abs() * 2.0 + 1.0 // above the max: empty inner
                        } else {
                            c
                        };
                        Some((g, c))
                    }
                    _ => None,
                };
                Filter::ScalarSub {
                    col,
                    op: self.cmp_op(),
                    factor: (5 + self.rng.next_below(16)) as f64 / 10.0,
                    agg: if self.rng.next_below(4) == 0 {
                        "STDDEV"
                    } else {
                        "AVG"
                    },
                    inner,
                    guard,
                }
            }
            7 | 8 => {
                // Correlated scalar subquery (C3 / Q17 / Q20 shape).
                let col = self.numeric_col();
                let inner = self.numeric_col();
                let keys = self.info.corr_keys.clone();
                let key = (*self.pick(&keys)).to_string();
                Filter::CorrSub {
                    col,
                    op: self.cmp_op(),
                    factor: (5 + self.rng.next_below(11)) as f64 / 10.0,
                    agg: "AVG",
                    inner,
                    key,
                }
            }
            _ => {
                // Grouped IN membership (Q18 shape).
                let keys = self.info.int_keys.clone();
                let (key, _) = *self.pick(&keys);
                let inner = self.numeric_col();
                let rhs = self.quantile(&inner, 0.3, 0.7);
                Filter::Membership {
                    key: key.into(),
                    agg: "AVG",
                    inner,
                    op: self.cmp_op(),
                    rhs,
                }
            }
        }
    }

    fn group_by(&mut self) -> GroupBy {
        if self.rng.next_below(3) == 0 {
            let col = self.numeric_col();
            let xs = &self.stats[col.as_str()];
            let (lo, hi) = (xs[0], xs[xs.len() - 1]);
            let width = ((hi - lo) / 8.0).max(1e-3);
            let width = (width * 100.0).round().max(1.0) / 100.0;
            GroupBy::Bucket { col, width }
        } else if self.rng.next_below(2) == 0 && !self.info.str_keys.is_empty() {
            let keys = self.info.str_keys.clone();
            GroupBy::Key(self.pick(&keys).0.into())
        } else {
            // Favor denser int keys (small cardinality) so per-group
            // estimation has observations to work with.
            let mut keys = self.info.int_keys.clone();
            keys.sort_by_key(|&(_, card)| card);
            let dense = &keys[..keys.len().min(2)].to_vec();
            GroupBy::Key(self.pick(dense).0.into())
        }
    }

    /// Generate the next query.
    pub fn next_query(&mut self) -> Query {
        let n_aggs = 1 + self.rng.next_below(3) as usize;
        let aggs: Vec<AggSpec> = (0..n_aggs).map(|_| self.agg_spec()).collect();
        let n_filters = self.rng.next_below(3) as usize;
        let filters: Vec<Filter> = (0..n_filters).map(|_| self.filter()).collect();
        let filters_or = filters.len() > 1 && self.rng.next_below(5) == 0;
        let group_by = if self.rng.next_below(2) == 0 {
            Some(self.group_by())
        } else {
            None
        };
        let having = if group_by.is_some() && self.rng.next_below(3) == 0 {
            let arg = self.numeric_col();
            let rhs = if self.rng.next_below(3) == 0 {
                HavingRhs::FracOfTotal {
                    frac: (2 + self.rng.next_below(6)) as f64 / 100.0,
                    agg: "SUM",
                    col: arg.clone(),
                }
            } else {
                HavingRhs::Const(self.quantile(&arg, 0.3, 0.7))
            };
            Some(Having {
                agg: if matches!(rhs, HavingRhs::FracOfTotal { .. }) {
                    "SUM"
                } else {
                    "AVG"
                },
                arg,
                op: self.cmp_op(),
                rhs,
            })
        } else {
            None
        };
        let order_by = if self.rng.next_below(2) == 0 {
            let alias = match &group_by {
                Some(g) if self.rng.next_below(2) == 0 => g.alias(),
                _ => format!("a{}", self.rng.next_below(aggs.len() as u64)),
            };
            Some(OrderBy {
                alias,
                desc: self.rng.next_below(2) == 0,
            })
        } else {
            None
        };
        Query {
            aggs,
            filters,
            filters_or,
            group_by,
            having,
            order_by,
            contract: None,
        }
    }

    /// Generate the next query with a trailing accuracy contract: mostly
    /// `ERROR p% [CONFIDENCE c%]`, occasionally `WITHIN n SECONDS` with a
    /// small deadline (these are smoke-scale runs). A separate method so
    /// the uncontracted [`QueryGen::next_query`] stream stays byte-stable.
    pub fn next_contract_query(&mut self) -> Query {
        let mut q = self.next_query();
        q.contract = Some(if self.rng.next_below(4) == 0 {
            QueryContract::Within {
                seconds: (1 + self.rng.next_below(8)) as f64 / 20.0,
            }
        } else {
            let target = *self.pick(&[1.0f64, 2.0, 5.0, 10.0, 20.0]) / 100.0;
            let confidence = *self.pick(&[0.90f64, 0.95, 0.99]);
            QueryContract::Error { target, confidence }
        });
        q
    }

    /// The table name queries render against.
    pub fn table(&self) -> &'static str {
        self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator(class: SchemaClass) -> QueryGen {
        let data = Arc::new(class.generate(300, 1));
        QueryGen::new(class, &data, 7)
    }

    #[test]
    fn generator_is_deterministic() {
        let mut a = generator(SchemaClass::Conviva);
        let mut b = generator(SchemaClass::Conviva);
        for _ in 0..50 {
            assert_eq!(
                a.next_query().sql("sessions"),
                b.next_query().sql("sessions")
            );
        }
    }

    #[test]
    fn queries_are_diverse() {
        for class in [SchemaClass::Conviva, SchemaClass::Tpch] {
            let mut g = generator(class);
            let mut distinct = std::collections::BTreeSet::new();
            let (mut subq, mut grouped, mut having) = (0, 0, 0);
            for _ in 0..300 {
                let q = g.next_query();
                subq += usize::from(q.filters.iter().any(|f| {
                    matches!(
                        f,
                        Filter::ScalarSub { .. }
                            | Filter::CorrSub { .. }
                            | Filter::Membership { .. }
                    )
                }));
                grouped += usize::from(q.group_by.is_some());
                having += usize::from(q.having.is_some());
                distinct.insert(q.sql(g.table()));
            }
            assert!(
                distinct.len() >= 250,
                "{class}: {} distinct",
                distinct.len()
            );
            assert!(subq >= 30, "{class}: {subq} subquery filters");
            assert!(grouped >= 80, "{class}: {grouped} grouped");
            assert!(having >= 15, "{class}: {having} having");
        }
    }

    #[test]
    fn rendered_sql_shapes() {
        let q = Query {
            aggs: vec![AggSpec {
                func: "SUM",
                arg: ArgExpr::Mul("extendedprice".into(), "quantity".into()),
            }],
            filters: vec![Filter::Cmp {
                col: "quantity".into(),
                op: "<",
                rhs: 25.0,
            }],
            filters_or: false,
            group_by: Some(GroupBy::Key("suppkey".into())),
            having: Some(Having {
                agg: "AVG",
                arg: "discount".into(),
                op: ">",
                rhs: HavingRhs::Const(0.03),
            }),
            order_by: Some(OrderBy {
                alias: "a0".into(),
                desc: true,
            }),
            contract: None,
        };
        assert_eq!(
            q.sql("lineitem_denorm"),
            "SELECT suppkey, SUM(extendedprice * quantity) AS a0 FROM lineitem_denorm a \
             WHERE quantity < 25.0 GROUP BY suppkey HAVING AVG(discount) > 0.03 \
             ORDER BY a0 DESC"
        );
        assert_eq!(q.key_cols(), 1);

        let mut q = q;
        q.contract = Some(QueryContract::Error {
            target: 0.05,
            confidence: 0.95,
        });
        assert!(q
            .sql("lineitem_denorm")
            .ends_with("ORDER BY a0 DESC ERROR 5.0% CONFIDENCE 95.0%"));
        q.contract = Some(QueryContract::Within { seconds: 1.5 });
        assert!(q.sql("lineitem_denorm").ends_with(" WITHIN 1.5 SECONDS"));
    }

    #[test]
    fn contract_queries_parse_and_stay_separate() {
        let mut g = generator(SchemaClass::Conviva);
        let (mut errors, mut withins) = (0, 0);
        for _ in 0..60 {
            let q = g.next_contract_query();
            match q.contract {
                Some(QueryContract::Error { target, confidence }) => {
                    errors += 1;
                    assert!(target > 0.0 && target < 1.0);
                    assert!(confidence > 0.0 && confidence < 1.0);
                }
                Some(QueryContract::Within { seconds }) => {
                    withins += 1;
                    assert!(seconds > 0.0);
                }
                None => panic!("contract query without contract"),
            }
            // The rendered clause must survive the real parser.
            let stmt = gola_sql::parse_select(&q.sql("sessions")).unwrap();
            assert_eq!(stmt.contract, q.contract);
        }
        assert!(errors >= 30, "{errors} ERROR contracts");
        assert!(withins >= 5, "{withins} WITHIN contracts");
        // The uncontracted stream never grows a contract.
        assert!(g.next_query().contract.is_none());
    }
}
