//! The three-pronged conformance oracle.
//!
//! For one `(schema, data, query)` case the oracle runs:
//!
//! 1. **Differential** — the online executor's final-batch answer must
//!    bit-match the exact batch engine's answer (possible because SUM/AVG/
//!    VAR fold through exact expansions, see `gola_common::fsum`), at
//!    `threads = 1` and `threads = N`.
//! 2. **Invariant** — per-batch checks along the whole refinement
//!    trajectory: same-seed reruns are bit-identical, thread counts don't
//!    change any report, rows classified *certain* never retract while no
//!    recomputation intervenes, and the uncertain sets drain to zero by the
//!    final batch.
//! 3. **Fault transparency** — a [`Fault`] can be planted to prove the
//!    oracle actually discriminates: `WeightBias` plants an off-by-one
//!    bootstrap weight (caught by calibration, see `calib`), `SkewOnline`
//!    perturbs the online answer before comparison (caught here).

use std::fmt;
use std::sync::Arc;

use gola_bootstrap::BootstrapSpec;
use gola_core::{BatchReport, OnlineConfig, OnlineSession};
use gola_storage::{Catalog, Table};

use crate::gen::SchemaClass;

/// Execution parameters of one conformance case.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// Mini-batch count `k` (clamped to the row count by the session).
    pub num_batches: usize,
    /// Bootstrap replica count.
    pub trials: u32,
    /// Parallel thread count for the `threads = N` leg.
    pub threads: usize,
    /// Seed of the mini-batch partitioner (part of the replay artifact).
    pub partition_seed: u64,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            num_batches: 5,
            trials: 24,
            threads: 4,
            partition_seed: 0xF1_00_DB,
        }
    }
}

/// A deliberately planted estimator bug, used to prove the oracle and the
/// shrinker work (ISSUE acceptance: an injected bug must be caught and
/// shrunk to a minimal replayable case).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    None,
    /// Off-by-one bootstrap replica weights
    /// ([`BootstrapSpec::with_weight_bias`]). Point estimates are
    /// unaffected, so the differential oracle stays green — only the
    /// calibration oracle can see it.
    WeightBias,
    /// Multiply every float cell of the online final answer by this factor
    /// before the differential comparison — a stand-in for a wrong
    /// multiplicity/scale estimator bug.
    SkewOnline(f64),
    /// Stop an `ERROR p%` contract when the *absolute* CI half-width drops
    /// below `p` instead of the relative half-width — the classic
    /// absolute-vs-relative stopping-rule bug. Invisible to the
    /// differential oracle (only *when* we stop changes, not the answer);
    /// the contract oracle's promise check ([`crate::contract`]) catches it
    /// on any aggregate whose magnitude is far from 1.
    AbsoluteStop,
}

/// Why a case failed. `kind` is the shrinker's discriminant: a reduction
/// step is accepted only if the reduced case fails with the *same* kind.
#[derive(Debug, Clone)]
pub enum Failure {
    /// SQL rejected or execution error in the exact engine.
    Exact(String),
    /// Execution error in the online executor.
    Online(String),
    /// Final online answer differs from the exact answer.
    Differential(String),
    /// Two same-seed `threads = 1` runs produced different reports.
    Rerun { batch: usize, detail: String },
    /// `threads = 1` and `threads = N` reports differ.
    Threads { batch: usize, detail: String },
    /// A certain row vanished or reverted with no recomputation in between.
    Retraction { batch: usize, detail: String },
    /// The refinement trajectory itself is malformed: coverage not
    /// monotone, multiplicity not shrinking toward 1, or the last report
    /// not marked final/exact.
    Shape { batch: usize, detail: String },
}

impl Failure {
    pub fn kind(&self) -> &'static str {
        match self {
            Failure::Exact(_) => "exact",
            Failure::Online(_) => "online",
            Failure::Differential(_) => "differential",
            Failure::Rerun { .. } => "rerun",
            Failure::Threads { .. } => "threads",
            Failure::Retraction { .. } => "retraction",
            Failure::Shape { .. } => "shape",
        }
    }
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Failure::Exact(e) => write!(f, "exact engine: {e}"),
            Failure::Online(e) => write!(f, "online executor: {e}"),
            Failure::Differential(d) => write!(f, "differential mismatch: {d}"),
            Failure::Rerun { batch, detail } => {
                write!(f, "same-seed rerun diverged at batch {batch}: {detail}")
            }
            Failure::Threads { batch, detail } => {
                write!(f, "thread counts diverged at batch {batch}: {detail}")
            }
            Failure::Retraction { batch, detail } => {
                write!(f, "certain row retracted at batch {batch}: {detail}")
            }
            Failure::Shape { batch, detail } => {
                write!(f, "malformed trajectory at batch {batch}: {detail}")
            }
        }
    }
}

/// Telemetry from a passing case (used by the smoke tests to assert the
/// generated corpus actually exercises the interesting machinery).
#[derive(Debug, Clone, Copy, Default)]
pub struct CaseStats {
    pub batches: usize,
    pub recomputations: usize,
    pub uncertain_peak: usize,
    pub result_rows: usize,
}

/// Run the full oracle for one case.
///
/// `key_cols` is the number of leading output columns that are group keys
/// (from [`crate::gen::Query::key_cols`]); the retraction invariant tracks
/// certain rows by that key.
pub fn run_case(
    class: SchemaClass,
    data: &Arc<Table>,
    sql: &str,
    key_cols: usize,
    cfg: &OracleConfig,
    fault: Fault,
) -> Result<CaseStats, Failure> {
    let mut catalog = Catalog::new();
    catalog
        .register(class.table_name(), Arc::clone(data))
        .map_err(|e| Failure::Exact(e.to_string()))?;

    let bootstrap = BootstrapSpec::new(cfg.trials, 0x60_1A)
        .with_weight_bias(u32::from(fault == Fault::WeightBias));
    let config = |threads: usize| OnlineConfig {
        num_batches: cfg.num_batches,
        bootstrap,
        partition_seed: cfg.partition_seed,
        threads,
        ..OnlineConfig::default()
    };

    let exact = OnlineSession::new(catalog.clone(), config(1))
        .execute_exact(sql)
        .map_err(|e| Failure::Exact(e.to_string()))?;

    let run = |threads: usize| -> Result<Vec<BatchReport>, Failure> {
        let session = OnlineSession::new(catalog.clone(), config(threads));
        let exec = session
            .execute_online(sql)
            .map_err(|e| Failure::Online(e.to_string()))?;
        exec.collect::<Result<Vec<_>, _>>()
            .map_err(|e| Failure::Online(e.to_string()))
    };

    let seq = run(1)?;
    let rerun = run(1)?;
    if let Err((batch, detail)) = reports_identical(&seq, &rerun) {
        return Err(Failure::Rerun { batch, detail });
    }
    let par = run(cfg.threads)?;
    if let Err((batch, detail)) = reports_identical(&seq, &par) {
        return Err(Failure::Threads { batch, detail });
    }

    check_trajectory(&seq, key_cols)?;

    let last = seq
        .last()
        .ok_or_else(|| Failure::Online("no batches".into()))?;
    let online_table = match fault {
        Fault::SkewOnline(factor) => skew_floats(&last.table, factor),
        _ => last.table.clone(),
    };
    if let Err(detail) = tables_bit_equal(&online_table, &exact) {
        return Err(Failure::Differential(detail));
    }

    Ok(CaseStats {
        batches: seq.len(),
        recomputations: last.recomputations,
        uncertain_peak: seq.iter().map(|r| r.uncertain_tuples).max().unwrap_or(0),
        result_rows: last.table.num_rows(),
    })
}

/// Per-batch invariants along one run's refinement trajectory.
///
/// Note what is deliberately *not* checked: the uncertain set is not
/// required to shrink monotonically, nor to drain by the final batch. New
/// ingests add fresh borderline candidates, and a predicate whose
/// classification range never collapses (its epsilon tracks a bootstrap
/// spread that stays wide) legitimately caches its boundary tuples forever
/// — the final answer is still exact because effective states merge the
/// uncertain contributions (DESIGN.md §3.7).
fn check_trajectory(reports: &[BatchReport], key_cols: usize) -> Result<(), Failure> {
    // Shape: coverage grows monotonically to completion, multiplicity
    // shrinks toward 1, indices are sequential, and the last report is the
    // final (exact) one.
    for (i, r) in reports.iter().enumerate() {
        if r.batch_index != i {
            return Err(Failure::Shape {
                batch: i,
                detail: format!("batch_index {} at position {i}", r.batch_index),
            });
        }
    }
    for pair in reports.windows(2) {
        let (prev, next) = (&pair[0], &pair[1]);
        if next.rows_seen <= prev.rows_seen {
            return Err(Failure::Shape {
                batch: next.batch_index,
                detail: format!(
                    "rows_seen not increasing: {} -> {}",
                    prev.rows_seen, next.rows_seen
                ),
            });
        }
        if next.multiplicity >= prev.multiplicity {
            return Err(Failure::Shape {
                batch: next.batch_index,
                detail: format!(
                    "multiplicity not shrinking: {} -> {}",
                    prev.multiplicity, next.multiplicity
                ),
            });
        }
    }
    if let Some(last) = reports.last() {
        if !last.is_final() || last.rows_seen != last.total_rows {
            return Err(Failure::Shape {
                batch: last.batch_index,
                detail: format!(
                    "last report not final: {}/{} rows, batch {}/{}",
                    last.rows_seen, last.total_rows, last.batch_index, last.num_batches
                ),
            });
        }
        if (last.multiplicity - 1.0).abs() > 1e-12 {
            return Err(Failure::Shape {
                batch: last.batch_index,
                detail: format!("final multiplicity {} != 1", last.multiplicity),
            });
        }
    }
    for pair in reports.windows(2) {
        let (prev, next) = (&pair[0], &pair[1]);
        // A recomputation legitimately revises earlier classifications; the
        // no-retraction guarantee only holds between undisturbed batches.
        if next.recomputations != prev.recomputations {
            continue;
        }
        for (row, certain) in prev.row_certain.iter().enumerate() {
            if !certain {
                continue;
            }
            let key = row_key(prev, row, key_cols);
            let found = (0..next.table.num_rows()).find(|&r| row_key(next, r, key_cols) == key);
            match found {
                None => {
                    return Err(Failure::Retraction {
                        batch: next.batch_index,
                        detail: format!("certain row {key:?} disappeared"),
                    });
                }
                Some(r) if !next.row_certain[r] => {
                    return Err(Failure::Retraction {
                        batch: next.batch_index,
                        detail: format!("certain row {key:?} became uncertain"),
                    });
                }
                Some(_) => {}
            }
        }
    }
    Ok(())
}

/// Identity of output row `row` for the retraction check: its group-key
/// cells, or the row index for scalar (keyless) results.
fn row_key(report: &BatchReport, row: usize, key_cols: usize) -> Vec<gola_common::Value> {
    if key_cols == 0 {
        return vec![gola_common::Value::Int(row as i64)];
    }
    report.table.rows()[row]
        .iter()
        .take(key_cols)
        .cloned()
        .collect()
}

/// Bit-for-bit comparison of two full report sequences (the rerun/thread
/// determinism contract; same checks as `tests/parallel_equivalence.rs`).
pub(crate) fn reports_identical(
    a: &[BatchReport],
    b: &[BatchReport],
) -> Result<(), (usize, String)> {
    if a.len() != b.len() {
        return Err((0, format!("batch count {} vs {}", a.len(), b.len())));
    }
    for (ra, rb) in a.iter().zip(b) {
        let i = ra.batch_index;
        if ra.uncertain_tuples != rb.uncertain_tuples {
            return Err((
                i,
                format!("|U| {} vs {}", ra.uncertain_tuples, rb.uncertain_tuples),
            ));
        }
        if ra.recomputations != rb.recomputations {
            return Err((
                i,
                format!("recomputes {} vs {}", ra.recomputations, rb.recomputations),
            ));
        }
        if ra.row_certain != rb.row_certain {
            return Err((i, "row certainty differs".into()));
        }
        if let Err(d) = rows_bit_equal_in_order(&ra.table, &rb.table) {
            return Err((i, d));
        }
        if ra.estimates.len() != rb.estimates.len() {
            return Err((i, "estimate count differs".into()));
        }
        for (ea, eb) in ra.estimates.iter().zip(&rb.estimates) {
            if (ea.row, ea.col) != (eb.row, eb.col) {
                return Err((i, "estimate cell ids differ".into()));
            }
            if ea.estimate.value.to_bits() != eb.estimate.value.to_bits() {
                return Err((
                    i,
                    format!(
                        "estimate ({},{}) {} vs {}",
                        ea.row, ea.col, ea.estimate.value, eb.estimate.value
                    ),
                ));
            }
            if ea.estimate.replicas.len() != eb.estimate.replicas.len()
                || ea
                    .estimate
                    .replicas
                    .iter()
                    .zip(&eb.estimate.replicas)
                    .any(|(x, y)| x.to_bits() != y.to_bits())
            {
                return Err((i, format!("replicas of cell ({},{})", ea.row, ea.col)));
            }
        }
    }
    Ok(())
}

/// In-order bit equality (determinism contract: same run → same row order).
fn rows_bit_equal_in_order(a: &Table, b: &Table) -> Result<(), String> {
    if a.num_rows() != b.num_rows() {
        return Err(format!("{} vs {} rows", a.num_rows(), b.num_rows()));
    }
    for (x, y) in a.rows().iter().zip(b.rows()) {
        for (u, v) in x.iter().zip(y.iter()) {
            match (u.as_f64(), v.as_f64()) {
                (Some(fu), Some(fv)) => {
                    if fu.to_bits() != fv.to_bits() {
                        return Err(format!("cell {fu} vs {fv}"));
                    }
                }
                _ => {
                    if u != v {
                        return Err(format!("cell {u} vs {v}"));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Order-insensitive bit equality: the differential contract compares the
/// online answer against the batch engine's, whose ORDER BY tie order may
/// legitimately differ, so both sides are sorted on the full row first.
pub fn tables_bit_equal(online: &Table, exact: &Table) -> Result<(), String> {
    if online.num_rows() != exact.num_rows() {
        return Err(format!(
            "{} online rows vs {} exact rows",
            online.num_rows(),
            exact.num_rows()
        ));
    }
    let sort = |t: &Table| {
        let mut rows = t.rows().to_vec();
        rows.sort_by(|a, b| {
            for (x, y) in a.iter().zip(b.iter()) {
                let ord = x.total_cmp(y);
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        rows
    };
    for (x, y) in sort(online).iter().zip(&sort(exact)) {
        for (u, v) in x.iter().zip(y.iter()) {
            match (u.as_f64(), v.as_f64()) {
                (Some(fu), Some(fv)) => {
                    if fu.to_bits() != fv.to_bits() {
                        return Err(format!("cell {fu} vs {fv} (row {x} vs {y})"));
                    }
                }
                _ => {
                    if u != v {
                        return Err(format!("cell {u} vs {v} (row {x} vs {y})"));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Scale every float cell (the [`Fault::SkewOnline`] injection point).
fn skew_floats(table: &Table, factor: f64) -> Table {
    let rows = table
        .rows()
        .iter()
        .map(|r| {
            gola_common::Row::new(
                r.iter()
                    .map(|v| match v {
                        gola_common::Value::Float(f) => gola_common::Value::Float(f * factor),
                        other => other.clone(),
                    })
                    .collect(),
            )
        })
        .collect();
    Table::new_unchecked(Arc::clone(table.schema()), rows)
}
