//! Conformance harness for the G-OLA online executor: generative
//! differential testing plus statistical calibration (DESIGN.md §3.7).
//!
//! The harness answers three questions no example-based test can:
//!
//! * **Is the online executor *correct*?** A seeded query generator
//!   ([`gen`]) draws thousands of queries over the workload schemas —
//!   nested and correlated subqueries, GROUP BY/HAVING, three-valued-logic
//!   predicates — and the differential oracle ([`oracle`]) demands the
//!   final-batch online answer bit-match the exact batch engine at
//!   `threads ∈ {1, N}`.
//! * **Is the refinement trajectory *sound*?** Per-batch invariants:
//!   same-seed reruns bit-identical, certain rows never retract (absent a
//!   counted recomputation), multiplicity and row counts well-shaped.
//! * **Are the error bars *honest*?** Empirical CI coverage over hundreds
//!   of seeded datasets must land in an exact binomial band ([`calib`]).
//!
//! Failing cases are minimized by the shrinker ([`shrink`]) into replayable
//! `seed + SQL` artifacts. The harness runs as a `cargo test` smoke tier
//! (`tests/smoke.rs`) and as a `--release` soak binary (`gola-soak`,
//! wired into `scripts/check.sh --soak`).

pub mod calib;
pub mod contract;
pub mod gen;
pub mod ingest;
pub mod oracle;
pub mod service;
pub mod shrink;

pub use calib::{binomial_band, calibrate, default_classes, CalibClass, CalibConfig, CalibReport};
pub use contract::{
    check_contract, default_contract_classes, shrink_contract, ContractArtifact, ContractClass,
    ContractConfig, ContractReport,
};
pub use gen::{Query, QueryGen, SchemaClass};
pub use ingest::{run_ingest_leg, IngestLegConfig, IngestLegFailure, IngestLegStats};
pub use oracle::{run_case, tables_bit_equal, CaseStats, Failure, Fault, OracleConfig};
pub use service::{run_service_leg, ServiceLegConfig, ServiceLegFailure, ServiceLegStats};
pub use shrink::{shrink, shrink_calibration, shrink_case, Artifact, CalibArtifact, ShrinkConfig};
