//! Statistical calibration of the bootstrap confidence intervals.
//!
//! A 95% CI is only worth reporting if, across many independent datasets,
//! it actually contains the true answer about 95% of the time. For each
//! aggregate kind this module runs one fixed query shape over many freshly
//! seeded datasets, reads the CI of a *late* (but not final) batch report —
//! where the answer is still approximate and the finite-population
//! correction carries real weight — and counts how often the exact
//! full-data answer falls inside. The hit count must land in an exact
//! binomial acceptance band around the nominal level — computed from the
//! binomial pmf, not a normal approximation, so the band is honest at the
//! tails.
//!
//! The planted [`Fault::WeightBias`] bug (off-by-one bootstrap weights)
//! roughly doubles every replica of SUM/COUNT-like aggregates while leaving
//! the point estimate alone — coverage collapses to ≈0 and the band check
//! fails loudly. AVG is a ratio whose numerator and denominator are skewed
//! together, so it largely survives the fault; per-kind reporting is what
//! makes the diagnosis readable.

use std::sync::Arc;

use gola_bootstrap::BootstrapSpec;
use gola_core::{OnlineConfig, OnlineSession};
use gola_storage::Catalog;

use crate::gen::SchemaClass;
use crate::oracle::Fault;

/// One calibration query class: a fixed SQL shape whose scalar answer's CI
/// is checked for coverage.
#[derive(Debug, Clone)]
pub struct CalibClass {
    /// Aggregate kind label (`count`, `sum`, `avg`, ...).
    pub kind: &'static str,
    pub schema: SchemaClass,
    pub sql: &'static str,
}

/// The default calibration suite: one scalar query per aggregate kind, per
/// schema family. Filters keep the queries representative of real OLA use
/// (estimating a filtered population, not a full scan).
pub fn default_classes() -> Vec<CalibClass> {
    vec![
        CalibClass {
            kind: "count",
            schema: SchemaClass::Conviva,
            sql: "SELECT COUNT(*) FROM sessions WHERE buffer_time > 8.0",
        },
        CalibClass {
            kind: "sum",
            schema: SchemaClass::Conviva,
            sql: "SELECT SUM(buffer_time) FROM sessions WHERE play_time > 100.0",
        },
        CalibClass {
            kind: "avg",
            schema: SchemaClass::Tpch,
            sql: "SELECT AVG(extendedprice) FROM lineitem_denorm WHERE quantity < 30.0",
        },
        CalibClass {
            kind: "sum-product",
            schema: SchemaClass::Tpch,
            sql: "SELECT SUM(extendedprice * discount) FROM lineitem_denorm",
        },
    ]
}

/// Calibration run parameters.
#[derive(Debug, Clone)]
pub struct CalibConfig {
    /// Independent datasets (seeds) per class. ISSUE floor: ≥ 200.
    pub seeds: usize,
    /// Rows per dataset.
    pub rows: usize,
    /// Mini-batches per run.
    pub num_batches: usize,
    /// Bootstrap replicas.
    pub trials: u32,
    /// Which batch's report to read the CI from (0-based). Must be before
    /// the final batch (whose CI collapses to zero width by construction).
    pub report_batch: usize,
    /// Nominal CI level.
    pub level: f64,
    /// Two-sided acceptance probability mass *excluded* by the band (the
    /// chance a perfectly calibrated estimator still fails, per class).
    pub band_alpha: f64,
}

impl Default for CalibConfig {
    fn default() -> Self {
        CalibConfig {
            seeds: 200,
            rows: 400,
            num_batches: 8,
            trials: 64,
            // Batch 5 of 8: three quarters of the data seen, where the
            // finite-population correction (√(1 − n/N) = 0.5) does real
            // work. Before the fpc landed in `gola_bootstrap::ci`, late
            // batches drifted to 100% coverage for the wrong reason
            // (uncorrected intervals are ≈ 2× too wide at n/N = 3/4) and
            // calibration had to hide at batch 0 to stay honest. With the
            // correction, a late batch is the sharper check: it verifies
            // both the resampling machinery and the correction itself.
            report_batch: 5,
            level: 0.95,
            // With four classes and many CI runs, 1e-4 per class keeps the
            // whole-suite false-failure rate well under 1/1000 while still
            // rejecting coverage below ~88% at n = 200.
            band_alpha: 1e-4,
        }
    }
}

/// Coverage result for one class.
#[derive(Debug, Clone)]
pub struct CalibReport {
    pub kind: &'static str,
    pub schema: SchemaClass,
    pub hits: usize,
    pub runs: usize,
    pub band: (usize, usize),
    pub pass: bool,
}

impl CalibReport {
    pub fn coverage(&self) -> f64 {
        self.hits as f64 / self.runs as f64
    }
}

impl std::fmt::Display for CalibReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:12} {:8} coverage {:3}/{} = {:.1}% (band [{}, {}]) {}",
            self.kind,
            self.schema.to_string(),
            self.hits,
            self.runs,
            self.coverage() * 100.0,
            self.band.0,
            self.band.1,
            if self.pass { "ok" } else { "FAIL" }
        )
    }
}

/// Run calibration for one class under `fault`.
pub fn calibrate(class: &CalibClass, cfg: &CalibConfig, fault: Fault) -> CalibReport {
    let bootstrap = BootstrapSpec::new(cfg.trials, 0x60_1A)
        .with_weight_bias(u32::from(fault == Fault::WeightBias));
    let mut hits = 0;
    let mut runs = 0;
    for seed in 0..cfg.seeds as u64 {
        let data = Arc::new(class.schema.generate(cfg.rows, 0xCA11B + seed * 7919));
        let mut catalog = Catalog::new();
        catalog
            .register(class.schema.table_name(), data)
            .expect("register calibration table");
        let config = OnlineConfig {
            num_batches: cfg.num_batches,
            bootstrap,
            ci_level: cfg.level,
            // Vary the partition order with the dataset so coverage is
            // averaged over both sources of randomness.
            partition_seed: 0x9A_27 ^ seed,
            ..OnlineConfig::default()
        };
        let session = OnlineSession::new(catalog, config);
        let truth = session
            .execute_exact(class.sql)
            .expect("calibration query compiles")
            .rows()[0]
            .get(0)
            .as_f64()
            .expect("scalar numeric answer");
        let mut exec = session.execute_online(class.sql).expect("online run");
        let report = exec
            .nth(cfg.report_batch)
            .expect("report batch within k")
            .expect("batch succeeds");
        let ci = report.ci().expect("primary CI");
        runs += 1;
        hits += usize::from(ci.contains(truth));
    }
    let band = binomial_band(runs, cfg.level, cfg.band_alpha);
    CalibReport {
        kind: class.kind,
        schema: class.schema,
        hits,
        runs,
        band,
        pass: band.0 <= hits && hits <= band.1,
    }
}

/// Central acceptance band for `Binomial(n, p)`: the smallest `[lo, hi]`
/// with at most `alpha / 2` probability mass strictly below `lo` and
/// strictly above `hi`.
///
/// The pmf is built iteratively from the *upper* end — `pmf(n) = p^n` is
/// ≈ 3.5e-5 for `p = 0.95, n = 200`, comfortably representable, whereas
/// starting from `pmf(0) = (1-p)^n` ≈ 1e-260 flirts with underflow — via
/// the ratio `pmf(k-1) / pmf(k) = (k / (n-k+1)) · ((1-p) / p)`.
pub fn binomial_band(n: usize, p: f64, alpha: f64) -> (usize, usize) {
    assert!(n > 0 && (0.0..1.0).contains(&p) && p > 0.0);
    let mut pmf = vec![0.0f64; n + 1];
    pmf[n] = p.powi(n as i32);
    for k in (1..=n).rev() {
        pmf[k - 1] = pmf[k] * (k as f64 / (n - k + 1) as f64) * ((1.0 - p) / p);
    }
    let half = alpha / 2.0;
    let mut lo = 0;
    let mut mass = 0.0;
    while lo < n && mass + pmf[lo] <= half {
        mass += pmf[lo];
        lo += 1;
    }
    let mut hi = n;
    let mut mass = 0.0;
    while hi > 0 && mass + pmf[hi] <= half {
        mass += pmf[hi];
        hi -= 1;
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_brackets_the_mean() {
        let (lo, hi) = binomial_band(200, 0.95, 1e-4);
        assert!(lo < 190 && 190 < hi, "band [{lo}, {hi}]");
        // The band must reject gross miscalibration in both directions.
        assert!(lo > 170, "lower edge {lo} too permissive");
        assert!(hi <= 200, "upper edge {hi}");
    }

    #[test]
    fn band_tightens_with_alpha() {
        let wide = binomial_band(200, 0.95, 1e-6);
        let tight = binomial_band(200, 0.95, 0.05);
        assert!(
            wide.0 <= tight.0 && tight.1 <= wide.1,
            "{wide:?} vs {tight:?}"
        );
    }

    #[test]
    fn band_pmf_normalizes() {
        // Rebuild the pmf the same way and check it sums to ~1 (guards the
        // iterative recurrence against transcription errors).
        let (n, p) = (200usize, 0.95f64);
        let mut pmf = vec![0.0f64; n + 1];
        pmf[n] = p.powi(n as i32);
        for k in (1..=n).rev() {
            pmf[k - 1] = pmf[k] * (k as f64 / (n - k + 1) as f64) * ((1.0 - p) / p);
        }
        let total: f64 = pmf.iter().sum();
        assert!((total - 1.0).abs() < 1e-10, "pmf sums to {total}");
    }

    #[test]
    fn degenerate_small_n() {
        let (lo, hi) = binomial_band(1, 0.95, 0.2);
        assert!(lo <= 1 && hi == 1);
    }
}
