//! Contract-conformance oracle: do `ERROR p% CONFIDENCE c%` queries keep
//! their promise?
//!
//! For each query class the oracle runs the contracted query over many
//! freshly seeded datasets and checks two things at the *stopping* report:
//!
//! 1. **Promise** (deterministic, per run) — if the run stopped with
//!    [`ContractStop::ErrorTargetMet`], the reported achieved relative
//!    error must actually be ≤ the contract's target. This is trivially
//!    true for the honest relative stopping rule and is exactly what the
//!    planted [`Fault::AbsoluteStop`] bug breaks: stopping on the
//!    *absolute* half-width fires far too early on any aggregate whose
//!    magnitude is far from 1 (e.g. a ≈0.05 failure *rate*), and the
//!    honestly computed `achieved_rel_error` exposes it.
//! 2. **Coverage** (statistical, per class) — the exact full-data answer
//!    must fall inside the stopping report's CI at the contract's
//!    confidence, about `c` of the time; the hit count must land in the
//!    exact binomial band of [`crate::calib::binomial_band`]. A run that
//!    exhausts all batches reports the exact answer and counts as a hit.
//!    Stopping is data-dependent (optional stopping), so the band uses the
//!    same generous per-class `alpha` as calibration rather than
//!    pretending the stopped CI is a fixed-batch CI.
//!
//! Failures shrink like calibration failures: the evidence is a count over
//! an experiment, so [`shrink_contract`] minimizes the experiment itself —
//! smallest seed count, then smallest dataset — into a replayable artifact.

use std::fmt;
use std::sync::Arc;

use gola_bootstrap::BootstrapSpec;
use gola_core::{ContractStop, OnlineConfig, OnlineSession};
use gola_storage::Catalog;

use crate::calib::binomial_band;
use crate::gen::SchemaClass;
use crate::oracle::Fault;

/// One contract query class: a fixed aggregate SQL shape plus the contract
/// bolted onto it.
#[derive(Debug, Clone)]
pub struct ContractClass {
    /// Label for reports (`count`, `sum`, `avg`, `rate`, ...).
    pub kind: &'static str,
    pub schema: SchemaClass,
    /// The aggregate query *without* the contract clause (also used to
    /// compute the exact answer).
    pub base_sql: &'static str,
    /// Relative error target, as a fraction in (0, 1).
    pub target: f64,
    /// Confidence level, as a fraction in (0, 1).
    pub confidence: f64,
}

impl ContractClass {
    /// The contracted SQL actually executed online.
    pub fn sql(&self) -> String {
        format!(
            "{} ERROR {:?}% CONFIDENCE {:?}%",
            self.base_sql,
            self.target * 100.0,
            self.confidence * 100.0
        )
    }
}

/// The default contract suite. Targets are picked so the honest rule stops
/// *mid-trajectory* for most seeds (a suite that always exhausts would test
/// nothing), except `rate`: its tiny magnitude (≈0.04) makes the relative
/// target unreachable at this scale — the honest rule exhausts (exact
/// answer, promise vacuously kept) while the planted absolute rule stops
/// almost immediately, which is precisely what makes it the
/// [`Fault::AbsoluteStop`] discriminator.
pub fn default_contract_classes() -> Vec<ContractClass> {
    vec![
        ContractClass {
            kind: "count",
            schema: SchemaClass::Conviva,
            base_sql: "SELECT COUNT(*) FROM sessions WHERE buffer_time > 8.0",
            target: 0.05,
            confidence: 0.95,
        },
        ContractClass {
            kind: "sum",
            schema: SchemaClass::Conviva,
            base_sql: "SELECT SUM(buffer_time) FROM sessions WHERE play_time > 100.0",
            target: 0.10,
            confidence: 0.95,
        },
        ContractClass {
            kind: "avg",
            schema: SchemaClass::Tpch,
            base_sql: "SELECT AVG(extendedprice) FROM lineitem_denorm WHERE quantity < 30.0",
            target: 0.05,
            confidence: 0.95,
        },
        ContractClass {
            kind: "rate",
            schema: SchemaClass::Conviva,
            base_sql: "SELECT AVG(join_failed) FROM sessions",
            target: 0.05,
            confidence: 0.95,
        },
    ]
}

/// Contract-oracle run parameters.
#[derive(Debug, Clone)]
pub struct ContractConfig {
    /// Independent datasets (seeds) per class. ISSUE floor: ≥ 200.
    pub seeds: usize,
    /// Rows per dataset.
    pub rows: usize,
    /// Mini-batches per run.
    pub num_batches: usize,
    /// Bootstrap replicas.
    pub trials: u32,
    /// Per-class probability mass excluded by the acceptance band.
    pub band_alpha: f64,
}

impl Default for ContractConfig {
    fn default() -> Self {
        ContractConfig {
            seeds: 200,
            rows: 400,
            num_batches: 8,
            trials: 64,
            // Same rationale as calibration, with extra slack because the
            // stopping batch is chosen by the data (optional stopping
            // conditions the CI on being narrow).
            band_alpha: 1e-4,
        }
    }
}

/// Outcome of one class's contract-oracle run.
#[derive(Debug, Clone)]
pub struct ContractReport {
    pub kind: &'static str,
    pub schema: SchemaClass,
    pub runs: usize,
    /// Runs whose stopping answer was within contract (truth in the
    /// stopping CI, or exact by exhaustion).
    pub hits: usize,
    pub band: (usize, usize),
    /// Runs that stopped with `ErrorTargetMet` yet reported an achieved
    /// relative error above the target — must be zero.
    pub violations: usize,
    /// Runs that stopped before exhausting every batch.
    pub stopped_early: usize,
    /// Mean 1-based stopping batch.
    pub mean_stop_batch: f64,
    pub pass: bool,
}

impl ContractReport {
    pub fn coverage(&self) -> f64 {
        self.hits as f64 / self.runs as f64
    }

    /// Shrink discriminant: which leg failed (`None` if the report passed).
    pub fn failure_kind(&self) -> Option<&'static str> {
        if self.violations > 0 {
            Some("promise")
        } else if !(self.band.0 <= self.hits && self.hits <= self.band.1) {
            Some("coverage")
        } else {
            None
        }
    }
}

impl fmt::Display for ContractReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:6} {:8} within-contract {:3}/{} = {:.1}% (band [{}, {}]) \
             violations {} early {}/{} mean stop batch {:.1} {}",
            self.kind,
            self.schema.to_string(),
            self.hits,
            self.runs,
            self.coverage() * 100.0,
            self.band.0,
            self.band.1,
            self.violations,
            self.stopped_early,
            self.runs,
            self.mean_stop_batch,
            if self.pass { "ok" } else { "FAIL" }
        )
    }
}

/// Run the contract oracle for one class under `fault`.
pub fn check_contract(class: &ContractClass, cfg: &ContractConfig, fault: Fault) -> ContractReport {
    let mut hits = 0;
    let mut runs = 0;
    let mut violations = 0;
    let mut stopped_early = 0;
    let mut stop_batches = 0usize;
    for seed in 0..cfg.seeds as u64 {
        // Same seeding discipline as calibration so artifacts line up.
        let data = Arc::new(class.schema.generate(cfg.rows, 0xCA11B + seed * 7919));
        let mut catalog = Catalog::new();
        catalog
            .register(class.schema.table_name(), data)
            .expect("register contract table");
        let config = OnlineConfig {
            num_batches: cfg.num_batches,
            bootstrap: BootstrapSpec::new(cfg.trials, 0x60_1A),
            ci_level: class.confidence,
            partition_seed: 0x9A_27 ^ seed,
            stopping_rule_absolute: fault == Fault::AbsoluteStop,
            ..OnlineConfig::default()
        };
        let session = OnlineSession::new(catalog, config);
        let truth = session
            .execute_exact(class.base_sql)
            .expect("contract query compiles")
            .rows()[0]
            .get(0)
            .as_f64()
            .expect("scalar numeric answer");
        let exec = session.execute_online(&class.sql()).expect("online run");
        let reports: Vec<_> = exec
            .collect::<Result<Vec<_>, _>>()
            .expect("batches succeed");
        let last = reports.last().expect("at least one report");
        let progress = last.contract.as_ref().expect("contracted run");
        runs += 1;
        stop_batches += last.batch_index + 1;
        match progress.stop {
            Some(ContractStop::ErrorTargetMet) => {
                stopped_early += 1;
                if progress.achieved_rel_error.is_none_or(|a| a > class.target) {
                    violations += 1;
                }
                let in_ci = last.ci().is_some_and(|ci| ci.contains(truth));
                hits += usize::from(in_ci);
            }
            // Exhausted every batch: the answer is exact — within contract
            // by construction.
            Some(ContractStop::Exhausted) => hits += 1,
            other => panic!("error contract stopped with {other:?}"),
        }
    }
    let band = binomial_band(runs, class.confidence, cfg.band_alpha);
    let hits_ok = band.0 <= hits && hits <= band.1;
    ContractReport {
        kind: class.kind,
        schema: class.schema,
        runs,
        hits,
        band,
        violations,
        stopped_early,
        mean_stop_batch: stop_batches as f64 / runs as f64,
        pass: violations == 0 && hits_ok,
    }
}

/// A minimized, replayable contract-oracle failure — like
/// [`crate::shrink::CalibArtifact`], the evidence is an experiment, so the
/// artifact is the smallest experiment that still demonstrates it.
#[derive(Debug, Clone)]
pub struct ContractArtifact {
    pub class: ContractClass,
    pub cfg: ContractConfig,
    pub fault: Fault,
    pub report: ContractReport,
    /// Oracle runs spent shrinking (including the initial full run).
    pub runs_used: usize,
}

impl ContractArtifact {
    /// Re-run the minimized experiment (replay check).
    pub fn replay(&self) -> ContractReport {
        check_contract(&self.class, &self.cfg, self.fault)
    }
}

impl fmt::Display for ContractArtifact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "--- contract failure artifact ---")?;
        writeln!(f, "class:   {} ({})", self.class.kind, self.class.schema)?;
        writeln!(f, "sql:     {}", self.class.sql())?;
        writeln!(
            f,
            "recipe:  seeds={} rows={} k={} trials={} fault={:?}",
            self.cfg.seeds, self.cfg.rows, self.cfg.num_batches, self.cfg.trials, self.fault
        )?;
        writeln!(f, "result:  {}", self.report)?;
        write!(f, "---------------------------------")
    }
}

/// Shrink a failing contract class to the smallest `(seeds, rows)` that
/// still fails the same leg (promise vs coverage). Returns `None` if the
/// class passes at `base`.
pub fn shrink_contract(
    class: &ContractClass,
    base: &ContractConfig,
    fault: Fault,
) -> Option<ContractArtifact> {
    const MIN_SEEDS: usize = 20;
    let full = check_contract(class, base, fault);
    let kind = full.failure_kind()?;
    let mut runs_used = 1;
    let mut cfg = base.clone();
    let mut report = full;

    let probe = |cfg: &ContractConfig, runs_used: &mut usize| -> Option<ContractReport> {
        *runs_used += 1;
        let r = check_contract(class, cfg, fault);
        (r.failure_kind() == Some(kind)).then_some(r)
    };

    // Phase 1: smallest failing seed count.
    let mut fail_n = cfg.seeds;
    let mut pass_n = MIN_SEEDS - 1;
    while fail_n - pass_n > 1 {
        let mid = pass_n + (fail_n - pass_n) / 2;
        if mid < MIN_SEEDS {
            break;
        }
        let c = ContractConfig {
            seeds: mid,
            ..cfg.clone()
        };
        match probe(&c, &mut runs_used) {
            Some(r) => {
                fail_n = mid;
                report = r;
            }
            None => pass_n = mid,
        }
    }
    cfg.seeds = fail_n;

    // Phase 2: smallest failing dataset.
    let min_rows = (cfg.num_batches * 8).max(16);
    let mut fail_rows = cfg.rows;
    let mut pass_rows = min_rows - 1;
    while fail_rows - pass_rows > 1 {
        let mid = pass_rows + (fail_rows - pass_rows) / 2;
        if mid < min_rows {
            break;
        }
        let c = ContractConfig {
            rows: mid,
            ..cfg.clone()
        };
        match probe(&c, &mut runs_used) {
            Some(r) => {
                fail_rows = mid;
                report = r;
            }
            None => pass_rows = mid,
        }
    }
    cfg.rows = fail_rows;

    Some(ContractArtifact {
        class: class.clone(),
        cfg,
        fault,
        report,
        runs_used,
    })
}
