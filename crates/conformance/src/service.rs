//! The multi-tenant service leg of the conformance harness.
//!
//! The scheduler's core promise (DESIGN.md §3.11) is that *concurrency is
//! invisible in the answers*: a query admitted to a busy scheduler — time-
//! slicing one shared worker pool against arbitrary co-tenants, queued
//! behind admission control, preempted between every mini-batch — must
//! stream the exact same reports, bit for bit, as the same query run alone
//! on a single thread. This leg proves it generatively: M distinct
//! generated queries per schema are run solo (`threads = 1`, private
//! workers) and then interleaved through one [`Scheduler`] over a shared
//! pool, with mixed weights and a deliberately tight admission window so
//! the queue and saturation paths are actually exercised. Every session's
//! full stream must satisfy the same bit-identity oracle the differential
//! tier uses ([`crate::oracle`]'s `reports_identical`).
//!
//! The leg drives the *scheduler core* directly rather than the threaded
//! [`gola_core::sched::service`] wrapper: the wrapper serializes quanta
//! through this exact `Scheduler`, so equivalence proved here transfers,
//! while keeping the leg deterministic (no channel timing, no sockets).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use gola_bootstrap::BootstrapSpec;
use gola_core::sched::{PolicyConfig, QueryTask, Scheduler};
use gola_core::{BatchReport, OnlineConfig, OnlineSession, WorkerPool};
use gola_storage::{Catalog, Table};

use crate::gen::{QueryGen, SchemaClass};
use crate::oracle::reports_identical;

/// Execution parameters of one service-leg run (per schema class).
#[derive(Debug, Clone)]
pub struct ServiceLegConfig {
    /// Distinct generated queries interleaved through one scheduler.
    pub cases: usize,
    /// Fact-table rows.
    pub rows: usize,
    /// Mini-batches per query.
    pub num_batches: usize,
    /// Bootstrap trials per estimate.
    pub trials: u32,
    /// Shared worker-pool width for the interleaved run (solo runs use 1).
    pub pool_threads: usize,
    /// Admission: concurrently active sessions.
    pub max_active: usize,
    /// Admission: FIFO wait-queue depth.
    pub queue_capacity: usize,
    /// Mini-batch partition seed (shared by solo and interleaved runs).
    pub partition_seed: u64,
}

impl Default for ServiceLegConfig {
    fn default() -> ServiceLegConfig {
        ServiceLegConfig {
            cases: 12,
            rows: 360,
            num_batches: 5,
            trials: 16,
            pool_threads: 2,
            // Tighter than `cases` on purpose: admission must queue and
            // stall, or the leg never leaves the trivially-uncontended path.
            max_active: 3,
            queue_capacity: 2,
            partition_seed: 0xF1_00_DB,
        }
    }
}

/// What one green service-leg run covered.
#[derive(Debug, Clone, Copy)]
pub struct ServiceLegStats {
    /// Distinct queries compared.
    pub cases: usize,
    /// Scheduler rounds (quanta) executed in the interleaved run.
    pub rounds: usize,
    /// Sessions that entered via the wait queue rather than a free slot.
    pub queued_admissions: usize,
    /// Submissions that had to wait for the scheduler to retire work
    /// because both the active set and the queue were full.
    pub saturation_stalls: usize,
}

/// A service-leg failure, with the offending query attached so the case is
/// replayable by hand.
#[derive(Debug, Clone)]
pub enum ServiceLegFailure {
    /// The query failed to compile (generator bug — solo path).
    Compile { sql: String, detail: String },
    /// The solo reference run failed at execution time.
    Solo { sql: String, detail: String },
    /// The interleaved run failed at execution time.
    Service { sql: String, detail: String },
    /// The interleaved stream diverged from the solo stream.
    Mismatch {
        sql: String,
        batch: usize,
        detail: String,
    },
    /// A session was admitted but produced no stream (scheduler bug:
    /// admitted work must never be dropped).
    MissingStream { sql: String },
}

impl ServiceLegFailure {
    pub fn kind(&self) -> &'static str {
        match self {
            ServiceLegFailure::Compile { .. } => "compile",
            ServiceLegFailure::Solo { .. } => "solo",
            ServiceLegFailure::Service { .. } => "service",
            ServiceLegFailure::Mismatch { .. } => "mismatch",
            ServiceLegFailure::MissingStream { .. } => "missing-stream",
        }
    }
}

impl fmt::Display for ServiceLegFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceLegFailure::Compile { sql, detail } => {
                write!(f, "compile failed: {detail}\n  sql: {sql}")
            }
            ServiceLegFailure::Solo { sql, detail } => {
                write!(f, "solo run failed: {detail}\n  sql: {sql}")
            }
            ServiceLegFailure::Service { sql, detail } => {
                write!(f, "interleaved run failed: {detail}\n  sql: {sql}")
            }
            ServiceLegFailure::Mismatch { sql, batch, detail } => write!(
                f,
                "interleaved stream diverged from solo at batch {batch}: \
                 {detail}\n  sql: {sql}"
            ),
            ServiceLegFailure::MissingStream { sql } => {
                write!(f, "admitted session produced no stream\n  sql: {sql}")
            }
        }
    }
}

/// Run the service leg for one schema class under `seed`.
///
/// Generates `cfg.cases` distinct queries, runs each solo at
/// `threads = 1`, then all of them interleaved through one fair scheduler
/// over a shared `cfg.pool_threads`-wide pool, and demands every session's
/// full report stream be bit-identical to its solo reference.
pub fn run_service_leg(
    class: SchemaClass,
    seed: u64,
    cfg: &ServiceLegConfig,
) -> Result<ServiceLegStats, ServiceLegFailure> {
    let data = Arc::new(class.generate(cfg.rows, seed ^ 0xDA7A));
    let mut catalog = Catalog::new();
    catalog
        .register(class.table_name(), Arc::clone(&data))
        .map_err(|e| ServiceLegFailure::Compile {
            sql: String::new(),
            detail: e.to_string(),
        })?;

    let queries = distinct_queries(class, &data, seed, cfg.cases);

    let config = |threads: usize| OnlineConfig {
        num_batches: cfg.num_batches,
        bootstrap: BootstrapSpec::new(cfg.trials, 0x60_1A),
        partition_seed: cfg.partition_seed,
        threads,
        ..OnlineConfig::default()
    };

    // Solo references: each query alone, single-threaded, private workers.
    let mut solo: Vec<Vec<BatchReport>> = Vec::with_capacity(queries.len());
    for sql in &queries {
        let session = OnlineSession::new(catalog.clone(), config(1));
        let exec = session
            .execute_online(sql)
            .map_err(|e| ServiceLegFailure::Compile {
                sql: sql.clone(),
                detail: e.to_string(),
            })?;
        let reports = exec
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| ServiceLegFailure::Solo {
                sql: sql.clone(),
                detail: e.to_string(),
            })?;
        solo.push(reports);
    }

    // Interleaved run: all queries through one scheduler on a shared pool.
    let session = OnlineSession::new(catalog, config(cfg.pool_threads));
    let pool = Arc::new(WorkerPool::new(cfg.pool_threads));
    let mut sched: Scheduler<QueryTask> = Scheduler::new(PolicyConfig {
        max_active: cfg.max_active,
        queue_capacity: cfg.queue_capacity,
    });
    let mut streams: BTreeMap<u64, Vec<BatchReport>> = BTreeMap::new();
    let mut stats = ServiceLegStats {
        cases: queries.len(),
        rounds: 0,
        queued_admissions: 0,
        saturation_stalls: 0,
    };

    for (i, sql) in queries.iter().enumerate() {
        let prepared = session
            .prepare(sql)
            .map_err(|e| ServiceLegFailure::Compile {
                sql: sql.clone(),
                detail: e.to_string(),
            })?;
        let exec = session
            .execute_prepared_with_pool(&prepared, Arc::clone(&pool))
            .map_err(|e| ServiceLegFailure::Service {
                sql: sql.clone(),
                detail: e.to_string(),
            })?;
        // Mixed weights: fairness shares differ per session, which must
        // not matter to any answer — only to interleaving order.
        let weight = (i % 4 + 1) as u64;
        // Admission control may be saturated; retire work until a slot or
        // queue position frees. Admitted sessions are never dropped, so
        // this always terminates.
        while sched.num_active() >= cfg.max_active && sched.num_queued() >= cfg.queue_capacity {
            stats.saturation_stalls += 1;
            step(&mut sched, &mut streams, &mut stats, &queries)?;
        }
        let admitted =
            sched
                .submit(QueryTask::new(exec), weight)
                .map_err(|e| ServiceLegFailure::Service {
                    sql: sql.clone(),
                    detail: e.to_string(),
                })?;
        if matches!(admitted, gola_core::sched::Admitted::Queued(_)) {
            stats.queued_admissions += 1;
        }
        debug_assert_eq!(admitted.id().0, i as u64, "submission order assigns ids");
    }

    while !sched.is_idle() {
        step(&mut sched, &mut streams, &mut stats, &queries)?;
    }

    for (i, sql) in queries.iter().enumerate() {
        let got = streams
            .get(&(i as u64))
            .ok_or_else(|| ServiceLegFailure::MissingStream { sql: sql.clone() })?;
        reports_identical(&solo[i], got).map_err(|(batch, detail)| {
            ServiceLegFailure::Mismatch {
                sql: sql.clone(),
                batch,
                detail,
            }
        })?;
    }

    Ok(stats)
}

/// One scheduler round; appends the report (if any) to its session stream.
fn step(
    sched: &mut Scheduler<QueryTask>,
    streams: &mut BTreeMap<u64, Vec<BatchReport>>,
    stats: &mut ServiceLegStats,
    queries: &[String],
) -> Result<(), ServiceLegFailure> {
    let Some(round) = sched.round() else {
        return Ok(());
    };
    stats.rounds += 1;
    match round.output {
        Some(Ok(report)) => {
            streams.entry(round.id.0).or_default().push(report);
            Ok(())
        }
        Some(Err(e)) => Err(ServiceLegFailure::Service {
            sql: queries
                .get(round.id.0 as usize)
                .cloned()
                .unwrap_or_default(),
            detail: e.to_string(),
        }),
        None => Ok(()),
    }
}

/// Draw `n` distinct queries (by rendered SQL) for `class` under `seed`.
fn distinct_queries(class: SchemaClass, data: &Arc<Table>, seed: u64, n: usize) -> Vec<String> {
    let mut gen = QueryGen::new(class, data, seed);
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let sql = gen.next_query().sql(class.table_name());
        if seen.insert(sql.clone()) {
            out.push(sql);
        }
    }
    out
}
