//! Conformance smoke tier — the `cargo test` face of the harness.
//!
//! Small enough to run in tier-1, large enough to mean something:
//!
//! * ≥ 100 distinct generated queries per schema through the differential
//!   and invariant oracles at threads {1, 4}
//! * CI calibration of every default class over 200 seeded datasets,
//!   checked against the exact binomial acceptance band
//! * two planted estimator bugs demonstrably caught: the off-by-one
//!   bootstrap weight (calibration oracle, per-aggregate-kind report) and
//!   an online result skew (differential oracle) — each shrunk to a
//!   minimal replayable artifact
//!
//! The `--release` soak binary (`gola-soak`) runs the same oracles at
//! fuzzing scale; see `scripts/check.sh --soak`.

use std::collections::BTreeSet;
use std::sync::Arc;

use gola_conformance::gen::{Filter, GroupBy};
use gola_conformance::{
    calibrate, check_contract, default_classes, default_contract_classes, run_case,
    shrink_calibration, shrink_case, shrink_contract, CalibConfig, ContractConfig, Fault,
    OracleConfig, QueryGen, SchemaClass,
};
use gola_storage::{ColumnChunk, Table};

const ROWS: usize = 360;
const DATA_SEED: u64 = 0x5EED_DA7A;
const QUERIES_PER_SCHEMA: usize = 100;

fn oracle_cfg() -> OracleConfig {
    OracleConfig {
        num_batches: 5,
        trials: 24,
        threads: 4,
        ..OracleConfig::default()
    }
}

/// Differential + invariant oracles over a generated corpus: ≥ 100 distinct
/// queries per schema, each run at threads 1, 1 (rerun), and 4.
#[test]
fn generated_corpus_passes_differential_and_invariant_oracles() {
    let cfg = oracle_cfg();
    for class in [SchemaClass::Conviva, SchemaClass::Tpch] {
        let data = Arc::new(class.generate(ROWS, DATA_SEED));
        let mut gen = QueryGen::new(class, &data, 0xC0FFEE ^ class.table_name().len() as u64);
        let mut seen = BTreeSet::new();
        let mut grouped = 0usize;
        let mut subquery = 0usize;
        let mut with_uncertainty = 0usize;
        let mut failures = Vec::new();
        while seen.len() < QUERIES_PER_SCHEMA {
            let q = gen.next_query();
            let sql = q.sql(class.table_name());
            if !seen.insert(sql.clone()) {
                continue;
            }
            grouped += usize::from(q.group_by.is_some());
            subquery += usize::from(q.filters.iter().any(|f| {
                matches!(
                    f,
                    Filter::ScalarSub { .. } | Filter::CorrSub { .. } | Filter::Membership { .. }
                )
            }));
            match run_case(class, &data, &sql, q.key_cols(), &cfg, Fault::None) {
                Ok(stats) => with_uncertainty += usize::from(stats.uncertain_peak > 0),
                Err(f) => failures.push(format!("{sql}\n    -> {f}")),
            }
        }
        assert!(
            failures.is_empty(),
            "{} oracle failure(s) on {class}:\n{}",
            failures.len(),
            failures.join("\n")
        );
        // The corpus must actually exercise the hard paths, or a green run
        // proves nothing.
        assert!(grouped >= 20, "{class}: only {grouped} grouped queries");
        assert!(subquery >= 5, "{class}: only {subquery} subquery queries");
        assert!(
            with_uncertainty >= 1,
            "{class}: no query ever produced an uncertain set"
        );
    }
}

/// Calibration oracle, clean: every default class's empirical 95% CI
/// coverage over 200 seeded datasets lands inside the binomial band.
#[test]
fn calibration_coverage_within_binomial_band() {
    let cfg = CalibConfig::default();
    assert!(cfg.seeds >= 200, "ISSUE floor: ≥ 200 seeds per class");
    for class in default_classes() {
        let report = calibrate(&class, &cfg, Fault::None);
        assert!(report.pass, "calibration failed clean: {report}");
    }
}

/// Contract oracle, clean: every default `ERROR p% CONFIDENCE c%` class
/// over 200 seeded datasets keeps its promise (zero runs that claim the
/// target was met while the achieved relative error exceeds it) and stays
/// within-contract often enough (binomial band at the contract confidence;
/// exhausted runs are exact and count as hits). The suite must actually
/// stop early somewhere, or the oracle would be vacuous.
#[test]
fn contract_oracle_clean_within_band() {
    let cfg = ContractConfig::default();
    assert!(cfg.seeds >= 200, "ISSUE floor: ≥ 200 seeds per class");
    let mut stopped_early = 0;
    for class in default_contract_classes() {
        let report = check_contract(&class, &cfg, Fault::None);
        assert!(report.pass, "contract oracle failed clean: {report}");
        assert_eq!(report.violations, 0, "{report}");
        stopped_early += report.stopped_early;
    }
    assert!(
        stopped_early > 100,
        "suite never exercises early stopping ({stopped_early} early stops)"
    );
}

/// Planted bug #3: the absolute-instead-of-relative stopping rule
/// (`ERROR 5%` read as "half-width ≤ 0.05" instead of "≤ 5% of the
/// value"). The differential oracle cannot see it — only *when* the run
/// stops changes, not the answer — but on the `rate` class (a ≈0.04
/// failure rate) an absolute 0.05 is satisfied almost immediately while
/// the relative error is still ~10×, so the promise check trips
/// deterministically. The failing experiment then shrinks to the cheapest
/// replayable recipe, which must still fail on the same leg.
#[test]
fn injected_absolute_stopping_rule_is_caught_and_shrunk() {
    let cfg = ContractConfig::default();
    let rate = default_contract_classes()
        .into_iter()
        .find(|c| c.kind == "rate")
        .expect("rate class present");

    let report = check_contract(&rate, &cfg, Fault::AbsoluteStop);
    assert!(!report.pass, "AbsoluteStop must be caught: {report}");
    assert!(
        report.violations > 0,
        "the promise leg, not just coverage, must trip: {report}"
    );

    let artifact =
        shrink_contract(&rate, &cfg, Fault::AbsoluteStop).expect("failing class must shrink");
    assert!(
        artifact.cfg.seeds < cfg.seeds && artifact.cfg.rows < cfg.rows,
        "artifact not minimized: {artifact}"
    );
    let replay = artifact.replay();
    assert!(!replay.pass, "artifact must replay the failure: {replay}");
    assert!(
        replay.violations > 0,
        "replay lost the promise leg: {replay}"
    );

    // The honest rule on the same class is clean — the fault is the rule,
    // not the class.
    let clean = check_contract(&rate, &artifact.cfg, Fault::None);
    assert_eq!(clean.violations, 0, "honest rule violated promise: {clean}");
}

/// Planted bug #1: the off-by-one bootstrap weight. Point estimates are
/// untouched, so only the calibration oracle can see it — coverage
/// collapses for SUM/COUNT-like classes (every replica roughly doubles)
/// while AVG, a ratio whose skew cancels, degrades less. The failing class
/// is then shrunk to the cheapest replayable experiment.
#[test]
fn injected_weight_bias_is_caught_and_shrunk() {
    let cfg = CalibConfig::default();
    let classes = default_classes();
    let mut caught = Vec::new();
    for class in &classes {
        let report = calibrate(class, &cfg, Fault::WeightBias);
        if !report.pass {
            caught.push((class, report));
        }
    }
    let kinds: Vec<&str> = caught.iter().map(|(c, _)| c.kind).collect();
    assert!(
        kinds.contains(&"count") && kinds.contains(&"sum"),
        "weight bias must collapse count/sum coverage; caught only {kinds:?}"
    );

    let (class, _) = &caught[0];
    let artifact =
        shrink_calibration(class, &cfg, Fault::WeightBias).expect("failing class must shrink");
    assert!(
        artifact.cfg.seeds < cfg.seeds && artifact.cfg.rows < cfg.rows,
        "artifact not minimized: {artifact}"
    );
    let replay = artifact.replay();
    assert!(!replay.pass, "artifact must replay the failure: {replay}");
}

/// Planted bug #2: a multiplicative skew on the online executor's final
/// float cells. The differential oracle catches it (final batch no longer
/// bit-matches the exact engine), and the shrinker minimizes the first
/// failing generated query to a small replayable `seed + SQL` artifact.
#[test]
fn injected_online_skew_is_caught_and_shrunk() {
    let class = SchemaClass::Conviva;
    let fault = Fault::SkewOnline(1.001);
    let cfg = oracle_cfg();
    let data = Arc::new(class.generate(ROWS, DATA_SEED));
    let mut gen = QueryGen::new(class, &data, 0xBAD_5EED);
    let (query, failure) = std::iter::from_fn(|| Some(gen.next_query()))
        .take(50)
        .find_map(|q| {
            let sql = q.sql(class.table_name());
            run_case(class, &data, &sql, q.key_cols(), &cfg, fault)
                .err()
                .map(|f| (q, f))
        })
        .expect("skew fault must trip the differential oracle within 50 queries");
    assert_eq!(
        failure.kind(),
        "differential",
        "unexpected failure: {failure}"
    );

    let artifact = shrink_case(class, DATA_SEED, &data, &query, &cfg, fault, &failure);
    assert_eq!(artifact.failure.kind(), "differential");
    assert!(
        artifact.rows < ROWS,
        "rows not minimized: {} of {ROWS}",
        artifact.rows
    );
    assert!(
        artifact.sql.len() <= query.sql(class.table_name()).len(),
        "shrinking must never grow the query"
    );
    let replayed = artifact.replay().expect("artifact must replay the failure");
    assert_eq!(
        replayed.kind(),
        "differential",
        "replay diverged: {replayed}"
    );
}

/// Columnar-path smoke: the fact table is deliberately re-chunked into
/// small, irregular [`ColumnChunk`]s — every low-cardinality group (and in
/// particular every dictionary-encoded string key) splits across many chunk
/// boundaries, and each chunk carries its own string dictionary. The corpus
/// is restricted to queries that group or filter on string columns, so the
/// vectorized classify kernels run against dictionary codes and the
/// per-group fold merges partial states that originate in different
/// chunks. The differential oracle then checks exactness and the
/// threads-{1,1,4} runs check merge-order bit-identity.
#[test]
fn columnar_chunk_splits_and_dictionary_strings_pass_oracles() {
    let cfg = oracle_cfg();
    for class in [SchemaClass::Conviva, SchemaClass::Tpch] {
        let generated = class.generate(ROWS, DATA_SEED ^ 0xC01);
        let schema = Arc::clone(generated.schema());
        let rows = generated.rows();
        // Irregular chunk lengths (including a singleton) so no index
        // arithmetic shortcut survives: 37, 1, 96, 37, 1, 96, ...
        let mut chunks = Vec::new();
        let mut at = 0usize;
        for (i, _) in std::iter::repeat(()).enumerate() {
            if at >= rows.len() {
                break;
            }
            let take = [37usize, 1, 96][i % 3].min(rows.len() - at);
            chunks.push(ColumnChunk::from_rows(&schema, &rows[at..at + take]));
            at += take;
        }
        assert!(chunks.len() > 4, "re-chunking must produce many chunks");
        let data = Arc::new(Table::from_chunks(schema, chunks).expect("consistent chunks"));
        assert_eq!(data.num_rows(), rows.len());

        let strs: BTreeSet<&str> = class.info().str_keys.iter().map(|(c, _)| *c).collect();
        let mut gen = QueryGen::new(class, &data, 0xD1C7_0000 ^ class.table_name().len() as u64);
        let mut seen = BTreeSet::new();
        let mut str_grouped = 0usize;
        let mut str_filtered = 0usize;
        let mut failures = Vec::new();
        let mut attempts = 0usize;
        // Collect until both coverage quotas are met, not a fixed count —
        // the generator's mix of string-keyed shapes varies per schema.
        while str_grouped < 10 || str_filtered < 8 {
            attempts += 1;
            assert!(
                attempts < 5000,
                "{class}: generator starved of string-key queries"
            );
            let q = gen.next_query();
            let grouped_on_str =
                matches!(&q.group_by, Some(GroupBy::Key(c)) if strs.contains(c.as_str()));
            let filtered_on_str = q
                .filters
                .iter()
                .any(|f| matches!(f, Filter::KeyEq { col, .. } if strs.contains(col.as_str())));
            if !(grouped_on_str || filtered_on_str) {
                continue;
            }
            let sql = q.sql(class.table_name());
            if !seen.insert(sql.clone()) {
                continue;
            }
            str_grouped += usize::from(grouped_on_str);
            str_filtered += usize::from(filtered_on_str);
            if let Err(f) = run_case(class, &data, &sql, q.key_cols(), &cfg, Fault::None) {
                failures.push(format!("{sql}\n    -> {f}"));
            }
        }
        assert!(
            failures.is_empty(),
            "{} columnar oracle failure(s) on {class}:\n{}",
            failures.len(),
            failures.join("\n")
        );
        assert!(
            seen.len() >= 15,
            "{class}: only {} distinct queries",
            seen.len()
        );
    }
}

/// Service leg, smoke tier: generated queries interleaved through one fair
/// scheduler on a shared pool must stream bit-identically to their solo
/// single-threaded runs — with the admission queue actually exercised.
/// (`gola-service` runs the same leg at fuzzing volume.)
#[test]
fn interleaved_service_streams_match_solo_runs() {
    use gola_conformance::{run_service_leg, ServiceLegConfig};
    let cfg = ServiceLegConfig {
        cases: 10,
        rows: ROWS,
        ..ServiceLegConfig::default()
    };
    for class in [SchemaClass::Conviva, SchemaClass::Tpch] {
        let stats = run_service_leg(class, 0x05E4_A1CE, &cfg)
            .unwrap_or_else(|f| panic!("service leg failed on {class} [{}]: {f}", f.kind()));
        assert_eq!(stats.cases, 10);
        assert!(
            stats.queued_admissions > 0,
            "{class}: admission queue never exercised ({stats:?})"
        );
    }
}
