//! The blessed home for wall-clock reads.
//!
//! G-OLA's determinism contract (threads=1 ≡ threads=N bit-identical
//! `BatchReport`s) means estimator state must never depend on physical time
//! or the physical schedule. Wall-clock reads are still needed — batch
//! timing telemetry, baseline comparisons, the CLI's `\exact` timer — so
//! they are funneled through this module, which `golint`'s `schedule-leak`
//! rule blesses. Code anywhere else that touches `Instant`, `SystemTime`,
//! thread identity, or thread counts is a lint diagnostic: either route it
//! through a [`Stopwatch`], or it does not belong outside `crates/bench`.
//!
//! The rule this module encodes: a `Duration` may flow into *telemetry*
//! (`BatchTiming`), never into *estimator state*. `Stopwatch` only hands
//! out `Duration`s, keeping the raw `Instant` anchors private.

use std::time::{Duration, Instant};

/// A monotonically-anchored timer. The only sanctioned way to measure
/// elapsed wall-clock time outside benchmark code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stopwatch {
    anchor: Instant,
}

impl Stopwatch {
    /// Start (or restart) a stopwatch at the current instant.
    pub fn start() -> Stopwatch {
        Stopwatch {
            anchor: Instant::now(),
        }
    }

    /// Time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.anchor.elapsed()
    }

    /// Time between an `earlier` stopwatch's anchor and this one's —
    /// saturating to zero, like `Instant` subtraction.
    pub fn since(&self, earlier: &Stopwatch) -> Duration {
        self.anchor.duration_since(earlier.anchor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed();
        let b = sw.elapsed();
        assert!(b >= a);
    }

    #[test]
    fn since_orders_anchors() {
        let early = Stopwatch::start();
        let late = Stopwatch::start();
        // `late` was started after `early`, so the gap is non-negative and
        // the reverse direction saturates to zero.
        let gap = late.since(&early);
        assert_eq!(early.since(&late), Duration::ZERO.max(early.since(&late)));
        assert!(gap >= Duration::ZERO);
    }
}
