//! Small statistics helpers shared by the bootstrap and benchmark crates.

/// Arithmetic mean. Returns `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    // golint: allow(float-fold-ordering) -- left-to-right over the caller's
    // slice; every caller passes deterministically-ordered trial vectors
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Population standard deviation. Returns `None` for an empty slice.
pub fn stddev_pop(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    // golint: allow(float-fold-ordering) -- same slice-order contract as mean
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    Some(var.sqrt())
}

/// Sample standard deviation (n−1 denominator). Returns `None` when n < 2.
pub fn stddev_sample(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    // golint: allow(float-fold-ordering) -- same slice-order contract as mean
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    Some(var.sqrt())
}

/// Percentile with linear interpolation (`q` in `[0, 1]`), like numpy's
/// default. Returns `None` for an empty slice. Sorts a copy.
///
/// The pinned convention (exercised by the unit tests below, relied on by
/// `gola_bootstrap::Estimate::ci_percentile`):
///
/// * **linear interpolation** between order statistics — `pos = q·(n−1)`,
///   result `= x[⌊pos⌋]·(1−frac) + x[⌈pos⌉]·frac` — *not* nearest-rank;
/// * `n = 1` returns the single element for every `q`;
/// * when `pos` lands exactly on an index (including the `q = 0` / `q = 1`
///   endpoints) the element is returned as-is, with no arithmetic applied;
/// * `q` outside `[0, 1]` clamps to the endpoints.
pub fn percentile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    Some(percentile_sorted(&v, q))
}

/// Percentile over an already-sorted slice. Panics on empty input.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Online mean/variance accumulator (Welford), with merge support so it can
/// be maintained per mini-batch and combined.
#[derive(Debug, Clone, Copy, Default)]
pub struct Welford {
    pub count: f64,
    pub mean: f64,
    m2: f64,
}

impl Welford {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an observation with a (possibly fractional) weight.
    pub fn add_weighted(&mut self, x: f64, w: f64) {
        if w <= 0.0 {
            return;
        }
        let new_count = self.count + w;
        let delta = x - self.mean;
        self.mean += delta * w / new_count;
        self.m2 += w * delta * (x - self.mean);
        self.count = new_count;
    }

    pub fn add(&mut self, x: f64) {
        self.add_weighted(x, 1.0);
    }

    /// Merge another accumulator (parallel variance formula).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0.0 {
            return;
        }
        if self.count == 0.0 {
            *self = *other;
            return;
        }
        // golint: allow(merge-commutativity) -- parallel-variance formula is inherently rounding; Welford is the baseline/diagnostic accumulator — the engine's deterministic result path merges via ExactSum (fsum)
        let total = self.count + other.count;
        // golint: allow(merge-commutativity) -- see above: baseline-only accumulator
        let delta = other.mean - self.mean;
        // golint: allow(merge-commutativity) -- see above: baseline-only accumulator
        self.mean += delta * other.count / total;
        // golint: allow(merge-commutativity) -- see above: baseline-only accumulator
        self.m2 += other.m2 + delta * delta * self.count * other.count / total;
        self.count = total;
    }

    /// Population variance; `None` if no weight observed.
    pub fn variance_pop(&self) -> Option<f64> {
        if self.count > 0.0 {
            Some((self.m2 / self.count).max(0.0))
        } else {
            None
        }
    }

    /// Sample variance; `None` if weight ≤ 1.
    pub fn variance_sample(&self) -> Option<f64> {
        if self.count > 1.0 {
            Some((self.m2 / (self.count - 1.0)).max(0.0))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), Some(5.0));
        assert!((stddev_pop(&xs).unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), None);
        assert_eq!(stddev_pop(&[]), None);
        assert_eq!(stddev_sample(&[1.0]), None);
    }

    #[test]
    fn percentiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 1.0), Some(4.0));
        assert_eq!(percentile(&xs, 0.5), Some(2.5));
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn percentile_unsorted_input() {
        let xs = [9.0, 1.0, 5.0];
        assert_eq!(percentile(&xs, 0.5), Some(5.0));
    }

    #[test]
    fn percentile_single_element_for_any_q() {
        for q in [-1.0, 0.0, 0.025, 0.31, 0.5, 0.975, 1.0, 2.0] {
            assert_eq!(percentile(&[7.25], q), Some(7.25), "q = {q}");
        }
    }

    #[test]
    fn percentile_two_elements_interpolates_linearly() {
        // n = 2: pos = q, so the result is the straight line between the
        // two order statistics — the convention ci_percentile leans on at
        // the smallest replica counts.
        let xs = [10.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(4.0));
        assert_eq!(percentile(&xs, 1.0), Some(10.0));
        let lo = percentile(&xs, 0.025).unwrap();
        assert!((lo - (4.0 * 0.975 + 10.0 * 0.025)).abs() < 1e-12, "lo {lo}");
        let hi = percentile(&xs, 0.975).unwrap();
        assert!((hi - (4.0 * 0.025 + 10.0 * 0.975)).abs() < 1e-12, "hi {hi}");
    }

    #[test]
    fn percentile_exact_index_hits_skip_interpolation() {
        // pos = q·(n−1) landing on an integer returns that element with no
        // floating-point arithmetic applied — bit-exact.
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        for (q, want) in [
            (0.0, 1.0f64),
            (0.25, 2.0),
            (0.5, 3.0),
            (0.75, 4.0),
            (1.0, 5.0),
        ] {
            let got = percentile(&xs, q).unwrap();
            assert_eq!(got.to_bits(), want.to_bits(), "q = {q}");
        }
        // Endpoints are exact hits even when (n−1)·q would round badly.
        let odd = [0.1, 0.2, 0.3];
        assert_eq!(percentile(&odd, 1.0).unwrap().to_bits(), 0.3f64.to_bits());
    }

    #[test]
    fn percentile_out_of_range_q_clamps() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(percentile(&xs, -0.5), Some(1.0));
        assert_eq!(percentile(&xs, 1.5), Some(3.0));
    }

    #[test]
    fn welford_matches_direct() {
        let xs = [1.5, -2.0, 3.25, 8.0, 0.0, 4.5];
        let mut w = Welford::new();
        for &x in &xs {
            w.add(x);
        }
        assert!((w.mean - mean(&xs).unwrap()).abs() < 1e-12);
        assert!((w.variance_pop().unwrap().sqrt() - stddev_pop(&xs).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn welford_merge_matches_single_pass() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 - 5.0).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.add(x);
        }
        for &x in &xs[37..] {
            b.add(x);
        }
        a.merge(&b);
        assert!((a.mean - whole.mean).abs() < 1e-9);
        assert!((a.variance_pop().unwrap() - whole.variance_pop().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn welford_weighted_equals_repetition() {
        let mut w1 = Welford::new();
        w1.add_weighted(3.0, 4.0);
        w1.add_weighted(7.0, 2.0);
        let mut w2 = Welford::new();
        for _ in 0..4 {
            w2.add(3.0);
        }
        for _ in 0..2 {
            w2.add(7.0);
        }
        assert!((w1.mean - w2.mean).abs() < 1e-12);
        assert!((w1.variance_pop().unwrap() - w2.variance_pop().unwrap()).abs() < 1e-12);
    }

    #[test]
    fn welford_zero_weight_ignored() {
        let mut w = Welford::new();
        w.add_weighted(5.0, 0.0);
        assert_eq!(w.count, 0.0);
        assert_eq!(w.variance_pop(), None);
    }
}
