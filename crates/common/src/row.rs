//! Row storage.
//!
//! The engine is a row store: a [`Row`] is a boxed slice of [`Value`]s.
//! Boxed slices shave a word off `Vec` and signal immutability — rows are
//! built once (by generators, scans, or projections) and then only read.

use std::fmt;
use std::sync::Arc;

use crate::value::Value;

/// A single tuple.
// golint: allow(float-total-order) -- the derived impls delegate to `Value`,
// whose PartialEq/Eq/Hash are the manual total order (value.rs): NaN equals
// itself and hashes consistently, so the derive is total, not IEEE-partial.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Row {
    values: Arc<[Value]>,
}

impl Row {
    /// Build a row from values.
    pub fn new(values: Vec<Value>) -> Self {
        Row {
            values: Arc::from(values),
        }
    }

    pub fn values(&self) -> &[Value] {
        &self.values
    }

    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Project columns by index into a new row.
    pub fn project(&self, indices: &[usize]) -> Row {
        Row::new(indices.iter().map(|&i| self.values[i].clone()).collect())
    }

    /// Concatenate two rows (join output).
    pub fn concat(&self, other: &Row) -> Row {
        let mut v = Vec::with_capacity(self.len() + other.len());
        v.extend_from_slice(&self.values);
        v.extend_from_slice(&other.values);
        Row::new(v)
    }

    /// Iterate over the values.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.values.iter()
    }
}

impl From<Vec<Value>> for Row {
    fn from(v: Vec<Value>) -> Self {
        Row::new(v)
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

/// Build a row from an array of things convertible into [`Value`].
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        $crate::Row::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_and_access() {
        let r = row![1i64, 2.5f64, "x", true];
        assert_eq!(r.len(), 4);
        assert_eq!(r.get(0), &Value::Int(1));
        assert_eq!(r.get(2), &Value::str("x"));
    }

    #[test]
    fn project_and_concat() {
        let r = row![1i64, 2i64, 3i64];
        let p = r.project(&[2, 0]);
        assert_eq!(p.values(), &[Value::Int(3), Value::Int(1)]);
        let c = p.concat(&row![9i64]);
        assert_eq!(c.values(), &[Value::Int(3), Value::Int(1), Value::Int(9)]);
    }

    #[test]
    fn clone_is_cheap_shared() {
        let r = row![1i64, 2i64];
        let c = r.clone();
        assert_eq!(r, c);
        // Arc-backed: same allocation.
        assert!(std::ptr::eq(r.values().as_ptr(), c.values().as_ptr()));
    }

    #[test]
    fn display() {
        assert_eq!(row![1i64, "a"].to_string(), "[1, a]");
    }
}
