//! A fast, non-cryptographic hasher (FxHash, the algorithm used by rustc).
//!
//! Grouping and join hash tables are the hottest structures in the engine
//! and their keys are engine-internal (no HashDoS exposure), so we trade
//! SipHash's collision resistance for speed. Implemented in-repo to keep the
//! dependency set to the allowed list.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, FxBuildHasher>;
/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The FxHash state: a single u64 folded with multiply-rotate.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
            // Length tag prevents "ab" + "" colliding with "a" + "b".
            self.add_to_hash(rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Full-avalanche finalizer. The multiply-rotate folding above only
        // propagates entropy upward, so without this the low output bits
        // depend only on the low input bits — catastrophic for hashbrown,
        // which picks buckets from the low bits. (f64-encoded integer keys,
        // whose low mantissa bits are all zero, otherwise collapse into one
        // bucket and turn maps quadratic.)
        crate::rng::mix(self.hash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn fx<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(fx(&42u64), fx(&42u64));
        assert_eq!(fx(&"hello"), fx(&"hello"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(fx(&1u64), fx(&2u64));
        assert_ne!(fx(&"a"), fx(&"b"));
        assert_ne!(fx(&"abc"), fx(&"ab"));
    }

    #[test]
    fn map_works() {
        let mut m: FxHashMap<String, i32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(format!("k{i}"), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get("k123"), Some(&123));
    }

    #[test]
    fn spread_over_buckets() {
        // Sanity-check distribution: 10k sequential ints into 64 buckets,
        // no bucket should be wildly overloaded.
        let mut buckets = [0usize; 64];
        for i in 0..10_000u64 {
            buckets[(fx(&i) % 64) as usize] += 1;
        }
        let max = *buckets.iter().max().unwrap();
        let min = *buckets.iter().min().unwrap();
        assert!(max < 10_000 / 64 * 3, "max bucket {max}");
        assert!(min > 0, "empty bucket");
    }
}
