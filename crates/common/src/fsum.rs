//! Exact, order-independent floating-point accumulation.
//!
//! The online executor folds tuples in mini-batch (permutation) order while
//! the batch engine folds the same tuples in table order. Plain `f64`
//! addition is not associative, so the two paths used to disagree in the
//! last bits — which is why older end-to-end tests compared answers with a
//! `1e-6` tolerance. The conformance harness demands more: the final-batch
//! online answer must *bit-match* the exact engine answer.
//!
//! [`ExactSum`] delivers that. It maintains the running sum as a Shewchuk
//! floating-point expansion — a list of non-overlapping components whose
//! mathematical sum is *exactly* the sum of everything added — using only
//! error-free transforms ([`two_sum`], [`two_product`]). Because the
//! representation is exact, [`ExactSum::value`] (the correctly-rounded
//! top of a compressed expansion) depends only on the *multiset* of inputs,
//! never on the order they arrived or how partial sums were merged.
//!
//! References: J. R. Shewchuk, "Adaptive Precision Floating-Point
//! Arithmetic and Fast Robust Geometric Predicates" (1997) — GROW-EXPANSION
//! and COMPRESS.

/// Error-free transform: returns `(s, e)` with `s = fl(a + b)` and
/// `a + b = s + e` exactly (Knuth's TwoSum; no magnitude precondition).
#[inline]
pub fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let bb = s - a;
    let err = (a - (s - bb)) + (b - bb);
    (s, err)
}

/// Error-free transform for products: `(p, e)` with `p = fl(a · b)` and
/// `a · b = p + e` exactly, via fused multiply-add.
#[inline]
pub fn two_product(a: f64, b: f64) -> (f64, f64) {
    let p = a * b;
    let err = a.mul_add(b, -p);
    (p, err)
}

/// Fast variant of [`two_sum`] requiring `|a| >= |b|` (Dekker).
#[inline]
fn fast_two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let err = b - (s - a);
    (s, err)
}

/// An exact running sum of `f64` values.
///
/// All of `add`, `add_product` and `merge` preserve the invariant that the
/// components sum to the exact (real-arithmetic) total, so `value()` is a
/// pure function of the multiset of contributions: permuting the update
/// order, or splitting the stream across shards and merging, cannot change
/// a single bit of the result.
///
/// Non-finite inputs (and overflow past ~1.8e308 during accumulation) fall
/// back to a sticky IEEE scalar so NaN/∞ propagate deterministically.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExactSum {
    /// Non-overlapping expansion components, increasing magnitude.
    comps: Vec<f64>,
    /// Sticky non-finite accumulator; `0.0` while everything is finite.
    special: f64,
}

impl ExactSum {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in one value (exact).
    #[inline]
    pub fn add(&mut self, x: f64) {
        if x == 0.0 {
            return;
        }
        if !x.is_finite() || self.special != 0.0 {
            self.special += x;
            return;
        }
        self.grow(x);
    }

    /// Fold in `a · b` exactly (both rounding error and product are kept).
    #[inline]
    pub fn add_product(&mut self, a: f64, b: f64) {
        let (p, e) = two_product(a, b);
        self.add(e);
        self.add(p);
    }

    /// Fold another exact sum in (exact; order of merges is irrelevant).
    pub fn merge(&mut self, other: &ExactSum) {
        if other.special != 0.0 {
            self.special += other.special;
        }
        for &c in &other.comps {
            self.add(c);
        }
    }

    /// Shewchuk GROW-EXPANSION with zero elimination. `x` must be finite
    /// and nonzero.
    fn grow(&mut self, x: f64) {
        let mut q = x;
        let mut j = 0usize;
        for i in 0..self.comps.len() {
            let (s, e) = two_sum(q, self.comps[i]);
            q = s;
            if e != 0.0 {
                self.comps[j] = e;
                j += 1;
            }
        }
        self.comps.truncate(j);
        if !q.is_finite() {
            // The running total escaped the f64 range: from here on results
            // are saturated and only IEEE-deterministic, not exact.
            self.comps.clear();
            self.special += q;
            return;
        }
        if q != 0.0 {
            self.comps.push(q);
        }
    }

    /// `true` if nothing (or only zeros) has been folded in.
    pub fn is_zero(&self) -> bool {
        self.comps.is_empty() && self.special == 0.0
    }

    /// The correctly-rounded value of the exact sum: COMPRESS the expansion
    /// and return its top component (within half an ulp of the true total,
    /// per Shewchuk Theorem 23). Deterministic per input multiset.
    pub fn value(&self) -> f64 {
        if self.special != 0.0 {
            return self.special;
        }
        let m = self.comps.len();
        match m {
            0 => 0.0,
            1 => self.comps[0],
            _ => {
                // Stack buffer for the overwhelmingly common short case.
                let mut buf = [0.0f64; 16];
                if m <= buf.len() {
                    buf[..m].copy_from_slice(&self.comps);
                    compress_top(&mut buf[..m])
                } else {
                    let mut v = self.comps.clone();
                    compress_top(&mut v)
                }
            }
        }
    }
}

/// Shewchuk COMPRESS over a scratch expansion (increasing magnitude,
/// non-overlapping); returns the largest output component, which carries
/// the correctly-rounded total.
fn compress_top(g: &mut [f64]) -> f64 {
    let m = g.len();
    // Downward pass: absorb components into Q top-down, parking each
    // rounded partial at the top of the scratch space.
    let mut q = g[m - 1];
    let mut bottom = m - 1;
    for i in (0..m - 1).rev() {
        let (s, small) = fast_two_sum(q, g[i]);
        q = s;
        if small != 0.0 {
            g[bottom] = q;
            bottom -= 1;
            q = small;
        }
    }
    g[bottom] = q;
    // Upward pass: re-accumulate bottom-up (Q starts as the parked bottom
    // component); the final Q is the top component of the compressed
    // expansion.
    for &c in g.iter().take(m).skip(bottom + 1) {
        let (s, _small) = fast_two_sum(c, q);
        q = s;
    }
    q
}

/// Exact weighted first and second moments, for VAR_POP / STDDEV.
///
/// Keeps `Σw`, `Σw·x` and `Σw·x²` as exact sums, so the derived variance is
/// a deterministic function of the observation multiset — the property the
/// conformance harness's bit-match oracle needs, and what lets the agg
/// proptests demand weighted-vs-repeated agreement at 1e-9 instead of the
/// old Welford state's 1e-4.
///
/// `variance_pop` uses the textbook `E[x²] − E[x]²` form on the *exact*
/// moments: its only rounding happens in the final few flops, identically
/// on every update order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExactVariance {
    /// Total weight Σw (plain f64: engine weights are small integers, so
    /// this is exact and order-independent on its own).
    pub count: f64,
    sum: ExactSum,
    sumsq: ExactSum,
}

impl ExactVariance {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an observation with weight `w` (non-positive weights are no-ops).
    #[inline]
    pub fn add_weighted(&mut self, x: f64, w: f64) {
        if w <= 0.0 {
            return;
        }
        self.count += w;
        let (p, e) = two_product(x, x);
        if w == 1.0 {
            self.sum.add(x);
            self.sumsq.add(e);
            self.sumsq.add(p);
        } else {
            self.sum.add_product(x, w);
            self.sumsq.add_product(e, w);
            self.sumsq.add_product(p, w);
        }
    }

    /// Add an unweighted observation.
    #[inline]
    pub fn add(&mut self, x: f64) {
        self.add_weighted(x, 1.0);
    }

    /// Merge another accumulator (exact, order-insensitive).
    pub fn merge(&mut self, other: &ExactVariance) {
        self.count += other.count;
        self.sum.merge(&other.sum);
        self.sumsq.merge(&other.sumsq);
    }

    /// Weighted mean; `None` with no observations.
    pub fn mean(&self) -> Option<f64> {
        if self.count <= 0.0 {
            return None;
        }
        Some(self.sum.value() / self.count)
    }

    /// Population variance; `None` with no observations. Clamped at zero
    /// (the subtraction can go negative by rounding when variance ≈ 0).
    pub fn variance_pop(&self) -> Option<f64> {
        if self.count <= 0.0 {
            return None;
        }
        let mean = self.sum.value() / self.count;
        let ex2 = self.sumsq.value() / self.count;
        Some((ex2 - mean * mean).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn two_sum_is_error_free() {
        let (s, e) = two_sum(1.0, 1e-20);
        assert_eq!(s, 1.0);
        assert_eq!(e, 1e-20);
        let (s, e) = two_sum(0.1, 0.2);
        // s + e reconstructs more of the true sum than s alone.
        assert_eq!(s, 0.1 + 0.2);
        assert!(e != 0.0);
    }

    #[test]
    fn two_product_is_error_free() {
        let (p, e) = two_product(1.0 + f64::EPSILON, 1.0 + f64::EPSILON);
        assert_eq!(p, (1.0 + f64::EPSILON) * (1.0 + f64::EPSILON));
        assert!(e != 0.0, "square of 1+ε is not exactly representable");
    }

    #[test]
    fn sums_cancelling_magnitudes_exactly() {
        let mut s = ExactSum::new();
        s.add(1e16);
        s.add(1.0);
        s.add(-1e16);
        assert_eq!(s.value(), 1.0);
    }

    #[test]
    fn value_is_permutation_invariant() {
        let mut rng = SplitMix64::new(42);
        let xs: Vec<f64> = (0..300)
            .map(|_| (rng.next_f64() - 0.5) * 10f64.powi((rng.next_below(30) as i32) - 15))
            .collect();
        let mut fwd = ExactSum::new();
        for &x in &xs {
            fwd.add(x);
        }
        let mut rev = ExactSum::new();
        for &x in xs.iter().rev() {
            rev.add(x);
        }
        // Interleaved shard merge.
        let (mut a, mut b) = (ExactSum::new(), ExactSum::new());
        for (i, &x) in xs.iter().enumerate() {
            if i % 2 == 0 {
                a.add(x);
            } else {
                b.add(x);
            }
        }
        b.merge(&a);
        assert_eq!(fwd.value().to_bits(), rev.value().to_bits());
        assert_eq!(fwd.value().to_bits(), b.value().to_bits());
    }

    #[test]
    fn product_updates_are_exact() {
        // 0.1 * 3 accumulated once must equal 0.1 added three times.
        let mut w = ExactSum::new();
        w.add_product(0.1, 3.0);
        let mut r = ExactSum::new();
        r.add(0.1);
        r.add(0.1);
        r.add(0.1);
        assert_eq!(w.value().to_bits(), r.value().to_bits());
    }

    #[test]
    fn empty_and_zero_sums() {
        let mut s = ExactSum::new();
        assert!(s.is_zero());
        assert_eq!(s.value(), 0.0);
        s.add(0.0);
        assert!(s.is_zero());
        s.add(5.0);
        s.add(-5.0);
        assert_eq!(s.value(), 0.0);
    }

    #[test]
    fn non_finite_inputs_are_sticky() {
        let mut s = ExactSum::new();
        s.add(1.0);
        s.add(f64::INFINITY);
        s.add(2.0);
        assert_eq!(s.value(), f64::INFINITY);
        let mut n = ExactSum::new();
        n.add(f64::INFINITY);
        n.add(f64::NEG_INFINITY);
        assert!(n.value().is_nan());
    }

    #[test]
    fn long_random_sum_matches_integer_reference() {
        // Integer-valued doubles: the exact total fits i64, giving an
        // independent ground truth.
        let mut rng = SplitMix64::new(7);
        let xs: Vec<i64> = (0..1000)
            .map(|_| rng.next_below(1_000_000) as i64 - 500_000)
            .collect();
        let mut s = ExactSum::new();
        for &x in &xs {
            s.add(x as f64);
        }
        let truth: i64 = xs.iter().sum();
        assert_eq!(s.value(), truth as f64);
    }

    #[test]
    fn variance_matches_reference_and_order() {
        let mut rng = SplitMix64::new(9);
        let xs: Vec<f64> = (0..500).map(|_| rng.next_f64() * 100.0 - 30.0).collect();
        let mut fwd = ExactVariance::new();
        for &x in &xs {
            fwd.add(x);
        }
        let mut rev = ExactVariance::new();
        for &x in xs.iter().rev() {
            rev.add(x);
        }
        assert_eq!(
            fwd.variance_pop().unwrap().to_bits(),
            rev.variance_pop().unwrap().to_bits()
        );
        // Against the naive reference at loose tolerance.
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!((fwd.variance_pop().unwrap() - var).abs() < 1e-9 * (1.0 + var));
    }

    #[test]
    fn weighted_variance_equals_repetition_bitwise() {
        let mut w = ExactVariance::new();
        w.add_weighted(0.3, 3.0);
        w.add_weighted(-7.7, 2.0);
        let mut r = ExactVariance::new();
        for _ in 0..3 {
            r.add(0.3);
        }
        for _ in 0..2 {
            r.add(-7.7);
        }
        assert_eq!(w.count, r.count);
        assert_eq!(
            w.variance_pop().unwrap().to_bits(),
            r.variance_pop().unwrap().to_bits()
        );
        assert_eq!(w.mean().unwrap().to_bits(), r.mean().unwrap().to_bits());
    }

    #[test]
    fn variance_merge_is_exact() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 - 5.0).collect();
        let mut whole = ExactVariance::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut a = ExactVariance::new();
        let mut b = ExactVariance::new();
        for (i, &x) in xs.iter().enumerate() {
            if i < 37 {
                a.add(x);
            } else {
                b.add(x);
            }
        }
        a.merge(&b);
        assert_eq!(
            whole.variance_pop().unwrap().to_bits(),
            a.variance_pop().unwrap().to_bits()
        );
    }

    #[test]
    fn variance_empty_is_none_and_clamped_at_zero() {
        assert_eq!(ExactVariance::new().variance_pop(), None);
        let mut s = ExactVariance::new();
        s.add(2.75);
        s.add(2.75);
        assert_eq!(s.variance_pop(), Some(0.0));
    }

    #[test]
    fn compress_handles_wide_dynamic_range() {
        let mut s = ExactSum::new();
        for i in -150..150 {
            s.add(2f64.powi(i));
        }
        // Σ 2^i for i in [-150, 149] = 2^150 - 2^-150; correctly rounded
        // this is 2^150 (the tail is far below half an ulp... of 2^150?
        // ulp(2^150)/2 = 2^97, and 2^-150 < 2^97). The top component must
        // round to the nearest double of the exact value.
        let expect = 2f64.powi(150) - 2f64.powi(-150); // fl() of the true sum
        assert_eq!(s.value(), expect);
    }
}
