//! Deterministic randomness utilities.
//!
//! Two needs drive this module:
//!
//! 1. **Reproducible engines.** Every stochastic component (shuffling,
//!    generators) takes an explicit `u64` seed; [`SplitMix64`] is the small,
//!    fast PRNG underneath.
//! 2. **Incremental poissonized bootstrap.** Each bootstrap replica `b`
//!    weights tuple `t` by an i.i.d. `Poisson(1)` draw. The G-OLA executor
//!    must re-derive the *same* weight for a tuple whenever it touches it
//!    again (uncertain-set re-evaluation, failure-triggered recomputation)
//!    without storing O(tuples × replicas) weights. [`poisson_weight`]
//!    derives the draw purely from `hash(tuple_id, replica, seed)`.

/// SplitMix64: tiny, fast, passes BigCrush; ideal for seeding and for
/// hash-derived streams.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix(self.state)
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → uniform double.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. `n` must be nonzero.
    #[inline]
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift bounded rand (Lemire); bias is negligible for the
        // table sizes used here and the method is branch-free.
        // golint: allow(lossy-cast-audit) -- Lemire multiply-shift: the high
        // 64 bits of the 128-bit product ARE the result; truncation is the
        // algorithm, not an accident.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// The SplitMix64 finalizer — also used directly as a 64-bit mixer.
#[inline]
pub fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combine two 64-bit values into one well-mixed value.
#[inline]
pub fn hash_combine(a: u64, b: u64) -> u64 {
    mix(a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Deterministic `Poisson(1)` draw for `(tuple_id, replica)` under `seed`.
///
/// Uses Knuth's product method: count multiplications of hash-derived
/// uniforms until the product drops below `e^-1`. Mean 1, so the expected
/// number of hashes per call is ~2.
#[inline]
pub fn poisson_weight(tuple_id: u64, replica: u32, seed: u64) -> u32 {
    let stream = hash_combine(hash_combine(tuple_id, replica as u64 ^ 0xB0_07), seed);
    poisson_from_stream(stream)
}

/// The Knuth loop shared by [`poisson_weight`] and the batched weight
/// kernel: a `Poisson(1)` draw from a fully mixed 64-bit stream id. Callers
/// that derive `stream` differently (e.g. with hoisted per-replica terms)
/// must produce bit-identical streams to `hash_combine(hash_combine(t, b ^
/// 0xB007), seed)` or weights will diverge.
///
/// The first draw's termination test is done in integer space: with
/// `u = m · 2⁻⁵³` for the integer mantissa `m = (h >> 11) + 1` (an exact
/// product — `m ≤ 2⁵³` and the scale is a power of two), `u ≤ e⁻¹` holds
/// iff `m ≤ ⌊e⁻¹ · 2⁵³⌋`. ~37% of draws return 0, and every call skips one
/// int→float conversion, multiply and float compare — with not a single
/// bit of output changed (the remaining iterations run the original float
/// product chain seeded with the exact same `p = 1.0 · u₁ = u₁`).
#[inline]
pub fn poisson_from_stream(stream: u64) -> u32 {
    // ⌊e⁻¹ · 2⁵³⌋: the f64 product is exact (power-of-two scaling of a
    // 53-bit significand), so the truncating cast is the true floor.
    const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
    let limit = (-1.0f64).exp();
    let t0 = (limit * (1u64 << 53) as f64) as u64;
    let mut state = stream.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let m1 = (mix(state) >> 11) + 1;
    if m1 <= t0 {
        return 0;
    }
    let mut p = m1 as f64 * SCALE;
    let mut k = 1u32;
    loop {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        p *= (((mix(state) >> 11) + 1) as f64) * SCALE;
        if p <= limit {
            return k;
        }
        k += 1;
        // Poisson(1) mass above 16 is ~1e-14 — cap to keep worst case tiny.
        if k >= 16 {
            return k;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn next_f64_in_range() {
        let mut g = SplitMix64::new(1);
        for _ in 0..10_000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_in_range_and_covers() {
        let mut g = SplitMix64::new(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = g.next_below(10) as usize;
            assert!(x < 10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn poisson_deterministic_per_key() {
        for t in 0..100u64 {
            for b in 0..8u32 {
                assert_eq!(poisson_weight(t, b, 42), poisson_weight(t, b, 42));
            }
        }
        // Different seed gives a different stream somewhere.
        let differs = (0..100u64).any(|t| poisson_weight(t, 0, 1) != poisson_weight(t, 0, 2));
        assert!(differs);
    }

    #[test]
    fn poisson_mean_and_variance_are_about_one() {
        let n = 200_000u64;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for t in 0..n {
            let w = poisson_weight(t, 3, 9) as f64;
            sum += w;
            sumsq += w * w;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn poisson_replicas_are_independent_ish() {
        // Correlation between replica 0 and 1 weights should be ~0.
        let n = 100_000u64;
        let (mut sx, mut sy, mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for t in 0..n {
            let x = poisson_weight(t, 0, 5) as f64;
            let y = poisson_weight(t, 1, 5) as f64;
            sx += x;
            sy += y;
            sxy += x * y;
            sxx += x * x;
            syy += y * y;
        }
        let nf = n as f64;
        let cov = sxy / nf - (sx / nf) * (sy / nf);
        let corr =
            cov / ((sxx / nf - (sx / nf).powi(2)).sqrt() * (syy / nf - (sy / nf).powi(2)).sqrt());
        assert!(corr.abs() < 0.02, "corr {corr}");
    }
}
