//! Columnar storage primitives: packed validity bitmaps and typed
//! struct-of-arrays column vectors.
//!
//! A [`Column`] stores one attribute of a chunk of tuples as a typed vector
//! (`i64` / `f64` / `bool` / dictionary-encoded strings) plus an optional
//! validity [`Bitmap`] marking non-NULL slots. Vectorized kernels (predicate
//! classification, the fused bootstrap-weight fold) read the typed vectors
//! directly instead of dispatching on per-tuple [`Value`] enums; `value(i)`
//! reconstructs the row-at-a-time view losslessly, so the columnar layout is
//! observationally identical to the row store it replaces.
//!
//! Heterogeneously-typed columns (possible because table construction is
//! unvalidated on trusted paths) degrade to a [`ColumnData::Mixed`] vector of
//! plain values; every consumer must treat that arm as the semantic ground
//! truth and the typed arms as its bit-exact acceleration.

use std::sync::Arc;

use crate::hash::FxHashMap;
use crate::value::{DataType, Value};

/// A packed bitset over tuple slots (one `u64` word per 64 slots).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An empty bitmap.
    pub fn new() -> Bitmap {
        Bitmap::default()
    }

    /// A bitmap of `len` bits, all clear.
    pub fn new_clear(len: usize) -> Bitmap {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// A bitmap of `len` bits, all set.
    pub fn new_set(len: usize) -> Bitmap {
        let mut bm = Bitmap {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        bm.mask_tail();
        bm
    }

    /// Clear the unused bits of the last word so popcounts stay exact.
    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(w) = self.words.last_mut() {
                *w &= (1u64 << tail) - 1;
            }
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one bit.
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Read bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Set bit `i`.
    pub fn set(&mut self, i: usize, bit: bool) {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        if bit {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_set(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` iff every bit is set.
    pub fn all_set(&self) -> bool {
        self.count_set() == self.len
    }

    /// `true` iff no bit is set.
    pub fn none_set(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place intersection with another bitmap of the same length.
    pub fn and_with(&mut self, other: &Bitmap) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place union with another bitmap of the same length.
    pub fn or_with(&mut self, other: &Bitmap) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Indices of the set bits, in ascending order.
    pub fn iter_set(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.get(i))
    }
}

/// The typed payload of a column.
#[derive(Debug, Clone)]
pub enum ColumnData {
    Int(Vec<i64>),
    Float(Vec<f64>),
    Bool(Vec<bool>),
    /// Dictionary-encoded strings: `codes[i]` indexes `dict`. The dictionary
    /// is in first-appearance order, so encoding is deterministic under the
    /// input order. Invalid (NULL) slots carry code 0 and must not be
    /// dereferenced.
    Str {
        dict: Arc<Vec<Arc<str>>>,
        codes: Vec<u32>,
    },
    /// Heterogeneous fallback: plain values with NULLs inline.
    Mixed(Vec<Value>),
}

impl ColumnData {
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Str { codes, .. } => codes.len(),
            ColumnData::Mixed(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One attribute of a chunk: typed data plus validity. `validity: None`
/// means every slot is valid (the common all-non-NULL case costs nothing).
#[derive(Debug, Clone)]
pub struct Column {
    data: ColumnData,
    validity: Option<Bitmap>,
}

impl Column {
    /// Construct from parts. An all-set validity map is normalized to
    /// `None`; a [`ColumnData::Mixed`] payload keeps NULLs inline and never
    /// carries a map.
    pub fn new(data: ColumnData, validity: Option<Bitmap>) -> Column {
        let validity = match (&data, validity) {
            (ColumnData::Mixed(_), _) => None,
            (_, Some(v)) if v.all_set() => None,
            (_, v) => v,
        };
        Column { data, validity }
    }

    /// Build a column of NULLs typed as `dtype`.
    pub fn nulls(dtype: DataType, len: usize) -> Column {
        let mut b = ColumnBuilder::new(dtype, len);
        for _ in 0..len {
            b.push(&Value::Null);
        }
        b.finish()
    }

    /// Build from a slice of values, choosing the tightest representation
    /// for `dtype` and degrading to `Mixed` on type mismatches.
    pub fn from_values(dtype: DataType, values: &[Value]) -> Column {
        let mut b = ColumnBuilder::new(dtype, values.len());
        for v in values {
            b.push(v);
        }
        b.finish()
    }

    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Validity bitmap; `None` means all slots are valid.
    pub fn validity(&self) -> Option<&Bitmap> {
        self.validity.as_ref()
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Is slot `i` non-NULL?
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        match &self.data {
            ColumnData::Mixed(v) => !v[i].is_null(),
            _ => self.validity.as_ref().is_none_or(|bm| bm.get(i)),
        }
    }

    /// Reconstruct the row-store value of slot `i`.
    #[inline]
    pub fn value(&self, i: usize) -> Value {
        if let ColumnData::Mixed(v) = &self.data {
            return v[i].clone();
        }
        if !self.is_valid(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Str { dict, codes } => Value::Str(Arc::clone(&dict[codes[i] as usize])),
            ColumnData::Mixed(_) => unreachable!(),
        }
    }

    /// Numeric view of slot `i` (NULL and non-numeric slots are `None`),
    /// matching [`Value::as_f64`] bit-for-bit.
    #[inline]
    pub fn as_f64(&self, i: usize) -> Option<f64> {
        if !self.is_valid(i) {
            return None;
        }
        match &self.data {
            ColumnData::Int(v) => Some(v[i] as f64),
            ColumnData::Float(v) => Some(v[i]),
            ColumnData::Bool(v) => Some(if v[i] { 1.0 } else { 0.0 }),
            ColumnData::Str { .. } => None,
            ColumnData::Mixed(v) => v[i].as_f64(),
        }
    }

    /// Gather `indices` into a new column (used by the shuffler, the
    /// partitioner and uncertain-set reclaim). Dictionary columns share the
    /// dictionary; only codes are copied.
    pub fn gather(&self, indices: &[usize]) -> Column {
        let validity = match &self.data {
            ColumnData::Mixed(_) => None,
            _ => self.validity.as_ref().map(|bm| {
                let mut out = Bitmap::new_clear(indices.len());
                for (j, &i) in indices.iter().enumerate() {
                    if bm.get(i) {
                        out.set(j, true);
                    }
                }
                out
            }),
        };
        let data = match &self.data {
            ColumnData::Int(v) => ColumnData::Int(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Float(v) => ColumnData::Float(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Bool(v) => ColumnData::Bool(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Str { dict, codes } => ColumnData::Str {
                dict: Arc::clone(dict),
                codes: indices.iter().map(|&i| codes[i]).collect(),
            },
            ColumnData::Mixed(v) => {
                ColumnData::Mixed(indices.iter().map(|&i| v[i].clone()).collect())
            }
        };
        Column::new(data, validity)
    }

    /// Concatenate two columns (same attribute, consecutive tuple runs).
    pub fn concat(&self, other: &Column) -> Column {
        // The typed fast paths only apply when both sides share a
        // representation (and, for strings, the same dictionary — true for
        // slices of one table chunk); otherwise rebuild through a builder.
        match (&self.data, &other.data) {
            (ColumnData::Int(a), ColumnData::Int(b)) => Column::new(
                ColumnData::Int(a.iter().chain(b).copied().collect()),
                concat_validity(self, other),
            ),
            (ColumnData::Float(a), ColumnData::Float(b)) => Column::new(
                ColumnData::Float(a.iter().chain(b).copied().collect()),
                concat_validity(self, other),
            ),
            (ColumnData::Bool(a), ColumnData::Bool(b)) => Column::new(
                ColumnData::Bool(a.iter().chain(b).copied().collect()),
                concat_validity(self, other),
            ),
            (
                ColumnData::Str {
                    dict: da,
                    codes: ca,
                },
                ColumnData::Str {
                    dict: db,
                    codes: cb,
                },
            ) if Arc::ptr_eq(da, db) => Column::new(
                ColumnData::Str {
                    dict: Arc::clone(da),
                    codes: ca.iter().chain(cb).copied().collect(),
                },
                concat_validity(self, other),
            ),
            _ => {
                let mut b = ColumnBuilder::new(DataType::Null, self.len() + other.len());
                for i in 0..self.len() {
                    b.push(&self.value(i));
                }
                for i in 0..other.len() {
                    b.push(&other.value(i));
                }
                b.finish()
            }
        }
    }
}

fn concat_validity(a: &Column, b: &Column) -> Option<Bitmap> {
    if a.validity.is_none() && b.validity.is_none() {
        return None;
    }
    let mut out = Bitmap::new_clear(a.len() + b.len());
    for i in 0..a.len() {
        if a.is_valid(i) {
            out.set(i, true);
        }
    }
    for i in 0..b.len() {
        if b.is_valid(i) {
            out.set(a.len() + i, true);
        }
    }
    Some(out)
}

/// Incremental column construction with automatic representation choice:
/// starts with the typed vector for the declared type and degrades to
/// [`ColumnData::Mixed`] on the first mismatched non-NULL value.
#[derive(Debug)]
pub struct ColumnBuilder {
    state: BuilderState,
    validity: Bitmap,
    any_null: bool,
}

#[derive(Debug)]
enum BuilderState {
    /// No non-NULL value seen yet; type still undecided (used for
    /// `DataType::Null` schemas and empty prefixes).
    Pending {
        nulls: usize,
    },
    Int(Vec<i64>),
    Float(Vec<f64>),
    Bool(Vec<bool>),
    Str {
        dict: Vec<Arc<str>>,
        index: FxHashMap<Arc<str>, u32>,
        codes: Vec<u32>,
    },
    Mixed(Vec<Value>),
}

impl ColumnBuilder {
    pub fn new(dtype: DataType, capacity: usize) -> ColumnBuilder {
        let state = match dtype {
            DataType::Int => BuilderState::Int(Vec::with_capacity(capacity)),
            DataType::Float => BuilderState::Float(Vec::with_capacity(capacity)),
            DataType::Bool => BuilderState::Bool(Vec::with_capacity(capacity)),
            DataType::Str => BuilderState::Str {
                dict: Vec::new(),
                index: FxHashMap::default(),
                codes: Vec::with_capacity(capacity),
            },
            DataType::Null => BuilderState::Pending { nulls: 0 },
        };
        ColumnBuilder {
            state,
            validity: Bitmap::new(),
            any_null: false,
        }
    }

    pub fn len(&self) -> usize {
        self.validity.len()
    }

    pub fn is_empty(&self) -> bool {
        self.validity.is_empty()
    }

    /// Append one value.
    pub fn push(&mut self, v: &Value) {
        if v.is_null() {
            self.any_null = true;
            self.validity.push(false);
            match &mut self.state {
                BuilderState::Pending { nulls } => *nulls += 1,
                BuilderState::Int(xs) => xs.push(0),
                BuilderState::Float(xs) => xs.push(0.0),
                BuilderState::Bool(xs) => xs.push(false),
                BuilderState::Str { codes, .. } => codes.push(0),
                BuilderState::Mixed(xs) => xs.push(Value::Null),
            }
            return;
        }
        self.validity.push(true);
        // A Pending builder adopts the type of the first non-NULL value.
        if let BuilderState::Pending { nulls } = &self.state {
            let nulls = *nulls;
            let mut fresh = ColumnBuilder::new(v.data_type(), nulls + 1).state;
            match &mut fresh {
                BuilderState::Int(xs) => xs.resize(nulls, 0),
                BuilderState::Float(xs) => xs.resize(nulls, 0.0),
                BuilderState::Bool(xs) => xs.resize(nulls, false),
                BuilderState::Str { codes, .. } => codes.resize(nulls, 0),
                BuilderState::Mixed(xs) => xs.resize(nulls, Value::Null),
                BuilderState::Pending { .. } => unreachable!(),
            }
            self.state = fresh;
        }
        match (&mut self.state, v) {
            (BuilderState::Int(xs), Value::Int(i)) => xs.push(*i),
            (BuilderState::Float(xs), Value::Float(f)) => xs.push(*f),
            (BuilderState::Bool(xs), Value::Bool(b)) => xs.push(*b),
            (BuilderState::Str { dict, index, codes }, Value::Str(s)) => {
                let code = match index.get(s.as_ref()) {
                    Some(&c) => c,
                    None => {
                        // A dictionary past u32 code space must fail, not
                        // silently alias code 0.
                        let c = u32::try_from(dict.len()).expect("dictionary exceeds u32 codes");
                        dict.push(Arc::clone(s));
                        index.insert(Arc::clone(s), c);
                        c
                    }
                };
                codes.push(code);
            }
            (BuilderState::Mixed(xs), v) => xs.push(v.clone()),
            // Type mismatch: degrade to Mixed, replaying what we have.
            (state, v) => {
                let n = self.validity.len() - 1;
                let mut xs: Vec<Value> = Vec::with_capacity(n + 1);
                for i in 0..n {
                    xs.push(if self.validity.get(i) {
                        materialize(state, i)
                    } else {
                        Value::Null
                    });
                }
                xs.push(v.clone());
                *state = BuilderState::Mixed(xs);
            }
        }
    }

    pub fn finish(self) -> Column {
        let ColumnBuilder {
            state,
            validity,
            any_null,
        } = self;
        let data = match state {
            BuilderState::Pending { nulls } => {
                // All-NULL (or empty) column: keep an untyped Mixed vector.
                ColumnData::Mixed(vec![Value::Null; nulls])
            }
            BuilderState::Int(xs) => ColumnData::Int(xs),
            BuilderState::Float(xs) => ColumnData::Float(xs),
            BuilderState::Bool(xs) => ColumnData::Bool(xs),
            BuilderState::Str { dict, codes, .. } => ColumnData::Str {
                dict: Arc::new(dict),
                codes,
            },
            BuilderState::Mixed(xs) => ColumnData::Mixed(xs),
        };
        Column::new(data, any_null.then_some(validity))
    }
}

fn materialize(state: &BuilderState, i: usize) -> Value {
    match state {
        BuilderState::Int(xs) => Value::Int(xs[i]),
        BuilderState::Float(xs) => Value::Float(xs[i]),
        BuilderState::Bool(xs) => Value::Bool(xs[i]),
        BuilderState::Str { dict, codes, .. } => Value::Str(Arc::clone(&dict[codes[i] as usize])),
        BuilderState::Mixed(xs) => xs[i].clone(),
        BuilderState::Pending { .. } => Value::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_basics() {
        let mut bm = Bitmap::new_clear(70);
        assert_eq!(bm.len(), 70);
        assert_eq!(bm.count_set(), 0);
        bm.set(0, true);
        bm.set(69, true);
        assert!(bm.get(0) && bm.get(69) && !bm.get(35));
        assert_eq!(bm.count_set(), 2);
        assert_eq!(bm.iter_set().collect::<Vec<_>>(), vec![0, 69]);
        bm.set(69, false);
        assert_eq!(bm.count_set(), 1);
        let full = Bitmap::new_set(65);
        assert!(full.all_set());
        assert_eq!(full.count_set(), 65);
    }

    #[test]
    fn bitmap_push_and_and() {
        let mut a = Bitmap::new();
        let mut b = Bitmap::new();
        for i in 0..130 {
            a.push(i % 2 == 0);
            b.push(i % 3 == 0);
        }
        a.and_with(&b);
        for i in 0..130 {
            assert_eq!(a.get(i), i % 6 == 0, "bit {i}");
        }
    }

    #[test]
    fn typed_round_trip() {
        let vals = vec![Value::Int(3), Value::Null, Value::Int(-7)];
        let c = Column::from_values(DataType::Int, &vals);
        assert!(matches!(c.data(), ColumnData::Int(_)));
        assert_eq!(c.len(), 3);
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(&c.value(i), v);
            assert_eq!(c.as_f64(i), v.as_f64());
        }
        assert!(!c.is_valid(1));
    }

    #[test]
    fn string_dictionary_round_trip() {
        let vals = vec![
            Value::str("a"),
            Value::str("b"),
            Value::str("a"),
            Value::Null,
            Value::str("c"),
        ];
        let c = Column::from_values(DataType::Str, &vals);
        match c.data() {
            ColumnData::Str { dict, codes } => {
                assert_eq!(dict.len(), 3);
                assert_eq!(codes, &vec![0, 1, 0, 0, 2]);
            }
            other => panic!("expected dict column, got {other:?}"),
        }
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(&c.value(i), v);
        }
    }

    #[test]
    fn mixed_degrade_preserves_values() {
        let vals = vec![
            Value::Int(1),
            Value::Null,
            Value::Float(2.5),
            Value::str("x"),
        ];
        let c = Column::from_values(DataType::Int, &vals);
        assert!(matches!(c.data(), ColumnData::Mixed(_)));
        for (i, v) in vals.iter().enumerate() {
            // Representation (not just Value equality, which is cross-type).
            assert_eq!(c.value(i).data_type(), v.data_type());
            assert_eq!(&c.value(i), v);
        }
    }

    #[test]
    fn pending_adopts_first_type() {
        let vals = vec![Value::Null, Value::Null, Value::str("s"), Value::str("s")];
        let c = Column::from_values(DataType::Null, &vals);
        assert!(matches!(c.data(), ColumnData::Str { .. }));
        assert_eq!(c.value(0), Value::Null);
        assert_eq!(c.value(3), Value::str("s"));
        let all_null = Column::from_values(DataType::Null, &[Value::Null, Value::Null]);
        assert!(matches!(all_null.data(), ColumnData::Mixed(_)));
        assert_eq!(all_null.value(1), Value::Null);
    }

    #[test]
    fn gather_and_concat() {
        let vals: Vec<Value> = (0..10)
            .map(|i| {
                if i % 4 == 3 {
                    Value::Null
                } else {
                    Value::Int(i)
                }
            })
            .collect();
        let c = Column::from_values(DataType::Int, &vals);
        let g = c.gather(&[9, 3, 0]);
        assert_eq!(g.value(0), Value::Int(9));
        assert_eq!(g.value(1), Value::Null);
        assert_eq!(g.value(2), Value::Int(0));
        let cc = g.concat(&c.gather(&[5]));
        assert_eq!(cc.len(), 4);
        assert_eq!(cc.value(3), Value::Int(5));
    }

    #[test]
    fn concat_shares_dictionary() {
        let vals: Vec<Value> = ["x", "y", "x", "z"].iter().map(Value::str).collect();
        let c = Column::from_values(DataType::Str, &vals);
        let a = c.gather(&[0, 1]);
        let b = c.gather(&[2, 3]);
        let cc = a.concat(&b);
        match cc.data() {
            ColumnData::Str { dict, .. } => assert_eq!(dict.len(), 3),
            other => panic!("expected dict column, got {other:?}"),
        }
        assert_eq!(cc.value(3), Value::str("z"));
    }
}
