//! Workspace-wide error type.
//!
//! A single enum keeps error plumbing simple across crates while still
//! carrying enough structure for tests to assert on failure *kinds* rather
//! than message strings.

use std::fmt;

/// Convenient alias used across the whole workspace.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// All errors surfaced by the G-OLA engine.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// SQL text failed to tokenize.
    Lex { pos: usize, message: String },
    /// SQL token stream failed to parse.
    Parse { pos: usize, message: String },
    /// Name resolution / semantic analysis failure (unknown table, column,
    /// function, mis-typed expression, unsupported correlation...).
    Bind(String),
    /// Logical-to-meta plan compilation failure (e.g. a query shape the
    /// online executor cannot stream).
    Plan(String),
    /// Runtime evaluation failure (type mismatch at eval time, division by
    /// zero in strict mode, invalid cast, ...).
    Execution(String),
    /// Catalog-level failure (duplicate or missing table).
    Catalog(String),
    /// Invalid configuration (zero batches, zero rows, bad epsilon...).
    Config(String),
    /// I/O failures from CSV import/export, carried as a string so the error
    /// type stays `Clone + PartialEq`.
    Io(String),
}

impl Error {
    /// Shorthand constructor for [`Error::Bind`].
    pub fn bind(msg: impl Into<String>) -> Self {
        Error::Bind(msg.into())
    }

    /// Shorthand constructor for [`Error::Plan`].
    pub fn plan(msg: impl Into<String>) -> Self {
        Error::Plan(msg.into())
    }

    /// Shorthand constructor for [`Error::Execution`].
    pub fn exec(msg: impl Into<String>) -> Self {
        Error::Execution(msg.into())
    }

    /// Shorthand constructor for [`Error::Catalog`].
    pub fn catalog(msg: impl Into<String>) -> Self {
        Error::Catalog(msg.into())
    }

    /// Shorthand constructor for [`Error::Config`].
    pub fn config(msg: impl Into<String>) -> Self {
        Error::Config(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Lex { pos, message } => write!(f, "lex error at byte {pos}: {message}"),
            Error::Parse { pos, message } => write!(f, "parse error at token {pos}: {message}"),
            Error::Bind(m) => write!(f, "bind error: {m}"),
            Error::Plan(m) => write!(f, "plan error: {m}"),
            Error::Execution(m) => write!(f, "execution error: {m}"),
            Error::Catalog(m) => write!(f, "catalog error: {m}"),
            Error::Config(m) => write!(f, "config error: {m}"),
            Error::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        let e = Error::bind("unknown column x");
        assert_eq!(e.to_string(), "bind error: unknown column x");
        let e = Error::Lex {
            pos: 3,
            message: "bad char".into(),
        };
        assert!(e.to_string().contains("byte 3"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::plan("x"), Error::plan("x"));
        assert_ne!(Error::plan("x"), Error::exec("x"));
    }
}
