//! The dynamically-typed value model used by the engine.
//!
//! G-OLA queries run over heterogeneous log data, so rows are vectors of
//! [`Value`]s tagged with a [`DataType`] in the schema. Comparison follows
//! SQL-ish semantics: `Null` sorts first and compares equal only to itself
//! in *grouping* contexts, while predicate evaluation treats `Null` through
//! three-valued logic (handled in `gola-expr`).

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::error::{Error, Result};

/// Static type of a column or expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Bool,
    Int,
    Float,
    Str,
    /// The type of `NULL` literals before coercion.
    Null,
}

impl DataType {
    /// `true` if values of this type can participate in arithmetic.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }

    /// The common supertype of two types if one exists (used by the binder
    /// for implicit coercion: Int widens to Float; Null coerces to anything).
    pub fn unify(self, other: DataType) -> Option<DataType> {
        use DataType::*;
        match (self, other) {
            (a, b) if a == b => Some(a),
            (Null, t) | (t, Null) => Some(t),
            (Int, Float) | (Float, Int) => Some(Float),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "BOOL",
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "STRING",
            DataType::Null => "NULL",
        };
        f.write_str(s)
    }
}

/// A single dynamically-typed value.
///
/// `Str` uses `Arc<str>` so cloning rows (pervasive in the mini-batch
/// executor's uncertain-set caching) is cheap.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(Arc<str>),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The runtime type of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Null => DataType::Null,
            Value::Bool(_) => DataType::Bool,
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Str(_) => DataType::Str,
        }
    }

    /// `true` iff this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, if it has one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Numeric view or an execution error naming `ctx`.
    pub fn expect_f64(&self, ctx: &str) -> Result<f64> {
        self.as_f64()
            .ok_or_else(|| Error::exec(format!("{ctx}: expected numeric value, got {self}")))
    }

    /// Integer view of the value, if exact.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// Boolean view of the value, if it has one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view of the value, if it has one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Cast to `ty` with SQL-like semantics. `Null` casts to `Null`.
    pub fn cast(&self, ty: DataType) -> Result<Value> {
        if self.is_null() {
            return Ok(Value::Null);
        }
        let out = match (self, ty) {
            (v, t) if v.data_type() == t => v.clone(),
            (Value::Int(i), DataType::Float) => Value::Float(*i as f64),
            (Value::Float(f), DataType::Int) => Value::Int(*f as i64),
            (Value::Bool(b), DataType::Int) => Value::Int(*b as i64),
            (Value::Bool(b), DataType::Float) => Value::Float(*b as i64 as f64),
            (Value::Int(i), DataType::Str) => Value::str(i.to_string()),
            (Value::Float(f), DataType::Str) => Value::str(f.to_string()),
            (Value::Bool(b), DataType::Str) => Value::str(b.to_string()),
            (Value::Str(s), DataType::Int) => Value::Int(
                s.trim()
                    .parse::<i64>()
                    .map_err(|_| Error::exec(format!("cannot cast '{s}' to INT")))?,
            ),
            (Value::Str(s), DataType::Float) => Value::Float(
                s.trim()
                    .parse::<f64>()
                    .map_err(|_| Error::exec(format!("cannot cast '{s}' to FLOAT")))?,
            ),
            (Value::Str(s), DataType::Bool) => match s.trim().to_ascii_lowercase().as_str() {
                "true" | "t" | "1" => Value::Bool(true),
                "false" | "f" | "0" => Value::Bool(false),
                _ => return Err(Error::exec(format!("cannot cast '{s}' to BOOL"))),
            },
            (v, t) => return Err(Error::exec(format!("cannot cast {} to {t}", v.data_type()))),
        };
        Ok(out)
    }

    /// Total ordering used for sorting and grouping. `Null` sorts first;
    /// numerics compare cross-type; `NaN` sorts after all other floats so the
    /// ordering is total.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.as_ref().cmp(b.as_ref()),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                // Normalize -0.0 to 0.0: total_cmp would otherwise order
                // them, breaking Eq/Hash consistency for grouping keys.
                (Some(x), Some(y)) => {
                    let x = if x == 0.0 { 0.0 } else { x };
                    let y = if y == 0.0 { 0.0 } else { y };
                    x.total_cmp(&y)
                }
                // Heterogeneous non-numeric comparison: order by type tag so
                // sorting stays total and deterministic.
                _ => a.type_rank().cmp(&b.type_rank()),
            },
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
        }
    }

    /// SQL equality for predicates: returns `None` when either side is null.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp(other) == Ordering::Equal)
    }
}

/// Lexicographic [`Value::total_cmp`] over value slices, shorter prefix
/// first. This is the canonical key order for sorting grouped state before
/// it can reach a `BatchReport` — hash-map iteration order must never be
/// observable downstream (see the `hash-order-leak` lint).
pub fn cmp_values(a: &[Value], b: &[Value]) -> Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        let ord = x.total_cmp(y);
        if ord != Ordering::Equal {
            return ord;
        }
    }
    a.len().cmp(&b.len())
}

/// Equality matches [`Value::total_cmp`] so `Value` can key hash maps for
/// grouping (`Null == Null`, `Int(1) == Float(1.0)`).
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                state.write_u8(*b as u8);
            }
            // Int and Float must hash identically when numerically equal
            // because they compare equal; hash the canonical f64 bits.
            Value::Int(i) => {
                state.write_u8(2);
                state.write_u64((*i as f64).to_bits());
            }
            Value::Float(f) => {
                state.write_u8(2);
                // Normalize -0.0 to 0.0 so equal values hash equally.
                let f = if *f == 0.0 { 0.0 } else { *f };
                state.write_u64(f.to_bits());
            }
            Value::Str(s) => {
                state.write_u8(3);
                state.write(s.as_bytes());
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn cross_type_numeric_equality_and_hash() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_eq!(hash_of(&Value::Int(3)), hash_of(&Value::Float(3.0)));
        assert_ne!(Value::Int(3), Value::Float(3.5));
    }

    #[test]
    fn negative_zero_hashes_like_zero() {
        assert_eq!(Value::Float(-0.0), Value::Float(0.0));
        assert_eq!(hash_of(&Value::Float(-0.0)), hash_of(&Value::Float(0.0)));
    }

    #[test]
    fn null_ordering_and_equality() {
        assert_eq!(Value::Null.total_cmp(&Value::Null), Ordering::Equal);
        assert_eq!(Value::Null.total_cmp(&Value::Int(-100)), Ordering::Less);
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
    }

    #[test]
    fn casts() {
        assert_eq!(
            Value::str("42").cast(DataType::Int).unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            Value::str("4.5").cast(DataType::Float).unwrap(),
            Value::Float(4.5)
        );
        assert_eq!(
            Value::Int(7).cast(DataType::Float).unwrap(),
            Value::Float(7.0)
        );
        assert_eq!(
            Value::Float(7.9).cast(DataType::Int).unwrap(),
            Value::Int(7)
        );
        assert_eq!(Value::Null.cast(DataType::Int).unwrap(), Value::Null);
        assert!(Value::str("abc").cast(DataType::Int).is_err());
        assert_eq!(
            Value::str("true").cast(DataType::Bool).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn unify_types() {
        assert_eq!(DataType::Int.unify(DataType::Float), Some(DataType::Float));
        assert_eq!(DataType::Null.unify(DataType::Str), Some(DataType::Str));
        assert_eq!(DataType::Bool.unify(DataType::Int), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Float(2.25).to_string(), "2.25");
        assert_eq!(Value::str("hi").to_string(), "hi");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn nan_ordering_is_total() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.total_cmp(&nan), Ordering::Equal);
        assert_eq!(Value::Float(1.0).total_cmp(&nan), Ordering::Less);
    }
}
