//! Shared foundation types for the G-OLA engine.
//!
//! This crate defines the dynamically-typed [`Value`] model, [`Schema`]
//! metadata, [`Row`] storage, the crate-wide [`Error`] type, a fast
//! non-cryptographic hasher used throughout the engine, deterministic RNG
//! utilities (including the hash-derived Poisson sampler that powers
//! incremental poissonized bootstrap), and small statistics helpers.
//!
//! Everything here is dependency-free so the rest of the workspace can build
//! on a stable, minimal base.

pub mod column;
pub mod error;
pub mod fsum;
pub mod hash;
pub mod rng;
pub mod row;
pub mod schema;
pub mod stats;
pub mod timing;
pub mod value;

pub use column::{Bitmap, Column, ColumnBuilder, ColumnData};

/// Chunk-relative row index as `u32`, checked. Silent `usize → u32`
/// truncation of a row count is exactly the bug class `lossy-cast-audit`
/// exists for; chunk framing keeps real indices far below `u32::MAX`, so
/// an overflow here is a framing bug and must fail loudly.
#[inline]
pub fn row_u32(n: usize) -> u32 {
    u32::try_from(n).expect("row index exceeds u32::MAX (chunk framing bug)")
}
pub use error::{Error, Result};
pub use fsum::{ExactSum, ExactVariance};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use row::Row;
pub use schema::{Field, Schema};
pub use timing::Stopwatch;
pub use value::{cmp_values, DataType, Value};
