//! Column metadata: [`Field`] and [`Schema`].

use std::fmt;
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::value::DataType;

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub data_type: DataType,
}

impl Field {
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
        }
    }
}

/// An ordered list of fields. Shared via `Arc` between tables, plans and
/// executors. Column lookup is case-insensitive, matching SQL identifiers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Self {
        Schema {
            fields: pairs.iter().map(|(n, t)| Field::new(*n, *t)).collect(),
        }
    }

    pub fn empty() -> Arc<Schema> {
        Arc::new(Schema::default())
    }

    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// Case-insensitive lookup of a column index by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields
            .iter()
            .position(|f| f.name.eq_ignore_ascii_case(name))
    }

    /// Like [`Schema::index_of`] but returns a bind error naming the column.
    pub fn index_of_or_err(&self, name: &str) -> Result<usize> {
        self.index_of(name).ok_or_else(|| {
            Error::bind(format!(
                "unknown column '{name}' (available: {})",
                self.fields
                    .iter()
                    .map(|f| f.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })
    }

    /// Append the fields of `other`, producing the schema of a join output.
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        Schema { fields }
    }

    /// Project a subset of columns by index.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema {
            fields: indices.iter().map(|&i| self.fields[i].clone()).collect(),
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", field.name, field.data_type)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::from_pairs(&[
            ("session_id", DataType::Int),
            ("buffer_time", DataType::Float),
            ("play_time", DataType::Float),
        ])
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let s = sample();
        assert_eq!(s.index_of("BUFFER_TIME"), Some(1));
        assert_eq!(s.index_of("Play_Time"), Some(2));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn lookup_error_lists_columns() {
        let err = sample().index_of_or_err("nope").unwrap_err();
        assert!(err.to_string().contains("session_id"));
    }

    #[test]
    fn join_concatenates() {
        let a = sample();
        let b = Schema::from_pairs(&[("ad_id", DataType::Int)]);
        let j = a.join(&b);
        assert_eq!(j.len(), 4);
        assert_eq!(j.index_of("ad_id"), Some(3));
    }

    #[test]
    fn project_selects_by_index() {
        let p = sample().project(&[2, 0]);
        assert_eq!(p.field(0).name, "play_time");
        assert_eq!(p.field(1).name, "session_id");
    }

    #[test]
    fn display_roundtrip() {
        assert_eq!(
            sample().to_string(),
            "(session_id INT, buffer_time FLOAT, play_time FLOAT)"
        );
    }
}
