//! Property tests for the foundation types: Eq/Hash consistency of values,
//! Welford merge correctness, percentile bounds, and the determinism /
//! distribution of the hash-derived Poisson sampler.

use std::hash::{Hash, Hasher};

use gola_common::rng::{poisson_weight, SplitMix64};
use gola_common::stats::{percentile, Welford};
use gola_common::{FxHasher, Value};
use proptest::prelude::*;

fn any_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i32>().prop_map(|i| Value::Int(i as i64)),
        (-1e12f64..1e12).prop_map(Value::Float),
        "[a-z]{0,12}".prop_map(Value::str),
    ]
}

fn fx_hash(v: &Value) -> u64 {
    let mut h = FxHasher::default();
    v.hash(&mut h);
    h.finish()
}

proptest! {
    #[test]
    fn value_eq_implies_hash_eq(a in any_value(), b in any_value()) {
        if a == b {
            prop_assert_eq!(fx_hash(&a), fx_hash(&b));
        }
    }

    #[test]
    fn value_ordering_is_total_and_antisymmetric(
        a in any_value(),
        b in any_value(),
        c in any_value(),
    ) {
        use std::cmp::Ordering;
        // Antisymmetry.
        prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        // Transitivity (spot form): a<=b and b<=c ⇒ a<=c.
        if a.total_cmp(&b) != Ordering::Greater && b.total_cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.total_cmp(&c), Ordering::Greater);
        }
        // Reflexivity.
        prop_assert_eq!(a.total_cmp(&a), Ordering::Equal);
    }

    #[test]
    fn int_float_equality_is_consistent(i in any::<i32>()) {
        let int = Value::Int(i as i64);
        let float = Value::Float(i as f64);
        prop_assert_eq!(&int, &float);
        prop_assert_eq!(fx_hash(&int), fx_hash(&float));
    }

    #[test]
    fn welford_merge_matches_single_pass(
        xs in prop::collection::vec(-1e6f64..1e6, 1..200),
        split in 0usize..200,
    ) {
        let split = split.min(xs.len());
        let mut whole = Welford::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..split] {
            a.add(x);
        }
        for &x in &xs[split..] {
            b.add(x);
        }
        a.merge(&b);
        prop_assert!((a.mean - whole.mean).abs() <= 1e-6 * (1.0 + whole.mean.abs()));
        let (va, vw) = (a.variance_pop().unwrap(), whole.variance_pop().unwrap());
        prop_assert!((va - vw).abs() <= 1e-6 * (1.0 + vw));
    }

    #[test]
    fn percentile_within_min_max(
        xs in prop::collection::vec(-1e9f64..1e9, 1..100),
        q in 0.0f64..=1.0,
    ) {
        let p = percentile(&xs, q).unwrap();
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p >= lo && p <= hi);
    }

    #[test]
    fn percentile_is_monotone_in_q(
        xs in prop::collection::vec(-1e9f64..1e9, 1..100),
        q1 in 0.0f64..=1.0,
        q2 in 0.0f64..=1.0,
    ) {
        let (lo_q, hi_q) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(percentile(&xs, lo_q).unwrap() <= percentile(&xs, hi_q).unwrap());
    }

    #[test]
    fn poisson_weight_deterministic(t in any::<u64>(), b in 0u32..256, seed in any::<u64>()) {
        prop_assert_eq!(poisson_weight(t, b, seed), poisson_weight(t, b, seed));
    }

    #[test]
    fn splitmix_next_below_in_range(seed in any::<u64>(), n in 1u64..1_000_000) {
        let mut g = SplitMix64::new(seed);
        for _ in 0..32 {
            prop_assert!(g.next_below(n) < n);
        }
    }

    #[test]
    fn cast_roundtrip_int_through_string(i in any::<i64>()) {
        let v = Value::Int(i);
        let s = v.cast(gola_common::DataType::Str).unwrap();
        let back = s.cast(gola_common::DataType::Int).unwrap();
        prop_assert_eq!(back, v);
    }
}
