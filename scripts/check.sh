#!/usr/bin/env bash
# Full pre-merge gate: build, tests, formatting, lints.
# Components that are not installed (fmt/clippy on minimal toolchains) are
# skipped with a warning rather than failing the gate.
#
# The conformance smoke tier (crates/conformance/tests/smoke.rs) runs as
# part of `cargo test --workspace`. Pass --soak to additionally run the
# release soak binary: the same three oracles (differential, invariant,
# calibration) at fuzzing volume, printing shrunk replayable artifacts for
# any failure. Pass --metrics to smoke-test the observability exports: one
# Conviva query through the CLI with --metrics-out, the JSON snapshot
# validated against scripts/metrics_schema.json and the Prometheus text
# grepped for the expected families.
set -uo pipefail
cd "$(dirname "$0")/.."

soak=0
metrics=0
for arg in "$@"; do
    case "$arg" in
        --soak) soak=1 ;;
        --metrics) metrics=1 ;;
        *)
            echo "usage: $0 [--soak] [--metrics]" >&2
            exit 2
            ;;
    esac
done

failures=0
step() {
    echo "==> $*"
    if "$@"; then
        echo "    ok"
    else
        echo "    FAILED: $*"
        failures=$((failures + 1))
    fi
}

step cargo build --release --workspace
step cargo test --workspace -q

if cargo fmt --version >/dev/null 2>&1; then
    step cargo fmt --check
else
    echo "==> cargo fmt not installed — skipping"
fi

if cargo clippy --version >/dev/null 2>&1; then
    step cargo clippy --workspace --all-targets -- -D warnings
else
    echo "==> cargo clippy not installed — skipping"
fi

# Determinism & concurrency audit (crates/xlint). Deny-by-default: any
# unannotated hash-order / wall-clock / unsafe / float-fold / panic finding
# fails the gate. See README.md for the allow-comment convention.
step cargo run --release -q -p xlint --bin golint -- --root .

if [ "$soak" -eq 1 ]; then
    step cargo run --release -q -p gola-conformance --bin gola-soak
fi

# Observability smoke: drive one online query through the console with the
# registry enabled (--threads 2 so the worker pool registers its metrics),
# then validate both export formats.
metrics_smoke() {
    local tmp out
    tmp="$(mktemp -d)" || return 1
    out="$tmp/metrics.json"
    # The nested query keeps an uncertain candidate set alive, which is what
    # drives the chunked classify through the worker pool (a certain-filter
    # query folds every tuple at ingest and never submits pool jobs).
    printf '%s\n' \
        "SELECT AVG(play_time) FROM sessions WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions);" \
        '\q' \
        | cargo run --release -q -p gola-cli --bin gola -- \
            --threads 2 --metrics-out "$out" >/dev/null || return 1
    [ -s "$out" ] || { echo "    no JSON snapshot at $out" >&2; return 1; }
    [ -s "$out.prom" ] || { echo "    no Prometheus text at $out.prom" >&2; return 1; }
    cargo run --release -q -p gola-obs --bin validate-metrics -- \
        "$out" scripts/metrics_schema.json || return 1
    local fam
    for fam in gola_report_batches_total gola_pool_jobs_total \
               gola_span_classify_total gola_report_ci_width; do
        grep -q "^$fam" "$out.prom" \
            || { echo "    $fam missing from $out.prom" >&2; return 1; }
    done
    rm -rf "$tmp"
}
if [ "$metrics" -eq 1 ]; then
    step metrics_smoke
fi

if [ "$failures" -ne 0 ]; then
    echo "check.sh: $failures step(s) failed"
    exit 1
fi
echo "check.sh: all checks passed"
