#!/usr/bin/env bash
# Full pre-merge gate: build, tests, formatting, lints.
# Components that are not installed (fmt/clippy on minimal toolchains) are
# skipped with a warning rather than failing the gate.
#
# The conformance smoke tier (crates/conformance/tests/smoke.rs) runs as
# part of `cargo test --workspace`. Pass --soak to additionally run the
# release soak binary: the same three oracles (differential, invariant,
# calibration) at fuzzing volume, printing shrunk replayable artifacts for
# any failure.
set -uo pipefail
cd "$(dirname "$0")/.."

soak=0
for arg in "$@"; do
    case "$arg" in
        --soak) soak=1 ;;
        *)
            echo "usage: $0 [--soak]" >&2
            exit 2
            ;;
    esac
done

failures=0
step() {
    echo "==> $*"
    if "$@"; then
        echo "    ok"
    else
        echo "    FAILED: $*"
        failures=$((failures + 1))
    fi
}

step cargo build --release --workspace
step cargo test --workspace -q

if cargo fmt --version >/dev/null 2>&1; then
    step cargo fmt --check
else
    echo "==> cargo fmt not installed — skipping"
fi

if cargo clippy --version >/dev/null 2>&1; then
    step cargo clippy --workspace --all-targets -- -D warnings
else
    echo "==> cargo clippy not installed — skipping"
fi

# Determinism & concurrency audit (crates/xlint). Deny-by-default: any
# unannotated hash-order / wall-clock / unsafe / float-fold / panic finding
# fails the gate. See README.md for the allow-comment convention.
step cargo run --release -q -p xlint --bin golint -- --root .

if [ "$soak" -eq 1 ]; then
    step cargo run --release -q -p gola-conformance --bin gola-soak
fi

if [ "$failures" -ne 0 ]; then
    echo "check.sh: $failures step(s) failed"
    exit 1
fi
echo "check.sh: all checks passed"
