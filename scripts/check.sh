#!/usr/bin/env bash
# Full pre-merge gate: build, tests, formatting, lints.
# Components that are not installed (fmt/clippy on minimal toolchains) are
# skipped with a warning rather than failing the gate.
#
# The conformance smoke tier (crates/conformance/tests/smoke.rs) runs as
# part of `cargo test --workspace`. Pass --soak to additionally run the
# release soak binary: the same three oracles (differential, invariant,
# calibration) at fuzzing volume, printing shrunk replayable artifacts for
# any failure. Pass --contracts to run the release contract-conformance
# runner (gola-contracts): the ERROR/WITHIN contract oracle over ≥200 seeds
# per class, the planted absolute-stopping bug, generated contract queries,
# and the uniform-vs-stratified rare-group convergence check (≤60s).
# Pass --service to run the multi-tenant service gates: the scheduler
# simulator property tests in release, the gola-service conformance leg
# (generated queries interleaved through the fair scheduler on a shared
# pool, bit-compared against solo runs), and a 10-client gola-load smoke
# over real sockets with a wall-clock budget.
# Pass --ingest to run the streaming-ingest gates: the gola-ingest
# conformance leg (generated queries over streams growing under the query,
# four variants per case bit-compared, durable manifests replayed) plus a
# CLI smoke — `gola ingest` writes a durable segment directory and two
# console replays of it must agree byte for byte.
# Pass --metrics to smoke-test the observability exports: one
# Conviva query through the CLI with --metrics-out, the JSON snapshot
# validated against scripts/metrics_schema.json and the Prometheus text
# grepped for the expected families.
set -uo pipefail
cd "$(dirname "$0")/.."

soak=0
contracts=0
service=0
ingest=0
metrics=0
bench_smoke_flag=0
for arg in "$@"; do
    case "$arg" in
        --soak) soak=1 ;;
        --contracts) contracts=1 ;;
        --service) service=1 ;;
        --ingest) ingest=1 ;;
        --metrics) metrics=1 ;;
        --bench-smoke) bench_smoke_flag=1 ;;
        *)
            echo "usage: $0 [--soak] [--contracts] [--service] [--ingest] [--metrics] [--bench-smoke]" >&2
            exit 2
            ;;
    esac
done

failures=0
step() {
    echo "==> $*"
    if "$@"; then
        echo "    ok"
    else
        echo "    FAILED: $*"
        failures=$((failures + 1))
    fi
}

step cargo build --release --workspace
step cargo test --workspace -q

if cargo fmt --version >/dev/null 2>&1; then
    step cargo fmt --check
else
    echo "==> cargo fmt not installed — skipping"
fi

if cargo clippy --version >/dev/null 2>&1; then
    step cargo clippy --workspace --all-targets -- -D warnings
else
    echo "==> cargo clippy not installed — skipping"
fi

# Determinism & soundness audit (crates/xlint). Deny-by-default: any
# unannotated finding from the eight rules (hash-order, wall-clock, unsafe,
# float-fold, panic, float-total-order, lossy-cast, merge-commutativity)
# fails the gate, and the audit is self-hosting — crates/xlint is itself in
# the panic/lossy-cast scopes. See README.md for the allow-comment
# convention.
step cargo run --release -q -p xlint --bin golint -- --root .

# Contract checks on the machine-readable report: the --json document must
# validate against scripts/golint_schema.json (schema_version 2, count
# consistent with the diagnostics array), and the full AST pass over the
# workspace must finish inside a 10-second wall budget (the lint runs on
# every gate; a quadratic parser blowup should fail loudly, not be endured).
golint_contract() {
    local out t0 t1
    out="$(mktemp)" || return 1
    t0="$(date +%s%N)"
    cargo run --release -q -p xlint --bin golint -- \
        --json --unsafe-inventory --root . >"$out" || {
        cat "$out" >&2
        rm -f "$out"
        return 1
    }
    t1="$(date +%s%N)"
    python3 - "$out" scripts/golint_schema.json "$t0" "$t1" <<'PY'
import json
import sys

doc = json.load(open(sys.argv[1]))
schema = json.load(open(sys.argv[2]))
elapsed = (int(sys.argv[4]) - int(sys.argv[3])) / 1e9
failed = False


def err(msg):
    global failed
    print(f"    golint --json: {msg}", file=sys.stderr)
    failed = True


try:
    import jsonschema
except ImportError:
    jsonschema = None

if jsonschema is not None:
    try:
        jsonschema.validate(doc, schema)
    except jsonschema.ValidationError as e:
        err(f"schema violation: {e.message}")
else:
    # Structural fallback mirroring scripts/golint_schema.json, so the
    # gate holds even without the jsonschema package.
    props = schema["properties"]
    if set(doc) - set(props):
        err(f"unknown top-level keys {sorted(set(doc) - set(props))}")
    for key in schema["required"]:
        if key not in doc:
            err(f"missing required key `{key}`")
    if doc.get("schema_version") != props["schema_version"]["const"]:
        err(f"schema_version is {doc.get('schema_version')!r}, want "
            f"{props['schema_version']['const']}")
    rules = set(props["diagnostics"]["items"]["properties"]["rule"]["enum"])
    for d in doc.get("diagnostics", []):
        if set(d) != {"file", "line", "rule", "message"}:
            err(f"diagnostic keys {sorted(d)} do not match the schema")
        elif not (isinstance(d["line"], int) and d["line"] >= 1
                  and d["rule"] in rules and d["file"] and d["message"]):
            err(f"malformed diagnostic {d}")
    kinds = set(
        props["unsafe_inventory"]["items"]["properties"]["kind"]["enum"])
    for s in doc.get("unsafe_inventory", []):
        if set(s) != {"file", "line", "kind", "has_safety_comment"}:
            err(f"unsafe site keys {sorted(s)} do not match the schema")
        elif not (isinstance(s["line"], int) and s["line"] >= 1
                  and s["kind"] in kinds
                  and isinstance(s["has_safety_comment"], bool)):
            err(f"malformed unsafe site {s}")

if doc.get("count") != len(doc.get("diagnostics", [])):
    err(f"count={doc.get('count')} but {len(doc.get('diagnostics', []))} "
        "diagnostics listed")
if "unsafe_inventory" not in doc:
    err("--unsafe-inventory run is missing the unsafe_inventory array")

budget = 10.0
verdict = "ok" if elapsed <= budget else "OVER BUDGET"
print(f"    golint AST pass: {elapsed:.2f}s (budget {budget:.0f}s) {verdict}")
if elapsed > budget:
    failed = True
sys.exit(1 if failed else 0)
PY
    local rc=$?
    rm -f "$out"
    return $rc
}
step golint_contract

if [ "$soak" -eq 1 ]; then
    step cargo run --release -q -p gola-conformance --bin gola-soak
fi

if [ "$contracts" -eq 1 ]; then
    step cargo run --release -q -p gola-conformance --bin gola-contracts
fi

# Multi-tenant service gates: (1) the deterministic scheduler simulator
# property tests (fairness, no-starvation, admission, trace determinism)
# in release; (2) the conformance service leg — generated queries
# interleaved through the fair scheduler on a shared worker pool, every
# stream bit-compared against its solo single-threaded run; (3) a
# 10-client load smoke over real loopback sockets, with the run's
# self-reported wall clock held to a budget (generous: shared CI hosts).
service_load_smoke() {
    local tmp out
    tmp="$(mktemp -d)" || return 1
    out="$tmp/load.json"
    cargo run --release -q -p gola-load --bin gola-load -- \
        --clients 10 --rows 8000 --batches 10 --out "$out" || return 1
    python3 - "$out" <<'PY'
import json
import sys

doc = json.load(open(sys.argv[1]))
failed = False


def err(msg):
    global failed
    print(f"    load smoke: {msg}", file=sys.stderr)
    failed = True


if doc.get("clients") != 10:
    err(f"expected 10 clients, got {doc.get('clients')}")
if doc.get("report_frames", 0) < 10 * doc.get("batches", 0):
    err(f"only {doc.get('report_frames')} report frames for "
        f"{doc.get('clients')}x{doc.get('batches')} client-batches")
for key in ("ttfe_ms", "completion_ms"):
    p = doc.get(key) or {}
    if not (isinstance(p.get("p50"), (int, float))
            and isinstance(p.get("p99"), (int, float))
            and 0 <= p["p50"] <= p["p99"]):
        err(f"{key} percentiles malformed: {p}")
budget = 120.0
wall = doc.get("wall_s", budget + 1)
verdict = "ok" if wall <= budget else "OVER BUDGET"
print(f"    load smoke: wall {wall:.1f}s (budget {budget:.0f}s) {verdict}")
if wall > budget:
    failed = True
sys.exit(1 if failed else 0)
PY
    local rc=$?
    rm -rf "$tmp"
    return $rc
}
if [ "$service" -eq 1 ]; then
    step cargo test --release -q -p gola-core --test sched_sim
    step cargo run --release -q -p gola-conformance --bin gola-service
    step service_load_smoke
fi

# Streaming-ingest gates: (1) the gola-ingest conformance leg — generated
# queries over streams that grow under the query via seed-derived append
# schedules, with same-seed rerun / threads=N / durable-segment variants
# bit-compared and every manifest replayed; (2) a CLI smoke: `gola ingest`
# seals a workload into write-once segments, then two `--append` console
# runs replay the directory and their drained final answers must match
# byte for byte (streamed report lines carry wall-clock timings, so the
# final answer is the deterministic surface).
ingest_cli_smoke() {
    local tmp
    tmp="$(mktemp -d)" || return 1
    cargo run --release -q -p gola-cli --bin gola -- ingest \
        --dir "$tmp/stream" --workload conviva --rows 2400 --seal-rows 800 \
        --seed 11 || { rm -rf "$tmp"; return 1; }
    [ -s "$tmp/stream/MANIFEST" ] \
        || { echo "    ingest wrote no MANIFEST" >&2; rm -rf "$tmp"; return 1; }
    local sql run
    sql='SELECT device, AVG(play_time) AS a0, SUM(buffer_time) AS a1 FROM replayed GROUP BY device ORDER BY device;'
    for run in 1 2; do
        printf '%s\n\\q\n' "$sql" \
            | cargo run --release -q -p gola-cli --bin gola -- \
                --threads 2 --append "replayed=$tmp/stream" \
            | sed -n '/^final answer/,$p' >"$tmp/answer$run" \
            || { rm -rf "$tmp"; return 1; }
        [ -s "$tmp/answer$run" ] || {
            echo "    replay run $run produced no final answer" >&2
            rm -rf "$tmp"
            return 1
        }
    done
    diff -u "$tmp/answer1" "$tmp/answer2" || {
        echo "    replayed final answers differ between runs" >&2
        rm -rf "$tmp"
        return 1
    }
    rm -rf "$tmp"
}
if [ "$ingest" -eq 1 ]; then
    step cargo run --release -q -p gola-conformance --bin gola-ingest -- --quick
    step ingest_cli_smoke
fi

# Observability smoke: drive one online query through the console with the
# registry enabled (--threads 2 so the worker pool registers its metrics),
# then validate both export formats.
metrics_smoke() {
    local tmp out
    tmp="$(mktemp -d)" || return 1
    out="$tmp/metrics.json"
    # The nested query keeps an uncertain candidate set alive, which is what
    # drives the chunked classify through the worker pool (a certain-filter
    # query folds every tuple at ingest and never submits pool jobs).
    printf '%s\n' \
        "SELECT AVG(play_time) FROM sessions WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions);" \
        '\q' \
        | cargo run --release -q -p gola-cli --bin gola -- \
            --threads 2 --metrics-out "$out" >/dev/null || return 1
    [ -s "$out" ] || { echo "    no JSON snapshot at $out" >&2; return 1; }
    [ -s "$out.prom" ] || { echo "    no Prometheus text at $out.prom" >&2; return 1; }
    cargo run --release -q -p gola-obs --bin validate-metrics -- \
        "$out" scripts/metrics_schema.json || return 1
    local fam
    for fam in gola_report_batches_total gola_pool_jobs_total \
               gola_span_classify_total gola_report_ci_width; do
        grep -q "^$fam" "$out.prom" \
            || { echo "    $fam missing from $out.prom" >&2; return 1; }
    done
    rm -rf "$tmp"
}
if [ "$metrics" -eq 1 ]; then
    step metrics_smoke
fi

# Bench smoke: a small (20k-row) scaling run as a perf/determinism gate.
# Fails if any thread count loses bit-identity with the single-thread run,
# or if threads=1 throughput regresses more than 20% below the checked-in
# baseline (results/bench_smoke_baseline.json). Single runs on shared hosts
# are noisy — re-run before treating a marginal failure as a regression.
bench_smoke() {
    local out json_line
    out="$(cargo run --release -q -p gola-bench --bin scaling -- \
        --rows 20000 --threads-list 1,2 2>&1)" || {
        printf '%s\n' "$out" >&2
        return 1
    }
    json_line="$(printf '%s\n' "$out" | grep '^json,')" || {
        echo "    no json line in scaling output" >&2
        return 1
    }
    python3 - "$json_line" results/bench_smoke_baseline.json <<'PY'
import json
import sys

run = json.loads(sys.argv[1][len("json,"):])
base = json.load(open(sys.argv[2]))
failed = False
for r in run["results"]:
    if not r["bit_identical_to_t1"]:
        print(f"    threads={r['threads']}: NOT bit-identical to threads=1",
              file=sys.stderr)
        failed = True
t1 = next(r for r in run["results"] if r["threads"] == 1)
floor = 0.8 * base["tuples_per_sec"]
verdict = "ok" if t1["tuples_per_sec"] >= floor else "REGRESSION"
print(f"    threads=1: {t1['tuples_per_sec']:.1f} tuples/s "
      f"(baseline {base['tuples_per_sec']:.1f}, floor {floor:.1f}) {verdict}")
if t1["tuples_per_sec"] < floor:
    failed = True
sys.exit(1 if failed else 0)
PY
}
if [ "$bench_smoke_flag" -eq 1 ]; then
    step bench_smoke
fi

if [ "$failures" -ne 0 ]; then
    echo "check.sh: $failures step(s) failed"
    exit 1
fi
echo "check.sh: all checks passed"
