#!/usr/bin/env bash
# Full pre-merge gate: build, tests, formatting, lints.
# Components that are not installed (fmt/clippy on minimal toolchains) are
# skipped with a warning rather than failing the gate.
#
# The conformance smoke tier (crates/conformance/tests/smoke.rs) runs as
# part of `cargo test --workspace`. Pass --soak to additionally run the
# release soak binary: the same three oracles (differential, invariant,
# calibration) at fuzzing volume, printing shrunk replayable artifacts for
# any failure. Pass --metrics to smoke-test the observability exports: one
# Conviva query through the CLI with --metrics-out, the JSON snapshot
# validated against scripts/metrics_schema.json and the Prometheus text
# grepped for the expected families.
set -uo pipefail
cd "$(dirname "$0")/.."

soak=0
metrics=0
bench_smoke_flag=0
for arg in "$@"; do
    case "$arg" in
        --soak) soak=1 ;;
        --metrics) metrics=1 ;;
        --bench-smoke) bench_smoke_flag=1 ;;
        *)
            echo "usage: $0 [--soak] [--metrics] [--bench-smoke]" >&2
            exit 2
            ;;
    esac
done

failures=0
step() {
    echo "==> $*"
    if "$@"; then
        echo "    ok"
    else
        echo "    FAILED: $*"
        failures=$((failures + 1))
    fi
}

step cargo build --release --workspace
step cargo test --workspace -q

if cargo fmt --version >/dev/null 2>&1; then
    step cargo fmt --check
else
    echo "==> cargo fmt not installed — skipping"
fi

if cargo clippy --version >/dev/null 2>&1; then
    step cargo clippy --workspace --all-targets -- -D warnings
else
    echo "==> cargo clippy not installed — skipping"
fi

# Determinism & concurrency audit (crates/xlint). Deny-by-default: any
# unannotated hash-order / wall-clock / unsafe / float-fold / panic finding
# fails the gate. See README.md for the allow-comment convention.
step cargo run --release -q -p xlint --bin golint -- --root .

if [ "$soak" -eq 1 ]; then
    step cargo run --release -q -p gola-conformance --bin gola-soak
fi

# Observability smoke: drive one online query through the console with the
# registry enabled (--threads 2 so the worker pool registers its metrics),
# then validate both export formats.
metrics_smoke() {
    local tmp out
    tmp="$(mktemp -d)" || return 1
    out="$tmp/metrics.json"
    # The nested query keeps an uncertain candidate set alive, which is what
    # drives the chunked classify through the worker pool (a certain-filter
    # query folds every tuple at ingest and never submits pool jobs).
    printf '%s\n' \
        "SELECT AVG(play_time) FROM sessions WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions);" \
        '\q' \
        | cargo run --release -q -p gola-cli --bin gola -- \
            --threads 2 --metrics-out "$out" >/dev/null || return 1
    [ -s "$out" ] || { echo "    no JSON snapshot at $out" >&2; return 1; }
    [ -s "$out.prom" ] || { echo "    no Prometheus text at $out.prom" >&2; return 1; }
    cargo run --release -q -p gola-obs --bin validate-metrics -- \
        "$out" scripts/metrics_schema.json || return 1
    local fam
    for fam in gola_report_batches_total gola_pool_jobs_total \
               gola_span_classify_total gola_report_ci_width; do
        grep -q "^$fam" "$out.prom" \
            || { echo "    $fam missing from $out.prom" >&2; return 1; }
    done
    rm -rf "$tmp"
}
if [ "$metrics" -eq 1 ]; then
    step metrics_smoke
fi

# Bench smoke: a small (20k-row) scaling run as a perf/determinism gate.
# Fails if any thread count loses bit-identity with the single-thread run,
# or if threads=1 throughput regresses more than 20% below the checked-in
# baseline (results/bench_smoke_baseline.json). Single runs on shared hosts
# are noisy — re-run before treating a marginal failure as a regression.
bench_smoke() {
    local out json_line
    out="$(cargo run --release -q -p gola-bench --bin scaling -- \
        --rows 20000 --threads-list 1,2 2>&1)" || {
        printf '%s\n' "$out" >&2
        return 1
    }
    json_line="$(printf '%s\n' "$out" | grep '^json,')" || {
        echo "    no json line in scaling output" >&2
        return 1
    }
    python3 - "$json_line" results/bench_smoke_baseline.json <<'PY'
import json
import sys

run = json.loads(sys.argv[1][len("json,"):])
base = json.load(open(sys.argv[2]))
failed = False
for r in run["results"]:
    if not r["bit_identical_to_t1"]:
        print(f"    threads={r['threads']}: NOT bit-identical to threads=1",
              file=sys.stderr)
        failed = True
t1 = next(r for r in run["results"] if r["threads"] == 1)
floor = 0.8 * base["tuples_per_sec"]
verdict = "ok" if t1["tuples_per_sec"] >= floor else "REGRESSION"
print(f"    threads=1: {t1['tuples_per_sec']:.1f} tuples/s "
      f"(baseline {base['tuples_per_sec']:.1f}, floor {floor:.1f}) {verdict}")
if t1["tuples_per_sec"] < floor:
    failed = True
sys.exit(1 if failed else 0)
PY
}
if [ "$bench_smoke_flag" -eq 1 ]; then
    step bench_smoke
fi

if [ "$failures" -ne 0 ]; then
    echo "check.sh: $failures step(s) failed"
    exit 1
fi
echo "check.sh: all checks passed"
